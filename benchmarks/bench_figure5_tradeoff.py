"""Figure 5 benchmark: the hand-labeled-data trade-off sweep.

Regenerates both Figure 5 panels (supervised learning curves vs the
DryBell line) and times one supervised point of the sweep.

Shape assertions (paper): the supervised curve rises with more hand
labels, and the weakly supervised classifier is worth a substantial
number of hand labels (a crossover exists inside the swept range, or the
curve stays below DryBell throughout).
"""


from repro.experiments import figure5
from repro.experiments.harness import get_content_experiment

from benchmarks.conftest import emit


def test_figure5_sweep(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure5.run(scale=scale), rounds=1, iterations=1
    )
    emit(result)
    for row in result.rows:
        f1s = [f1 for _, f1 in row["points"]]
        # Rising trend: the best late point beats the first point.
        assert max(f1s[-2:]) > f1s[0], row
        # DryBell is worth a nontrivial number of hand labels: the
        # smallest hand-label budget does not already match it.
        assert f1s[0] < row["drybell_relative_f1"], row


def test_one_supervised_point_cost(benchmark, scale):
    exp = get_content_experiment("topic", scale)
    n = max(200, len(exp.dataset.unlabeled) // 50)
    metrics = benchmark.pedantic(
        lambda: exp.hand_label_metrics(n), rounds=1, iterations=1
    )
    assert 0.0 <= metrics.f1 <= 1.0
