"""Figure 2 benchmark: labeling-function category census.

Regenerates the Figure 2 category distribution across the three
applications and times the census computation plus LF-suite
construction for the events application (140 generated weak sources).
"""

from repro.experiments import figure2
from repro.experiments.harness import get_events_experiment
from repro.applications.events import build_event_lfs
from repro.lf.registry import LFCategory

from benchmarks.conftest import emit


def test_figure2_census(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure2.run(scale=scale), rounds=1, iterations=1
    )
    emit(result)
    by_app: dict[str, int] = {}
    for row in result.rows:
        by_app[row["application"]] = by_app.get(row["application"], 0) + row["count"]
    assert by_app["topic_classification"] == 10      # Table 1
    assert by_app["product_classification"] == 8     # Table 1
    assert by_app["realtime_events"] == 140          # Section 3.3


def test_events_lf_suite_construction(benchmark, scale):
    exp = get_events_experiment(scale)

    lfs, registry = benchmark(build_event_lfs, exp.dataset.world)
    assert len(lfs) == 140
    counts = registry.category_counts()
    # Graph-based sources exist and are a minority (Section 3.3).
    assert 0 < counts[LFCategory.GRAPH_BASED] < counts[LFCategory.OTHER_HEURISTIC]
