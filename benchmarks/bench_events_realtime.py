"""Section 6.4 benchmark: real-time events, DryBell vs Logical-OR.

Regenerates the events comparison (events identified under a fixed
review budget; average-precision quality metric) and times the DNN
forward pass over the test stream — the latency-critical serving path
the cross-feature transfer exists to enable.

Shape assertions (paper): DryBell identifies more events of interest
than the Logical-OR baseline (+58% in the paper) with a better quality
metric (+4.5%).
"""

from repro.experiments import events_eval
from repro.experiments.harness import get_events_experiment

from benchmarks.conftest import emit


def test_events_comparison(benchmark, scale):
    result = benchmark.pedantic(
        lambda: events_eval.run(scale=scale), rounds=1, iterations=1
    )
    emit(result)
    row = result.rows[0]
    assert row["identified_gain_pct"] > 0.0, row
    assert row["quality_gain_pct"] > 0.0, row


def test_realtime_scoring_throughput(benchmark, scale):
    exp = get_events_experiment(scale)
    model = exp.dnn_drybell
    X = exp.X_test

    scores = benchmark(model.predict_proba, X)
    assert scores.shape == (len(X),)
