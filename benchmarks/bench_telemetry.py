"""Telemetry layer benchmark + overhead/identity gates.

Runs :func:`repro.experiments.telemetry_eval.run_telemetry_overhead` —
the fully instrumented (metrics registry + always-on tracer + running
exporter) streaming and offline hot paths against bare runs of the same
workload — and enforces the observability contract:

* **identity** (every scale): attaching telemetry must not change one
  durable byte — instrumented stream roots (vote shards, label shards,
  checkpoint manifests) equal the bare arm's, and instrumented offline
  vote matrices equal the bare applier's;
* **overhead** (full n >= 20k regime): instrumented throughput stays
  >= ``OVERHEAD_FLOOR`` x bare on both hot paths; the hosted-runner
  smoke regime only requires loose parity;
* **liveness**: spans were actually written and the exporter actually
  published snapshots — an accidentally disabled tracer would otherwise
  pass the overhead gate for free.

Rows land in the ``telemetry_overhead`` section of ``BENCH_perf.json``
and ``BENCH_history.jsonl``; the trend check watches the instrumented
streaming rate. A JSONL trace artifact (``BENCH_trace.jsonl``) is
written next to the bench JSON for CI upload.

Environment knobs: ``REPRO_SCALE`` and ``REPRO_BENCH_N``.
"""

import json
import os

from repro.experiments import perf
from repro.experiments.telemetry_eval import run_telemetry_overhead

from benchmarks.conftest import emit

#: Example count for both telemetry arms.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "20000"))

#: Minimum instrumented/bare throughput ratio at full scale, per path.
OVERHEAD_FLOOR = 0.9

#: Loose smoke-regime ratio: two-batch streams measure scheduler noise,
#: not telemetry, so only gross breakage should fail a smoke run.
SMOKE_FLOOR = 0.3


def _trend_gate(section: str, metric: str, match: dict) -> None:
    """Warn on trend regressions; fail only when explicitly enforced."""
    flag = perf.check_history_trend(section, metric, match=match)
    if flag is None:
        return
    message = (
        f"TREND REGRESSION: {section}.{metric} = {flag['latest']:.1f} is "
        f"{100 * (1 - flag['ratio']):.0f}% below the trailing median "
        f"{flag['trailing_median']:.1f} (window {flag['window']})"
    )
    print(f"[{message}]")
    if os.environ.get("REPRO_ENFORCE_TREND") == "1":
        raise AssertionError(message)


def test_telemetry_overhead(benchmark, scale):
    """The telemetry gate: byte-identity always, bounded overhead at scale."""
    trace_path = os.path.join(
        os.path.dirname(perf.bench_json_path()), "BENCH_trace.jsonl"
    )
    if os.path.exists(trace_path):
        os.remove(trace_path)
    result = benchmark.pedantic(
        lambda: run_telemetry_overhead(
            scale=scale, n_examples=BENCH_N, trace_jsonl=trace_path
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    row = result.rows[0]
    history_row = {
        k: v for k, v in row.items() if k != "final_snapshot"
    }
    perf.update_bench_json("telemetry_overhead", {"scale": scale, **row})
    perf.append_bench_history(
        "telemetry_overhead", {"scale": scale, **history_row}
    )
    _trend_gate(
        "telemetry_overhead",
        "stream_telemetry_examples_per_second",
        {"scale": scale, "examples": row["examples"]},
    )

    # Identity is the non-negotiable half of the contract: telemetry
    # must be invisible in every produced byte, at every scale.
    assert row["stream_bytes_identical"], (
        "instrumented streaming run produced different durable bytes "
        "than the bare run"
    )
    assert row["offline_votes_identical"], (
        "instrumented offline applier produced different votes than "
        "the bare run"
    )

    # Liveness: the instrumented arm must really have been instrumented.
    assert row["spans_written"] > 0, "tracer wrote no spans"
    assert row["snapshots_written"] >= 1, "exporter published no snapshots"
    assert row["checkpoints_written"] >= 1
    assert os.path.exists(trace_path), "trace JSONL artifact missing"
    with open(trace_path, encoding="utf-8") as handle:
        spans = [json.loads(line) for line in handle if line.strip()]
    assert len(spans) == row["spans_written"]
    assert all("duration_us" in span and "trace_id" in span for span in spans)

    if row["examples"] >= 20_000:
        assert row["stream_telemetry_ratio"] >= OVERHEAD_FLOOR, (
            f"streaming telemetry overhead regressed: "
            f"{row['stream_telemetry_ratio']:.2f}x < {OVERHEAD_FLOOR}x "
            f"bare at n={row['examples']}"
        )
        assert row["offline_telemetry_ratio"] >= OVERHEAD_FLOOR, (
            f"offline telemetry overhead regressed: "
            f"{row['offline_telemetry_ratio']:.2f}x < {OVERHEAD_FLOOR}x "
            f"bare at n={row['examples']}"
        )
    else:
        # Smoke regime: two-batch streams measure scheduling, not
        # telemetry; require loose parity only.
        assert row["stream_telemetry_ratio"] > SMOKE_FLOOR
        assert row["offline_telemetry_ratio"] > SMOKE_FLOOR
