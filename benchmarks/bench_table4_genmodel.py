"""Table 4 benchmark: generative-model weights vs equal weights.

Regenerates Table 4 and times the equal-weight combination (the paper's
baseline labeler: "the probabilistic training labels were an unweighted
average of the labeling function votes").

Shape assertions (paper): learned weights beat equal weights on both
tasks, with a larger margin on topic than product (whose LF suite has
less quality variance).
"""

import numpy as np

from repro.core.combiners import equal_weight_probabilities
from repro.experiments import table4
from repro.experiments.harness import get_content_experiment

from benchmarks.conftest import emit


def test_table4_weighting_ablation(benchmark, scale):
    result = benchmark.pedantic(
        lambda: table4.run(scale=scale), rounds=1, iterations=1
    )
    emit(result)
    by_task = {row["task"]: row for row in result.rows}
    for row in result.rows:
        assert row["lift_pct"] > 0.0, row
    # Topic's margin exceeds product's (paper: +7.7% vs +1.9%).
    assert by_task["topic"]["lift_pct"] > by_task["product"]["lift_pct"]


def test_equal_weight_combination_speed(benchmark, scale):
    exp = get_content_experiment("topic", scale)
    L = exp.L_unlabeled.matrix
    probs = benchmark(equal_weight_probabilities, L)
    assert probs.shape == (L.shape[0],)
    assert np.all((probs >= 0) & (probs <= 1))
