"""Streaming subsystem benchmark + regression gates.

Runs :func:`repro.experiments.streaming_eval.run_streaming_eval` — the
micro-batch pipeline over staged DFS record shards, online label model,
and prequential FTRL end model — and enforces the subsystem's contract:

* **throughput**: streaming labeling sustains >= ``THROUGHPUT_FLOOR`` x
  the offline batched path (decode + label over the same shards) at the
  full n >= 20k regime (below it, hosted-runner smoke runs only require
  loose parity);
* **bounded memory**: peak resident records never exceed 2 micro-batches
  (measured by the pipeline's gauge, not assumed);
* **equivalence**: streamed votes are identical to the offline applier
  and the online model's post-refit posteriors match an offline fit to
  <= 1e-6;
* **durability** (:func:`run_crash_recovery`): with vote/label sinks and
  checkpoint manifests enabled, throughput stays >= 0.4x offline at full
  scale, and a stream killed mid-run resumes from the manifest to
  byte-identical shards and <= 1e-6 posteriors;
* **drift** (:func:`run_drift_eval`): an injected mid-stream shift must
  raise a drift alarm within ``DRIFT_DETECTION_K`` micro-batches, the
  stationary control must never alarm, and the decay-mode online model
  must beat the cumulative one on post-shift label and end-model
  accuracy (enforced at every scale — the streams are synthetic).

Rows land in ``BENCH_perf.json`` (latest snapshot), are appended to
``BENCH_history.jsonl``, and the trailing-median trend check flags >20%
throughput regressions that a hard floor would miss. The trend check
warns by default and fails the run when ``REPRO_ENFORCE_TREND=1``
(dedicated hardware; hosted CI runners are too noisy to enforce).

Environment knobs: ``REPRO_SCALE`` (dataset scale) and ``REPRO_BENCH_N``
(example count; CI smoke uses a small value).
"""

import json
import os

from repro.experiments import perf
from repro.experiments.streaming_eval import (
    run_crash_recovery,
    run_drift_eval,
    run_multi_consumer_eval,
    run_streaming_eval,
)
from repro.parallel import default_workers

from benchmarks.conftest import emit

#: Example count for the streaming-vs-offline comparison.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "20000"))

#: Minimum streaming/offline throughput ratio enforced at full scale.
THROUGHPUT_FLOOR = 0.5

#: Worker count for the multi-consumer gate (``REPRO_WORKERS`` overrides;
#: clamped to >= 2 — a one-worker "multi-consumer" arm is the single
#: consumer compared against itself).
WORKERS = max(2, default_workers(4))

#: Minimum multi-consumer/single-consumer speedup; binds only at
#: n >= 20k on machines exposing at least ``WORKERS`` CPUs (equivalence
#: is asserted everywhere, like the other streaming gates).
MULTI_CONSUMER_FLOOR = 1.5

#: Minimum durable-streaming/offline ratio (vote + label sinks and
#: checkpoint manifests enabled) enforced at full scale.
DURABLE_THROUGHPUT_FLOOR = 0.4

#: Posterior agreement required after the online model's final refit.
PROBA_TOLERANCE = 1e-6

#: Maximum micro-batches between an injected distribution shift and the
#: drift monitor's first alarm (the eval's recent window is 4 batches,
#: so the statistic is fully post-shift within 4; 6 leaves headroom
#: without letting detection quietly degrade).
DRIFT_DETECTION_K = 6


def _trend_gate(section: str, metric: str, match: dict) -> None:
    """Warn on trend regressions; fail only when explicitly enforced.

    ``match`` pins the comparison to same-configuration history rows so
    smoke runs (small N) and full runs never share a trend line.
    """
    flag = perf.check_history_trend(section, metric, match=match)
    if flag is None:
        return
    message = (
        f"TREND REGRESSION: {section}.{metric} = {flag['latest']:.1f} is "
        f"{100 * (1 - flag['ratio']):.0f}% below the trailing median "
        f"{flag['trailing_median']:.1f} (window {flag['window']})"
    )
    print(f"[{message}]")
    if os.environ.get("REPRO_ENFORCE_TREND") == "1":
        raise AssertionError(message)


def test_streaming_vs_offline(benchmark, scale):
    """The streaming gate: throughput, bounded memory, equivalence."""
    result = benchmark.pedantic(
        lambda: run_streaming_eval(scale=scale, n_examples=BENCH_N),
        rounds=1,
        iterations=1,
    )
    emit(result)
    row = result.rows[0]
    perf.update_bench_json("streaming", {"scale": scale, **row})
    perf.append_bench_history("streaming", {"scale": scale, **row})
    _trend_gate(
        "streaming",
        "streaming_examples_per_second",
        {"scale": scale, "examples": row["examples"]},
    )

    # Equivalence and the memory bound hold at every scale.
    assert row["votes_identical"], (
        "streamed votes diverged from the offline applier"
    )
    assert row["max_proba_diff"] <= PROBA_TOLERANCE, (
        f"online label model off by {row['max_proba_diff']:.2e} after "
        f"final refit (tolerance {PROBA_TOLERANCE:.0e})"
    )
    assert row["peak_resident_records"] <= row["max_resident_records"], (
        f"pipeline held {row['peak_resident_records']} records, over the "
        f"2-micro-batch bound of {row['max_resident_records']}"
    )

    if row["examples"] >= 20_000:
        assert row["throughput_ratio"] >= THROUGHPUT_FLOOR, (
            f"streaming regressed: {row['throughput_ratio']:.2f}x < "
            f"{THROUGHPUT_FLOOR}x offline at n={row['examples']}"
        )
    else:
        # Smoke regime: scheduling overhead dominates tiny streams.
        assert row["throughput_ratio"] > 0.15
    # The learning pass trains a real model; it must at least keep up
    # with a meaningful fraction of the labeling-only stream.
    assert row["learning_examples_per_second"] > 0
    assert 0.0 <= row["stream_f1"] <= 1.0


def test_multi_consumer_vs_single(benchmark, scale):
    """The multi-consumer gate: N labeling workers, identical bytes.

    Votes, durable sink shards, and posteriors must match the
    single-consumer arm exactly at every scale and worker count; the
    1.5x speedup floor binds only where the hardware can deliver it.
    """
    result = benchmark.pedantic(
        lambda: run_multi_consumer_eval(
            scale=scale, n_examples=BENCH_N, workers=WORKERS
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    row = result.rows[0]
    perf.update_bench_json(
        "streaming_multi_consumer", {"scale": scale, **row}
    )
    perf.append_bench_history(
        "streaming_multi_consumer", {"scale": scale, **row}
    )
    _trend_gate(
        "streaming_multi_consumer",
        "multi_examples_per_second",
        {
            "scale": scale,
            "examples": row["examples"],
            "workers": row["workers"],
        },
    )

    # Equivalence and the residency bound hold at every scale.
    assert row["votes_identical"], (
        "multi-consumer votes diverged from the single-consumer arm"
    )
    assert row["sinks_identical"], (
        "multi-consumer sink shards diverged from the single-consumer arm"
    )
    assert row["max_proba_diff"] <= PROBA_TOLERANCE, (
        f"multi-consumer posteriors off by {row['max_proba_diff']:.2e} "
        f"(tolerance {PROBA_TOLERANCE:.0e})"
    )
    assert row["peak_resident_records"] <= row["max_resident_records"], (
        f"multi-consumer pipeline held {row['peak_resident_records']} "
        f"records, over the bound of {row['max_resident_records']}"
    )

    cpus = os.cpu_count() or 1
    if row["examples"] >= 20_000 and cpus >= row["workers"]:
        assert row["speedup"] >= MULTI_CONSUMER_FLOOR, (
            f"multi-consumer streaming regressed: {row['speedup']:.2f}x < "
            f"{MULTI_CONSUMER_FLOOR}x single-consumer with "
            f"{row['workers']} workers at n={row['examples']}"
        )
    else:
        # Smoke regime: fewer CPUs than workers (or a tiny stream) means
        # the pool pays the full codec + IPC tax with zero parallel
        # compute; only sanity is required (matching the other streaming
        # smoke floors).
        print(
            f"[multi-consumer floor not binding: n={row['examples']}, "
            f"{cpus} CPUs for {row['workers']} workers — "
            f"measured {row['speedup']:.2f}x]"
        )
        assert row["speedup"] > 0.1


def test_drift_detection(benchmark, scale):
    """The drift gate: fast detection, no false alarms, real adaptation.

    Runs the synthetic injected-shift eval and enforces the drift
    subsystem's contract at every scale (the streams are synthetic and
    seeded, so there is no smoke regime):

    * the alarm fires within ``DRIFT_DETECTION_K`` micro-batches of the
      injected shift — and not before it;
    * the identically configured monitor on the stationary control
      stream never alarms;
    * the decayed arm's post-shift label accuracy AND post-shift
      end-model accuracy beat the cumulative arm's — forgetting stale
      traffic must pay for itself downstream, not just in the detector.
    """
    result = benchmark.pedantic(
        lambda: run_drift_eval(scale=scale),
        rounds=1,
        iterations=1,
    )
    emit(result)
    row = result.rows[0]
    perf.update_bench_json("streaming_drift", {"scale": scale, **row})
    perf.append_bench_history("streaming_drift", {"scale": scale, **row})

    assert row["stationary_alarms"] == 0, (
        f"{row['stationary_alarms']} false alarms on the stationary "
        f"control stream (of {row['stationary_checks']} checks)"
    )
    assert row["alarm_fired"], (
        "the injected shift never raised a drift alarm (or an alarm "
        "fired before the shift): first alarm at "
        f"{row['first_alarm_batch']}, shift at {row['shift_after_batch']}"
    )
    assert row["detection_delay_batches"] <= DRIFT_DETECTION_K, (
        f"drift detected {row['detection_delay_batches']} micro-batches "
        f"after the shift, over the K={DRIFT_DETECTION_K} bound"
    )
    assert row["forced_refits"] >= 1, (
        "the alarm fired but never forced an early refit"
    )
    assert (
        row["decayed_post_shift_accuracy"]
        > row["cumulative_post_shift_accuracy"]
    ), (
        "decayed refit did not beat cumulative post-shift label accuracy: "
        f"{row['decayed_post_shift_accuracy']:.3f} vs "
        f"{row['cumulative_post_shift_accuracy']:.3f}"
    )
    assert row["decayed_end_accuracy"] > row["cumulative_end_accuracy"], (
        "decayed arm did not beat cumulative post-shift end-model "
        f"accuracy: {row['decayed_end_accuracy']:.3f} vs "
        f"{row['cumulative_end_accuracy']:.3f}"
    )


def test_checkpointed_crash_recovery(benchmark, scale):
    """The durability gate: sink overhead, crash-resume byte-identity."""
    result = benchmark.pedantic(
        lambda: run_crash_recovery(scale=scale, n_examples=BENCH_N),
        rounds=1,
        iterations=1,
    )
    emit(result)
    row = result.rows[0]
    perf.update_bench_json("streaming_recovery", {"scale": scale, **row})
    perf.append_bench_history(
        "streaming_recovery",
        {"scale": scale, **{k: v for k, v in row.items() if k != "manifest"}},
    )
    _trend_gate(
        "streaming_recovery",
        "durable_examples_per_second",
        {"scale": scale, "examples": row["examples"]},
    )
    # Export the checkpoint manifest summary for the CI artifact.
    manifest_path = os.path.join(
        os.path.dirname(perf.bench_json_path()), "BENCH_recovery_manifest.json"
    )
    with open(manifest_path, "w") as handle:
        json.dump(
            {"scale": scale, "manifest": row["manifest"], "row": {
                k: v for k, v in row.items() if k != "manifest"
            }},
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    print(f"[recovery manifest summary written: {manifest_path}]")

    # Crash-resume equivalence and the memory bound hold at every scale.
    assert row["crash_seen"], "the injected crash never fired"
    assert row["shards_identical"], (
        "resumed vote/label shards diverged from the uninterrupted run"
    )
    assert row["max_proba_diff"] <= PROBA_TOLERANCE, (
        f"resumed model off by {row['max_proba_diff']:.2e} after final "
        f"refit (tolerance {PROBA_TOLERANCE:.0e})"
    )
    assert row["peak_resident_records"] <= row["max_resident_records"], (
        f"durable pipeline held {row['peak_resident_records']} records, "
        f"over the bound of {row['max_resident_records']}"
    )
    assert row["checkpoints_written"] >= 1
    assert row["manifest"] is not None

    if row["examples"] >= 20_000:
        assert row["throughput_ratio"] >= DURABLE_THROUGHPUT_FLOOR, (
            f"durable streaming regressed: {row['throughput_ratio']:.2f}x "
            f"< {DURABLE_THROUGHPUT_FLOOR}x offline at n={row['examples']}"
        )
    else:
        # Smoke regime: scheduling + sink overhead dominates tiny streams.
        assert row["throughput_ratio"] > 0.1
