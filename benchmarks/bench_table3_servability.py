"""Table 3 benchmark: the servability ablation.

Regenerates Table 3 (servable-only LFs vs all LFs) and times the ablation
arm (label-model refit + end-classifier retrain on the servable subset).

Shape assertions (paper): the servable-only arm is precision-poor and
recall-heavy relative to the full LF suite; adding non-servable
organizational resources produces a large positive F1 lift on both
tasks (paper average ≈52%).
"""

from repro.experiments import table3
from repro.experiments.harness import get_content_experiment

from benchmarks.conftest import emit


def test_table3_servability_ablation(benchmark, scale):
    result = benchmark.pedantic(
        lambda: table3.run(scale=scale), rounds=1, iterations=1
    )
    emit(result)
    for row in result.rows:
        servable = row["servable_only"]
        full = row["all_lfs"]
        assert row["lift_vs_servable_pct"] > 0.0, row
        # Servable-only precision collapses below the full suite's.
        assert servable["precision"] < full["precision"], row


def test_servable_arm_cost(benchmark, scale):
    exp = get_content_experiment("topic", scale)
    names = exp.registry.servable_names()
    # Time the generative-model refit on the servable subset (the
    # incremental cost of one ablation arm, sans end-model training).
    from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel

    L_sub = exp.L_unlabeled.select_lfs(names)

    def refit():
        return SamplingFreeLabelModel(
            LabelModelConfig(n_steps=1500, seed=2)
        ).fit(L_sub.matrix)

    model = benchmark.pedantic(refit, rounds=3, iterations=1)
    assert model.n_lfs == len(names)
