"""Section 1 benchmark: end-to-end labeling throughput and the 6M-point
sub-30-minute extrapolation.

Runs the full DFS + MapReduce labeling path (staging, per-LF jobs, vote
join) on a slice of the product pool, measures examples/second, and
extrapolates how many simulated nodes would be needed to label 6.5M
examples in under 30 minutes — the claim in Section 1 ("implementing
weak supervision over 6M+ data points with sub-30min execution time").
"""

from repro.dfs.filesystem import DistributedFileSystem
from repro.experiments import perf
from repro.experiments.harness import get_content_experiment
from repro.lf.applier import LFApplier, stage_examples

from benchmarks.conftest import emit


def test_scale_extrapolation(benchmark, scale):
    result = benchmark.pedantic(
        lambda: perf.run_scale(scale=scale), rounds=1, iterations=1
    )
    emit(result)
    row = result.rows[0]
    assert row["examples_per_second"] > 0
    assert row["nodes_for_30min_at_6_5m"] >= 1


def test_mapreduce_labeling_throughput(benchmark, scale):
    """Microbenchmark: one LF binary over 1000 staged examples."""
    exp = get_content_experiment("product", scale)
    examples = exp.dataset.unlabeled[:1000]
    lf = exp.lfs[0]

    def run_one():
        dfs = DistributedFileSystem()
        paths = stage_examples(dfs, examples, "/bench/examples", num_shards=4)
        applier = LFApplier(dfs, paths, run_root="/bench/run", parallelism=2)
        return applier.apply([lf])

    report = benchmark.pedantic(run_one, rounds=3, iterations=1)
    assert report.label_matrix.n_examples == 1000
