"""Section 1 benchmark: end-to-end labeling throughput, the 6M-point
sub-30-minute extrapolation, and the batched-engine regression gate.

Runs the full DFS + MapReduce labeling path (staging, per-LF jobs, vote
join) on a slice of the product pool, measures examples/second, and
extrapolates how many simulated nodes would be needed to label 6.5M
examples in under 30 minutes — the claim in Section 1 ("implementing
weak supervision over 6M+ data points with sub-30min execution time").

``test_batched_vs_per_example`` is the perf gate for the vectorized
batch execution engine: it compares the batched in-memory labeling path
against the per-example baseline on the same pool and fails if the
speedup regresses below the floor. Every benchmark here also appends
its rows to ``BENCH_perf.json`` at the repository root (uploaded as a
CI artifact) so the performance trajectory is tracked per commit.

Environment knobs:

* ``REPRO_SCALE`` — dataset scale (small/tiny/full), see repro.config.
* ``REPRO_BENCH_N`` — example count for the batch-engine comparison
  (default 20000; CI smoke runs use a small value). The >= 3x speedup
  floor is only enforced at the default 20k+ regime where per-example
  dispatch dominates; below it the gate only requires parity.
"""

import os

from repro.dfs.filesystem import DistributedFileSystem
from repro.experiments import perf
from repro.experiments.harness import get_content_experiment
from repro.lf.applier import LFApplier, stage_examples
from repro.parallel import default_workers

from benchmarks.conftest import emit

#: Example count for the batch-vs-per-example comparison.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "20000"))

#: Minimum batched/per-example speedup enforced at the full 20k regime.
SPEEDUP_FLOOR = 3.0

#: Worker count for the process-pool gate (``REPRO_WORKERS`` overrides;
#: clamped to >= 2 — one worker measures nothing but pool overhead and
#: the comparison row would not even carry the parallel fields).
WORKERS = max(2, default_workers(4))

#: Minimum parallel/serial-batched speedup, enforced only where it is
#: physically possible: the full n >= 20k regime on a machine exposing
#: at least ``WORKERS`` CPUs (same policy as the hosted-runner carve-out
#: for the 3x floor — byte-identity is asserted unconditionally).
PARALLEL_SPEEDUP_FLOOR = 1.8


def test_scale_extrapolation(benchmark, scale):
    result = benchmark.pedantic(
        lambda: perf.run_scale(scale=scale), rounds=1, iterations=1
    )
    emit(result)
    row = result.rows[0]
    perf.update_bench_json("mapreduce_scale", {"scale": scale, **row})
    assert row["examples_per_second"] > 0
    assert row["nodes_for_30min_at_6_5m"] >= 1


def test_batched_vs_per_example(benchmark, scale):
    """The batch-engine gate: vectorized path must stay >= 3x at 20k."""
    result = benchmark.pedantic(
        lambda: perf.run_batch_throughput(scale=scale, n_examples=BENCH_N),
        rounds=1,
        iterations=1,
    )
    emit(result)
    row = result.rows[0]
    path = perf.update_bench_json(
        "batch_throughput", {"scale": scale, **row}
    )
    perf.append_bench_history("batch_throughput", {"scale": scale, **row})
    print(f"[bench json updated: {path}]")
    flag = perf.check_history_trend(
        "batch_throughput",
        "batched_examples_per_second",
        match={"scale": scale, "examples": row["examples"]},
    )
    if flag is not None:
        message = (
            f"TREND REGRESSION: batched throughput {flag['latest']:,.0f} is "
            f"{100 * (1 - flag['ratio']):.0f}% below the trailing median "
            f"{flag['trailing_median']:,.0f} (window {flag['window']})"
        )
        print(f"[{message}]")
        if os.environ.get("REPRO_ENFORCE_TREND") == "1":
            raise AssertionError(message)
    if row["examples"] >= 20_000:
        assert row["speedup"] >= SPEEDUP_FLOOR, (
            f"batched engine regressed: {row['speedup']:.2f}x < "
            f"{SPEEDUP_FLOOR}x at n={row['examples']}"
        )
    else:
        # Smoke regime: overheads dominate tiny pools; require parity.
        assert row["speedup"] > 0.8


def test_parallel_vs_serial_batched(benchmark, scale):
    """The process-pool gate: workers shard blocks, votes stay bit-exact.

    Byte-identity (asserted inside ``run_batch_throughput``) holds at
    every scale and worker count; the 1.8x throughput floor binds only
    at n >= 20k on hardware that actually has ``WORKERS`` CPUs.
    """
    result = benchmark.pedantic(
        lambda: perf.run_batch_throughput(
            scale=scale, n_examples=BENCH_N, workers=WORKERS
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    row = result.rows[0]
    path = perf.update_bench_json("parallel_throughput", {"scale": scale, **row})
    perf.append_bench_history("parallel_throughput", {"scale": scale, **row})
    print(f"[bench json updated: {path}]")
    flag = perf.check_history_trend(
        "parallel_throughput",
        "parallel_examples_per_second",
        match={
            "scale": scale,
            "examples": row["examples"],
            "workers": row["workers"],
        },
    )
    if flag is not None:
        message = (
            f"TREND REGRESSION: parallel throughput {flag['latest']:,.0f} is "
            f"{100 * (1 - flag['ratio']):.0f}% below the trailing median "
            f"{flag['trailing_median']:,.0f} (window {flag['window']})"
        )
        print(f"[{message}]")
        if os.environ.get("REPRO_ENFORCE_TREND") == "1":
            raise AssertionError(message)
    assert row["parallel_votes_identical"], (
        "parallel labeling diverged from the serial batched path"
    )
    cpus = os.cpu_count() or 1
    if row["examples"] >= 20_000 and cpus >= row["workers"]:
        assert row["parallel_speedup"] >= PARALLEL_SPEEDUP_FLOOR, (
            f"parallel engine regressed: {row['parallel_speedup']:.2f}x < "
            f"{PARALLEL_SPEEDUP_FLOOR}x with {row['workers']} workers at "
            f"n={row['examples']}"
        )
    else:
        # Smoke regime (small N or fewer CPUs than workers): the pool
        # cannot beat serial, but it must stay within sane overhead.
        print(
            f"[parallel floor not binding: n={row['examples']}, "
            f"{cpus} CPUs for {row['workers']} workers — "
            f"measured {row['parallel_speedup']:.2f}x]"
        )
        assert row["parallel_speedup"] > 0.2


def test_mapreduce_labeling_throughput(benchmark, scale):
    """Microbenchmark: one LF binary over 1000 staged examples."""
    exp = get_content_experiment("product", scale)
    examples = exp.dataset.unlabeled[:1000]
    lf = exp.lfs[0]

    def run_one():
        dfs = DistributedFileSystem()
        paths = stage_examples(dfs, examples, "/bench/examples", num_shards=4)
        applier = LFApplier(dfs, paths, run_root="/bench/run", parallelism=2)
        return applier.apply([lf])

    report = benchmark.pedantic(run_one, rounds=3, iterations=1)
    assert report.label_matrix.n_examples == 1000
