"""Section 1 benchmark: end-to-end labeling throughput, the 6M-point
sub-30-minute extrapolation, and the batched-engine regression gate.

Runs the full DFS + MapReduce labeling path (staging, per-LF jobs, vote
join) on a slice of the product pool, measures examples/second, and
extrapolates how many simulated nodes would be needed to label 6.5M
examples in under 30 minutes — the claim in Section 1 ("implementing
weak supervision over 6M+ data points with sub-30min execution time").

``test_batched_vs_per_example`` is the perf gate for the vectorized
batch execution engine: it compares the batched in-memory labeling path
against the per-example baseline on the same pool and fails if the
speedup regresses below the floor. Every benchmark here also appends
its rows to ``BENCH_perf.json`` at the repository root (uploaded as a
CI artifact) so the performance trajectory is tracked per commit.

Environment knobs:

* ``REPRO_SCALE`` — dataset scale (small/tiny/full), see repro.config.
* ``REPRO_BENCH_N`` — example count for the batch-engine comparison
  (default 20000; CI smoke runs use a small value). The >= 3x speedup
  floor is only enforced at the default 20k+ regime where per-example
  dispatch dominates; below it the gate only requires parity.
"""

import os

from repro.dfs.filesystem import DistributedFileSystem
from repro.experiments import perf
from repro.experiments.harness import get_content_experiment
from repro.lf.applier import LFApplier, stage_examples

from benchmarks.conftest import emit

#: Example count for the batch-vs-per-example comparison.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "20000"))

#: Minimum batched/per-example speedup enforced at the full 20k regime.
SPEEDUP_FLOOR = 3.0


def test_scale_extrapolation(benchmark, scale):
    result = benchmark.pedantic(
        lambda: perf.run_scale(scale=scale), rounds=1, iterations=1
    )
    emit(result)
    row = result.rows[0]
    perf.update_bench_json("mapreduce_scale", {"scale": scale, **row})
    assert row["examples_per_second"] > 0
    assert row["nodes_for_30min_at_6_5m"] >= 1


def test_batched_vs_per_example(benchmark, scale):
    """The batch-engine gate: vectorized path must stay >= 3x at 20k."""
    result = benchmark.pedantic(
        lambda: perf.run_batch_throughput(scale=scale, n_examples=BENCH_N),
        rounds=1,
        iterations=1,
    )
    emit(result)
    row = result.rows[0]
    path = perf.update_bench_json(
        "batch_throughput", {"scale": scale, **row}
    )
    perf.append_bench_history("batch_throughput", {"scale": scale, **row})
    print(f"[bench json updated: {path}]")
    flag = perf.check_history_trend(
        "batch_throughput",
        "batched_examples_per_second",
        match={"scale": scale, "examples": row["examples"]},
    )
    if flag is not None:
        message = (
            f"TREND REGRESSION: batched throughput {flag['latest']:,.0f} is "
            f"{100 * (1 - flag['ratio']):.0f}% below the trailing median "
            f"{flag['trailing_median']:,.0f} (window {flag['window']})"
        )
        print(f"[{message}]")
        if os.environ.get("REPRO_ENFORCE_TREND") == "1":
            raise AssertionError(message)
    if row["examples"] >= 20_000:
        assert row["speedup"] >= SPEEDUP_FLOOR, (
            f"batched engine regressed: {row['speedup']:.2f}x < "
            f"{SPEEDUP_FLOOR}x at n={row['examples']}"
        )
    else:
        # Smoke regime: overheads dominate tiny pools; require parity.
        assert row["speedup"] > 0.8


def test_mapreduce_labeling_throughput(benchmark, scale):
    """Microbenchmark: one LF binary over 1000 staged examples."""
    exp = get_content_experiment("product", scale)
    examples = exp.dataset.unlabeled[:1000]
    lf = exp.lfs[0]

    def run_one():
        dfs = DistributedFileSystem()
        paths = stage_examples(dfs, examples, "/bench/examples", num_shards=4)
        applier = LFApplier(dfs, paths, run_root="/bench/run", parallelism=2)
        return applier.apply([lf])

    report = benchmark.pedantic(run_one, rounds=3, iterations=1)
    assert report.label_matrix.n_examples == 1000
