"""Table 2 benchmark: content classification vs the dev-set baseline.

Regenerates Table 2 (generative-model-only and Snorkel DryBell arms,
relative P/R/F1 against the classifier trained on the hand-labeled dev
set) and times the sampling-free generative-model fit on the real topic
label matrix — the core computation behind the table.

Shape assertions (paper): the DryBell discriminative classifier beats
the dev-set baseline on both tasks, and beats the generative model it
was trained from on at least one (the cross-feature transfer effect).
"""

from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel
from repro.experiments import table2
from repro.experiments.harness import get_content_experiment

from benchmarks.conftest import emit


def test_table2_relative_performance(benchmark, scale):
    result = benchmark.pedantic(
        lambda: table2.run(scale=scale), rounds=1, iterations=1
    )
    emit(result)
    for row in result.rows:
        # DryBell beats the hand-labeled dev baseline (the headline).
        assert row["drybell"]["f1"] > 100.0, row
        # The recall channel drives the lift, as in the paper.
        assert row["drybell"]["recall"] > 100.0, row


def test_label_model_fit_speed(benchmark, scale):
    exp = get_content_experiment("topic", scale)
    L = exp.L_unlabeled.matrix

    def fit():
        return SamplingFreeLabelModel(
            LabelModelConfig(n_steps=1500, seed=1)
        ).fit(L)

    model = benchmark.pedantic(fit, rounds=3, iterations=1)
    assert model.accuracies().shape == (L.shape[1],)
