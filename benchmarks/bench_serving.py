"""Label-serving tier benchmark + regression gates.

Runs :func:`repro.experiments.serving_eval.run_serving_eval` — the load
generator that drives the micro-batching :class:`LabelServer` through
the full deployment story (degraded empty root -> deploy -> measured
concurrent load -> mid-load hot swap) — and enforces the serving
contract:

* **correctness (every scale)**: every served posterior is bitwise
  equal to an offline :class:`SamplingFreeLabelModel` fit of the served
  snapshot's stream prefix, including across the mid-load generation
  swap; the degraded phase answers every request with the class prior;
  exactly two swaps happen (deploy + hot swap) and both generations
  serve traffic; no request times out and admission control's pending
  bound is never exceeded;
* **latency** (full regime: n >= 20k requests on hosts exposing at
  least ``CLIENTS`` CPUs): p50 <= ``P50_CEILING_MS`` and
  p99 <= ``P99_CEILING_MS``;
* **sustained QPS** (same regime): at least ``QPS_FLOOR`` requests/s
  absolute and ``QPS_RATIO_FLOOR`` x the in-memory labeling-only rate —
  the serving stack (queueing, batching, wakeups) may not eat more than
  its budgeted share of the raw kernel throughput.

Rows land in the ``label_serving`` section of ``BENCH_perf.json``, are
appended to ``BENCH_history.jsonl``, and the trailing-median trend
check flags QPS regressions a hard floor would miss (warns by default,
fails with ``REPRO_ENFORCE_TREND=1``).

Environment knobs: ``REPRO_SCALE`` (dataset scale) and ``REPRO_BENCH_N``
(request count; CI smoke uses a small value).
"""

import os

from repro.experiments import perf
from repro.experiments.serving_eval import run_serving_eval
from repro.parallel import default_workers

from benchmarks.conftest import emit

#: Request count for the serving load (the corpus is capped at the same
#: size; requests round-robin over it).
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "20000"))

#: Concurrent load-generator threads (``REPRO_WORKERS`` overrides via
#: ``default_workers``; clamped to >= 2 so the hot swap always happens
#: under genuinely concurrent load).
CLIENTS = max(2, default_workers(4))

#: Full-regime latency ceilings. The flush deadline is 2ms, so p50 is
#: dominated by one flush window plus one kernel pass; p99 absorbs
#: refit-free swap pauses and GC.
P50_CEILING_MS = 50.0
P99_CEILING_MS = 250.0

#: Full-regime sustained-QPS floors: absolute, and relative to the
#: in-memory labeling-only rate measured in the same run.
QPS_FLOOR = 500.0
QPS_RATIO_FLOOR = 0.02


def _trend_gate(section: str, metric: str, match: dict) -> None:
    """Warn on trend regressions; fail only when explicitly enforced.

    ``match`` pins the comparison to same-configuration history rows so
    smoke runs (small N) and full runs never share a trend line.
    """
    flag = perf.check_history_trend(section, metric, match=match)
    if flag is None:
        return
    message = (
        f"TREND REGRESSION: {section}.{metric} = {flag['latest']:.1f} is "
        f"{100 * (1 - flag['ratio']):.0f}% below the trailing median "
        f"{flag['trailing_median']:.1f} (window {flag['window']})"
    )
    print(f"[{message}]")
    if os.environ.get("REPRO_ENFORCE_TREND") == "1":
        raise AssertionError(message)


def test_label_serving(benchmark, scale):
    """The serving gate: bitwise correctness, hot swap, latency, QPS."""
    result = benchmark.pedantic(
        lambda: run_serving_eval(
            scale=scale, n_requests=BENCH_N, clients=CLIENTS
        ),
        rounds=1,
        iterations=1,
    )
    emit(result)
    row = result.rows[0]
    perf.update_bench_json("label_serving", {"scale": scale, **row})
    perf.append_bench_history("label_serving", {"scale": scale, **row})
    _trend_gate(
        "label_serving",
        "qps",
        {
            "scale": scale,
            "examples": row["examples"],
            "clients": row["clients"],
        },
    )

    # Correctness holds at every scale: the ARCHITECTURE invariant.
    assert row["posteriors_bitwise_equal"], (
        f"{row['mismatched_posteriors']} served posteriors diverged "
        f"bitwise from the snapshot's offline fit"
    )
    assert row["degraded_requests"] == row["degraded_expected"], (
        "empty-root requests were not all answered degraded"
    )
    assert row["degraded_prior_ok"], (
        "degraded responses diverged from the class prior"
    )
    assert row["degraded_in_load"] == 0, (
        f"{row['degraded_in_load']} measured requests were served "
        f"degraded after generation 1 activated"
    )
    # Deployment story: one swap activating generation 1, one hot swap
    # to generation 2 under load, both generations serving traffic.
    assert row["swaps"] == 2, f"expected 2 swaps, saw {row['swaps']}"
    assert row["swap_mid_load"], (
        "the mid-load hot swap did not serve traffic from both "
        f"generations (gen1={row['served_generation_1']}, "
        f"gen2={row['served_generation_2']})"
    )
    assert row["active_generation"] == 2
    # Operational bounds hold at every scale.
    assert row["timeouts"] == 0, f"{row['timeouts']} requests timed out"
    assert row["peak_pending"] <= row["max_pending"], (
        f"admission control exceeded its bound: {row['peak_pending']} "
        f"pending > {row['max_pending']}"
    )
    assert row["batches"] <= row["requests"], (
        "more micro-batches than requests — batching is not coalescing"
    )

    cpus = os.cpu_count() or 1
    if row["examples"] >= 20_000 and cpus >= row["clients"]:
        assert row["p50_ms"] <= P50_CEILING_MS, (
            f"serving p50 regressed: {row['p50_ms']:.2f}ms > "
            f"{P50_CEILING_MS}ms at n={row['examples']}"
        )
        assert row["p99_ms"] <= P99_CEILING_MS, (
            f"serving p99 regressed: {row['p99_ms']:.2f}ms > "
            f"{P99_CEILING_MS}ms at n={row['examples']}"
        )
        assert row["qps"] >= QPS_FLOOR, (
            f"serving throughput regressed: {row['qps']:.0f} < "
            f"{QPS_FLOOR:.0f} requests/s at n={row['examples']}"
        )
        assert row["qps_ratio"] >= QPS_RATIO_FLOOR, (
            f"serving overhead regressed: QPS is only "
            f"{row['qps_ratio']:.3f}x the labeling-only rate "
            f"(floor {QPS_RATIO_FLOOR}x)"
        )
    else:
        # Smoke regime: starved of CPUs (clients + batcher + watcher on
        # fewer cores than clients) or a tiny corpus, the flush window
        # dominates; only require the service to make real progress.
        assert row["qps"] > 0
        assert row["p99_ms"] < 60_000
