"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table or figure from the paper
(see DESIGN.md section 4). Experiment state is cached per
``(task, scale, seed)`` inside :mod:`repro.experiments.harness`, so the
expensive end-to-end pipelines run once per pytest session; the
``benchmark`` fixture then times a representative core computation for
that experiment. Rendered tables are written to ``results/`` and echoed
to stdout (run with ``-s`` to see them inline).
"""

import os

import pytest

#: Scale used by the benchmark suite; override with REPRO_SCALE=full.
SCALE = os.environ.get("REPRO_SCALE", "small")


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


def emit(result) -> None:
    """Write an ExperimentResult to results/ and echo it."""
    path = result.write()
    print(f"\n{result.text}\n[written to {path}]")
