"""Table 1 benchmark: dataset generation for the content applications.

Regenerates the Table 1 dataset-regime summary and times the synthetic
corpus generator (the substitute for Google's production data collection
pipelines).
"""

from repro.config import TINY_SCALE
from repro.datasets.content import generate_topic_dataset
from repro.experiments import table1

from benchmarks.conftest import emit


def test_table1_dataset_regimes(benchmark, scale):
    result = benchmark.pedantic(
        lambda: table1.run(scale=scale), rounds=1, iterations=1
    )
    emit(result)
    tasks = {row["task"] for row in result.rows}
    assert tasks == {"topic_classification", "product_classification"}


def test_corpus_generator_throughput(benchmark):
    dataset = benchmark(generate_topic_dataset, TINY_SCALE, 7)
    assert len(dataset.unlabeled) == TINY_SCALE.topic_unlabeled
