"""Figure 6 benchmark: events-DNN score distributions.

Regenerates the two score histograms (Logical-OR-trained vs
DryBell-trained DNN) and times histogram computation.

Shape assertions (paper): the Logical-OR model over-estimates scores —
its mean score and high-score mass exceed the DryBell model's.
"""


from repro.discriminative.metrics import score_histogram
from repro.experiments import figure6
from repro.experiments.harness import get_events_experiment

from benchmarks.conftest import emit


def test_figure6_score_distributions(benchmark, scale):
    result = benchmark.pedantic(
        lambda: figure6.run(scale=scale), rounds=1, iterations=1
    )
    emit(result)
    stats = result.rows[0]
    assert stats["logical_or"]["mean_score"] > stats["drybell"]["mean_score"]
    assert (
        stats["logical_or"]["mass_above_0.7"]
        >= stats["drybell"]["mass_above_0.7"]
    )


def test_histogram_computation_speed(benchmark, scale):
    exp = get_events_experiment(scale)
    scores = exp.scores_drybell
    counts, edges = benchmark(score_histogram, scores, 20)
    assert counts.sum() == len(scores)
    assert len(edges) == 21
