"""Section 5.2 benchmark: sampling-free optimizer vs Gibbs sampler.

This is the paper's speed claim measured directly on this
implementation: ">100 steps per second with a batch size of 64" for the
compute-graph trainer versus "<50 examples per second" for the Gibbs
sampler, a ≈2x speedup at ten labeling functions.

Assertions: the sampling-free trainer exceeds 100 steps/s, and its
example throughput beats the Gibbs sampler by at least 2x (ours is far
larger because the Gibbs inner loop is pure Python — recorded as such
in EXPERIMENTS.md).

Also home to the ``label_model_fit`` refit-latency gate: full-batch
fitting of a growing matrix drawn from a fixed pattern pool, full-matrix
vs pattern-compressed. The compressed path must match posteriors to
<= 1e-9 at every size; at benchmark scale (n >= 20,000) its per-step
cost must also be flat in n (bounded growth across a >15x size sweep)
and beat the full path's total wall time. Rows land in
``BENCH_perf.json`` / ``BENCH_history.jsonl`` with the standard trend
gate (warns by default, fails under ``REPRO_ENFORCE_TREND=1``).

Environment knobs: ``REPRO_SCALE`` (dataset scale) and ``REPRO_BENCH_N``
(largest row count in the refit-latency sweep).
"""

import os

import numpy as np

from repro.core.gibbs import GibbsConfig, GibbsLabelModel
from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel
from repro.experiments import perf
from repro.experiments.harness import get_content_experiment

from benchmarks.conftest import emit

#: Largest matrix in the refit-latency sweep.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "30720"))

#: Posterior agreement the compressed fit must maintain at every size.
FIT_EQUIVALENCE_TOLERANCE = 1e-9

#: Floors for the compressed path, binding at benchmark scale only
#: (n >= 20,000): total-wall speedup over the full fit, and the maximum
#: allowed per-step cost growth across the size sweep ("flat in n").
FIT_SPEEDUP_FLOOR = 3.0
FIT_STEP_GROWTH_CEILING = 3.0


def _trend_gate(section: str, metric: str, match: dict) -> None:
    """Warn on trend regressions; fail only when explicitly enforced.

    ``match`` pins the comparison to same-configuration history rows so
    smoke runs (small N) and full runs never share a trend line.
    """
    flag = perf.check_history_trend(section, metric, match=match)
    if flag is None:
        return
    message = (
        f"TREND REGRESSION: {section}.{metric} = {flag['latest']:.1f} is "
        f"{100 * (1 - flag['ratio']):.0f}% below the trailing median "
        f"{flag['trailing_median']:.1f} (window {flag['window']})"
    )
    print(f"[{message}]")
    if os.environ.get("REPRO_ENFORCE_TREND") == "1":
        raise AssertionError(message)


def test_section52_speed_comparison(benchmark, scale):
    result = benchmark.pedantic(
        lambda: perf.run_speed(scale=scale), rounds=1, iterations=1
    )
    emit(result)
    row = result.rows[0]
    assert row["steps_per_second"] > 100.0, row      # paper: >100 steps/s
    assert row["speedup"] >= 2.0, row                # paper: ~2x


def test_sampling_free_step(benchmark, scale):
    """Microbenchmark: one exact-gradient step at batch 64, 8-10 LFs."""
    exp = get_content_experiment("product", scale)
    L = exp.L_unlabeled.matrix.astype(np.float64)
    model = SamplingFreeLabelModel(LabelModelConfig(batch_size=64))
    model.init_params(L.shape[1])
    rng = np.random.default_rng(0)
    batch = L[rng.integers(0, len(L), size=64)]

    benchmark(model.partial_step, batch)


def test_label_model_fit_compression(benchmark, scale):
    """Refit-latency gate: pattern-compressed fitting flat in n."""
    n_values = tuple(
        sorted({max(500, BENCH_N // 16), max(1_000, BENCH_N // 4), BENCH_N})
    )
    result = benchmark.pedantic(
        lambda: perf.run_fit_compression_eval(n_values=n_values),
        rounds=1,
        iterations=1,
    )
    emit(result)

    # Correctness binds at every size: the compressed fit is only a
    # faster path if it is the same fit.
    for row in result.rows:
        assert row["max_posterior_diff"] <= FIT_EQUIVALENCE_TOLERANCE, row

    largest = result.rows[-1]
    payload = {"scale": scale, **largest}
    perf.update_bench_json("label_model_fit", payload)
    perf.append_bench_history("label_model_fit", payload)
    _trend_gate(
        "label_model_fit",
        "speedup",
        {"scale": scale, "examples": largest["examples"]},
    )

    # Speed floors bind at benchmark scale only; smoke runs (small
    # REPRO_BENCH_N) still exercise the path and the equivalence gate.
    if largest["examples"] >= 20_000:
        assert largest["speedup"] >= FIT_SPEEDUP_FLOOR, largest
        assert (
            largest["compressed_step_growth"] <= FIT_STEP_GROWTH_CEILING
        ), largest


def test_gibbs_batch(benchmark, scale):
    """Microbenchmark: one Gibbs sweep + update at batch 64."""
    exp = get_content_experiment("product", scale)
    L = exp.L_unlabeled.matrix
    model = GibbsLabelModel(GibbsConfig(batch_size=64))
    model.alpha = np.full(L.shape[1], 0.7)
    model.beta = np.zeros(L.shape[1])
    rng = np.random.default_rng(0)
    batch = L[rng.integers(0, len(L), size=64)]

    def sweep_and_update():
        y = model._gibbs_sweep(batch, rng)
        model._complete_data_step(batch, y)

    benchmark(sweep_and_update)
