"""Section 5.2 benchmark: sampling-free optimizer vs Gibbs sampler.

This is the paper's speed claim measured directly on this
implementation: ">100 steps per second with a batch size of 64" for the
compute-graph trainer versus "<50 examples per second" for the Gibbs
sampler, a ≈2x speedup at ten labeling functions.

Assertions: the sampling-free trainer exceeds 100 steps/s, and its
example throughput beats the Gibbs sampler by at least 2x (ours is far
larger because the Gibbs inner loop is pure Python — recorded as such
in EXPERIMENTS.md).
"""

import numpy as np

from repro.core.gibbs import GibbsConfig, GibbsLabelModel
from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel
from repro.experiments import perf
from repro.experiments.harness import get_content_experiment

from benchmarks.conftest import emit


def test_section52_speed_comparison(benchmark, scale):
    result = benchmark.pedantic(
        lambda: perf.run_speed(scale=scale), rounds=1, iterations=1
    )
    emit(result)
    row = result.rows[0]
    assert row["steps_per_second"] > 100.0, row      # paper: >100 steps/s
    assert row["speedup"] >= 2.0, row                # paper: ~2x


def test_sampling_free_step(benchmark, scale):
    """Microbenchmark: one exact-gradient step at batch 64, 8-10 LFs."""
    exp = get_content_experiment("product", scale)
    L = exp.L_unlabeled.matrix.astype(np.float64)
    model = SamplingFreeLabelModel(LabelModelConfig(batch_size=64))
    model.init_params(L.shape[1])
    rng = np.random.default_rng(0)
    batch = L[rng.integers(0, len(L), size=64)]

    benchmark(model.partial_step, batch)


def test_gibbs_batch(benchmark, scale):
    """Microbenchmark: one Gibbs sweep + update at batch 64."""
    exp = get_content_experiment("product", scale)
    L = exp.L_unlabeled.matrix
    model = GibbsLabelModel(GibbsConfig(batch_size=64))
    model.alpha = np.full(L.shape[1], 0.7)
    model.beta = np.zeros(L.shape[1])
    rng = np.random.default_rng(0)
    batch = L[rng.integers(0, len(L), size=64)]

    def sweep_and_update():
        y = model._gibbs_sweep(batch, rng)
        model._complete_data_step(batch, y)

    benchmark(sweep_and_update)
