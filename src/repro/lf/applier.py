"""Executing labeling functions and joining their votes.

In production each LF is an independent binary: Snorkel DryBell
"executes the labeling function binary on Google's distributed compute
environment" and then "loads the labeling functions' output into its
generative model" (Figure 4). :class:`LFApplier` reproduces that flow:

1. examples are staged to sharded DFS record files,
2. each LF runs as its own MapReduce job writing its own vote shards,
3. the vote shards are joined on example id into a
   :class:`repro.types.LabelMatrix` (missing ids = abstain).

:func:`apply_lfs_in_memory` is the measurement fast path used by large
parameter sweeps; integration tests assert both paths produce identical
matrices.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.records import iter_record_blobs, write_records
from repro.lf.base import AbstractLabelingFunction, LFRunResult
from repro.lf.default import LabelingFunction
from repro.types import Example, LabelMatrix

__all__ = ["LFApplier", "ApplyReport", "stage_examples", "apply_lfs_in_memory"]


@dataclass
class ApplyReport:
    """Everything a labeling run reports (throughput feeds Section 1's
    6M-points-in-under-30-minutes scale claim)."""

    label_matrix: LabelMatrix
    lf_results: list[LFRunResult]
    wall_seconds: float
    examples: int

    @property
    def examples_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.examples / self.wall_seconds


def stage_examples(
    dfs: DistributedFileSystem,
    examples: Sequence[Example],
    base_path: str,
    num_shards: int = 8,
) -> list[str]:
    """Write examples to sharded record files; returns shard paths."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    from repro.dfs.filesystem import shard_name

    paths = []
    for shard in range(num_shards):
        path = shard_name(base_path, shard, num_shards)
        chunk = (
            examples[i].to_record()
            for i in range(shard, len(examples), num_shards)
        )
        write_records(dfs, path, chunk)
        paths.append(path)
    return paths


class LFApplier:
    """Runs a set of LF binaries over staged examples and joins votes."""

    def __init__(
        self,
        dfs: DistributedFileSystem,
        example_paths: Sequence[str],
        run_root: str = "/runs/default",
        parallelism: int = 1,
    ) -> None:
        self._dfs = dfs
        self._example_paths = list(example_paths)
        self._run_root = run_root.rstrip("/")
        self._parallelism = parallelism

    def apply(self, lfs: Sequence[AbstractLabelingFunction]) -> ApplyReport:
        start = time.perf_counter()
        example_ids = [
            record["example_id"]
            for record in iter_record_blobs(self._dfs, self._example_paths)
        ]

        lf_results = []
        votes_by_lf: dict[str, dict[str, int]] = {}
        for lf in lfs:
            if isinstance(lf, LabelingFunction):
                lf.start_resources()
            try:
                output_base = f"{self._run_root}/{lf.name}/votes"
                result = lf.run(
                    self._dfs,
                    self._example_paths,
                    output_base,
                    parallelism=self._parallelism,
                )
            finally:
                if isinstance(lf, LabelingFunction):
                    lf.stop_resources()
            lf_results.append(result)
            votes_by_lf[lf.name] = {
                record["key"]: int(record["value"])
                for record in iter_record_blobs(self._dfs, result.output_paths)
            }

        matrix = LabelMatrix.from_votes(votes_by_lf, example_ids)
        # Column order of from_votes is sorted; keep the caller's order.
        matrix = matrix.select_lfs([lf.name for lf in lfs])
        wall = time.perf_counter() - start
        return ApplyReport(
            label_matrix=matrix,
            lf_results=lf_results,
            wall_seconds=wall,
            examples=len(example_ids),
        )


def apply_lfs_in_memory(
    lfs: Sequence[AbstractLabelingFunction],
    examples: Sequence[Example],
) -> LabelMatrix:
    """Fast path: vote on in-memory examples, no DFS/MapReduce.

    Produces the same matrix as :class:`LFApplier` (asserted by the
    integration tests); used by benchmarks so parameter sweeps measure
    modeling, not simulator overhead.
    """
    n, m = len(examples), len(lfs)
    matrix = np.zeros((n, m), dtype=np.int8)
    for j, lf in enumerate(lfs):
        if isinstance(lf, LabelingFunction):
            lf.start_resources()
        try:
            for i, example in enumerate(examples):
                matrix[i, j] = lf.vote_in_memory(example)
        finally:
            if isinstance(lf, LabelingFunction):
                lf.stop_resources()
            lf.close_local_service()
    return LabelMatrix(
        matrix,
        [e.example_id for e in examples],
        [lf.name for lf in lfs],
    )
