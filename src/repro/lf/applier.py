"""Executing labeling functions and joining their votes.

In production each LF is an independent binary: Snorkel DryBell
"executes the labeling function binary on Google's distributed compute
environment" and then "loads the labeling functions' output into its
generative model" (Figure 4). :class:`LFApplier` reproduces that flow:

1. examples are staged to sharded DFS record files,
2. each LF runs as its own MapReduce job writing its own vote shards,
3. the vote shards are joined on example id into a
   :class:`repro.types.LabelMatrix` (missing ids = abstain).

:func:`apply_lfs_in_memory` is the measurement fast path used by large
parameter sweeps; integration tests assert both paths produce identical
matrices.

Both paths are *batched*: LF binaries run block-based map tasks
(``batch_size`` records per block) and the vote join is columnar — one
``(n, m)`` int8 matrix filled a column per LF with a vectorized scatter,
instead of the per-``(example, LF)`` dictionary join the seed shipped
with. ``batch_size=None`` (or ``batched=False`` in memory) selects the
original per-example path, kept for equivalence tests and as the
baseline the perf benchmarks measure against.

The in-memory path also parallelizes across *processes*:
``apply_lfs_in_memory(..., workers=N, suite_spec=...)`` shards example
blocks over a :class:`repro.parallel.ParallelLabelExecutor` and
reassembles votes in block order, bit-exact with the serial run (the
GIL makes threads useless here; processes are the unit that scales).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dfs.filesystem import DistributedFileSystem, shard_name
from repro.dfs.records import (
    DEFAULT_BLOCK_SIZE,
    RecordReader,
    RecordWriter,
    iter_record_blobs,
    write_records,
)
from repro.lf.base import AbstractLabelingFunction, LFRunResult
from repro.lf.default import LabelingFunction
from repro.mapreduce.runner import MapContext, MapReduceJob, MapReduceSpec
from repro.types import Example, LabelMatrix

__all__ = [
    "LFApplier",
    "ApplyReport",
    "stage_examples",
    "apply_lfs_in_memory",
    "fused_lf_columns",
    "label_example_block",
    "start_lf_resources",
    "stop_lf_resources",
    "DEFAULT_MEMORY_BATCH",
]

#: Block size for the in-memory batched path. Big enough that NumPy and
#: set-intersection kernels dominate Python dispatch, small enough that a
#: block's intermediates stay cache-resident.
DEFAULT_MEMORY_BATCH = 8192


@dataclass
class ApplyReport:
    """Everything a labeling run reports (throughput feeds Section 1's
    6M-points-in-under-30-minutes scale claim)."""

    label_matrix: LabelMatrix
    lf_results: list[LFRunResult]
    wall_seconds: float
    examples: int

    @property
    def examples_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.examples / self.wall_seconds


def stage_examples(
    dfs: DistributedFileSystem,
    examples: Sequence[Example],
    base_path: str,
    num_shards: int = 8,
) -> list[str]:
    """Write examples to sharded record files; returns shard paths."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    from repro.dfs.filesystem import shard_name

    paths = []
    for shard in range(num_shards):
        path = shard_name(base_path, shard, num_shards)
        chunk = (
            examples[i].to_record()
            for i in range(shard, len(examples), num_shards)
        )
        write_records(dfs, path, chunk)
        paths.append(path)
    return paths


def fused_lf_columns(lfs: Sequence[AbstractLabelingFunction]) -> list[int]:
    """Indices of LFs carrying a declarative fused batch spec."""
    return [
        j for j, lf in enumerate(lfs)
        if getattr(lf, "fused_spec", None) is not None
    ]


def start_lf_resources(lfs: Sequence[AbstractLabelingFunction]) -> None:
    """Bring up every LF's offline resources for a bulk run."""
    for lf in lfs:
        if isinstance(lf, LabelingFunction):
            lf.start_resources()


def stop_lf_resources(lfs: Sequence[AbstractLabelingFunction]) -> None:
    """Tear down resources and any node-local services after a run."""
    for lf in lfs:
        if isinstance(lf, LabelingFunction):
            lf.stop_resources()
        lf.close_local_service()


def label_example_block(
    lfs: Sequence[AbstractLabelingFunction],
    examples: Sequence[Example],
    fused_cols: Sequence[int] | None = None,
) -> np.ndarray:
    """Vote every LF on one in-memory block; returns ``(n, m)`` int8.

    The single batched-labeling kernel shared by the offline applier and
    the micro-batch streaming pipeline: LFs with a fused spec are
    evaluated in one tokenize-once pass (:func:`apply_fused_batch_specs`)
    and the rest through their ``label_batch`` kernels. Callers manage
    resource lifecycle (:func:`start_lf_resources` /
    :func:`stop_lf_resources`) around the run.
    """
    if fused_cols is None:
        fused_cols = fused_lf_columns(lfs)
    votes = np.zeros((len(examples), len(lfs)), dtype=np.int8)
    if not examples:
        return votes
    fused_set = frozenset(fused_cols)
    if fused_cols:
        from repro.lf.templates import apply_fused_batch_specs

        votes[:, list(fused_cols)] = apply_fused_batch_specs(
            [lfs[j].fused_spec for j in fused_cols], examples
        )
    for j, lf in enumerate(lfs):
        if j not in fused_set:
            votes[:, j] = lf.label_batch(examples)
    return votes


def _run_fused_lf_group(
    dfs: DistributedFileSystem,
    fused: Sequence[tuple[int, AbstractLabelingFunction]],
    example_paths: Sequence[str],
    run_root: str,
    parallelism: int,
    batch_size: int,
) -> dict[int, LFRunResult]:
    """Run every fused-spec LF as ONE MapReduce job over the examples.

    The per-LF execution model re-tokenizes every record once per LF
    binary; this job instead calls :func:`apply_fused_batch_specs` in its
    block mapper — one tokenization and one inverted-index probe per
    record for the whole group — then demultiplexes the combined vote
    shards into per-LF shard files that are byte-identical to what each
    LF's own job would have written (asserted by the equivalence suite).
    Returns ``{lf column -> LFRunResult}``.
    """
    from repro.lf.templates import apply_fused_batch_specs

    specs = [lf.fused_spec for _, lf in fused]
    names = [lf.name for _, lf in fused]
    # repro: allow[determinism] wall_seconds is reporting-only; vote shards never see it
    start = time.perf_counter()

    def batch_mapper(ctx: MapContext, records: list[dict]) -> None:
        examples = [Example.from_record(record) for record in records]
        votes = apply_fused_batch_specs(specs, examples)
        ctx.counters.increment("examples_seen", len(examples))
        for k, name in enumerate(names):
            column = votes[:, k]
            positives = int(np.count_nonzero(column > 0))
            negatives = int(np.count_nonzero(column < 0))
            abstains = len(examples) - positives - negatives
            for suffix, amount in (
                ("abstains", abstains),
                ("positives", positives),
                ("negatives", negatives),
            ):
                if amount:
                    ctx.counters.increment(f"{name}/{suffix}", amount)
        # Emit one combined record per example with any non-abstain vote,
        # in record order, so the demux below can rebuild each LF's
        # sparse vote file exactly.
        for i in np.flatnonzero(np.any(votes != 0, axis=1)):
            ctx.emit(
                examples[i].example_id, [int(v) for v in votes[i]]
            )

    spec = MapReduceSpec(
        name="lf/_fused",
        input_paths=list(example_paths),
        output_base=f"{run_root}/_fused/votes",
        mapper=None,
        batch_mapper=batch_mapper,
        map_block_size=batch_size,
        reducer=None,
        parallelism=parallelism,
    )
    result = MapReduceJob(dfs, spec).run()

    # Demux: split each combined shard into per-LF vote shards under the
    # same names the per-LF jobs use. One read of the combined shard
    # feeds every LF's writer; emissions stay in record order, so shard
    # bytes match the unfused path exactly.
    n_shards = len(result.output_paths)
    output_paths: list[list[str]] = [[] for _ in fused]
    votes_out = [0] * len(fused)
    for s, combined_path in enumerate(result.output_paths):
        writers: list[RecordWriter] = []
        try:
            for k, (_, lf) in enumerate(fused):
                out = shard_name(f"{run_root}/{lf.name}/votes", s, n_shards)
                writers.append(RecordWriter(dfs, out))
                output_paths[k].append(out)
            for record in RecordReader(dfs, combined_path):
                key = record["key"]
                for k, vote in enumerate(record["value"]):
                    if vote:
                        writers[k].write({"key": key, "value": int(vote)})
                        votes_out[k] += 1
        except BaseException:
            for writer in writers:
                writer.abandon()
            raise
        for writer in writers:
            writer.close()
        # The combined shard is a demux intermediate; nothing reads it
        # after this point, so release the bytes.
        dfs.delete(combined_path)

    # repro: allow[determinism] group wall-clock feeds LFRunResult reporting, not artifacts
    wall = time.perf_counter() - start
    counters = result.counters
    results: dict[int, LFRunResult] = {}
    for k, (col, lf) in enumerate(fused):
        results[col] = LFRunResult(
            lf_name=lf.name,
            output_paths=output_paths[k],
            examples_seen=counters.value("examples_seen"),
            votes_emitted=votes_out[k],
            positives=counters.value(f"{lf.name}/positives"),
            negatives=counters.value(f"{lf.name}/negatives"),
            abstains=counters.value(f"{lf.name}/abstains"),
            # The group shares one job; each LF reports the group wall.
            wall_seconds=wall,
            nodes_used=result.node_count,
        )
    return results


class LFApplier:
    """Runs a set of LF binaries over staged examples and joins votes."""

    def __init__(
        self,
        dfs: DistributedFileSystem,
        example_paths: Sequence[str],
        run_root: str = "/runs/default",
        parallelism: int = 1,
        batch_size: int | None = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self._dfs = dfs
        self._example_paths = list(example_paths)
        self._run_root = run_root.rstrip("/")
        self._parallelism = parallelism
        self._batch_size = batch_size

    def apply(self, lfs: Sequence[AbstractLabelingFunction]) -> ApplyReport:
        # repro: allow[determinism] ApplyReport.wall_seconds is throughput reporting only
        start = time.perf_counter()
        example_ids = [
            record["example_id"]
            for record in iter_record_blobs(self._dfs, self._example_paths)
        ]
        # Columnar join: one O(n) id index, then each LF's sparse vote
        # shards scatter into their own int8 column.
        id_index = {eid: i for i, eid in enumerate(example_ids)}
        matrix = np.zeros((len(example_ids), len(lfs)), dtype=np.int8)

        # Batched runs execute every fused-spec LF as one MapReduce job
        # (tokenize once per record for the whole group); fusing only
        # pays with at least two participants.
        fused_results: dict[int, LFRunResult] = {}
        if self._batch_size is not None:
            fused = [
                (j, lfs[j]) for j in fused_lf_columns(lfs)
            ]
            if len(fused) >= 2:
                for _, lf in fused:
                    if isinstance(lf, LabelingFunction):
                        lf.start_resources()
                try:
                    fused_results = _run_fused_lf_group(
                        self._dfs,
                        fused,
                        self._example_paths,
                        self._run_root,
                        self._parallelism,
                        self._batch_size,
                    )
                finally:
                    for _, lf in fused:
                        if isinstance(lf, LabelingFunction):
                            lf.stop_resources()

        lf_results = []
        for j, lf in enumerate(lfs):
            if j in fused_results:
                result = fused_results[j]
            else:
                if isinstance(lf, LabelingFunction):
                    lf.start_resources()
                try:
                    output_base = f"{self._run_root}/{lf.name}/votes"
                    result = lf.run(
                        self._dfs,
                        self._example_paths,
                        output_base,
                        parallelism=self._parallelism,
                        batch_size=self._batch_size,
                    )
                finally:
                    if isinstance(lf, LabelingFunction):
                        lf.stop_resources()
            lf_results.append(result)
            rows: list[int] = []
            values: list[int] = []
            for record in iter_record_blobs(self._dfs, result.output_paths):
                row = id_index.get(record["key"])
                if row is not None:
                    rows.append(row)
                    values.append(int(record["value"]))
            if rows:
                matrix[np.asarray(rows), j] = np.asarray(values, dtype=np.int8)

        label_matrix = LabelMatrix(matrix, example_ids, [lf.name for lf in lfs])
        # repro: allow[determinism] wall_seconds is throughput reporting only
        wall = time.perf_counter() - start
        return ApplyReport(
            label_matrix=label_matrix,
            lf_results=lf_results,
            wall_seconds=wall,
            examples=len(example_ids),
        )


def apply_lfs_in_memory(
    lfs: Sequence[AbstractLabelingFunction],
    examples: Sequence[Example],
    batched: bool = True,
    batch_size: int = DEFAULT_MEMORY_BATCH,
    workers: int = 1,
    suite_spec=None,
    executor=None,
    telemetry=None,
    tracer=None,
) -> LabelMatrix:
    """Fast path: vote on in-memory examples, no DFS/MapReduce.

    Produces the same matrix as :class:`LFApplier` (asserted by the
    integration tests); used by benchmarks so parameter sweeps measure
    modeling, not simulator overhead.

    ``batched=True`` (the default) fills each LF's column via
    :meth:`~repro.lf.base.AbstractLabelingFunction.label_batch` in
    ``batch_size`` blocks; ``batched=False`` is the seed's per-example
    loop, kept as the baseline the perf suite compares against.

    ``workers > 1`` shards example blocks across a process pool
    (:class:`repro.parallel.ParallelLabelExecutor`): pass ``suite_spec``
    (a picklable :class:`repro.parallel.LFSuiteSpec` that rebuilds
    ``lfs`` in each worker) or a live ``executor`` to reuse a warmed
    pool. The matrix is byte-identical to the serial batched path at
    every worker count — the equivalence suite asserts it.

    ``telemetry`` (a :class:`repro.obs.MetricsRegistry`) records
    ``offline/label_block_us`` per batched block plus the
    ``offline/blocks`` / ``offline/examples`` counters, and rides into
    an owned parallel executor (``worker/*`` histograms); ``tracer``
    emits ``offline.label_block`` spans. Both default to off, in which
    case the hot loop runs with zero added timing calls — the votes are
    identical either way.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    examples = list(examples)
    n, m = len(examples), len(lfs)
    matrix = np.zeros((n, m), dtype=np.int8)

    parallel = (workers > 1 or executor is not None) and n > 0
    if parallel and not batched:
        raise ValueError("workers > 1 requires the batched path")
    if parallel:
        from repro.parallel import ParallelLabelExecutor, parallel_block_size

        pool_workers = executor.workers if executor is not None else workers
        block = parallel_block_size(n, pool_workers, batch_size)
        owned = executor is None
        if owned:
            if suite_spec is None:
                raise ValueError(
                    "workers > 1 needs a suite_spec (LFs are rebuilt "
                    "inside each worker process) or a live executor"
                )
            executor = ParallelLabelExecutor(
                suite_spec, workers, telemetry=telemetry
            )
        try:
            votes = executor.label_examples(examples, block)
        finally:
            if owned:
                executor.close()
        if votes.shape != (n, m):
            raise ValueError(
                f"worker suite produced votes of shape {votes.shape}; "
                f"this run expects {(n, m)} — the suite_spec must "
                "rebuild the same LF suite"
            )
        matrix = votes
    elif batched:
        # Keyword-style LFs carry a declarative TokenMatchSpec; fuse them
        # so each example is tokenized and index-probed once for the
        # whole group instead of once per LF. The same block kernel
        # drives the streaming pipeline's micro-batches.
        fused_cols = fused_lf_columns(lfs)
        # Telemetry-off keeps the loop free of timing calls entirely;
        # telemetry-on adds two perf_counter reads per *block* (never
        # per example), which the overhead gate bounds.
        active_tracer = (
            tracer if tracer is not None and tracer.enabled else None
        )
        observed = telemetry is not None or active_tracer is not None
        start_lf_resources(lfs)
        try:
            for start in range(0, n, batch_size):
                block = examples[start:start + batch_size]
                if observed:
                    # repro: allow[determinism] timing only taken when telemetry/tracing is on; labels untouched
                    block_start = time.perf_counter()
                matrix[start:start + len(block)] = label_example_block(
                    lfs, block, fused_cols
                )
                if observed:
                    # repro: allow[determinism] histogram payload only; off when telemetry is off
                    block_us = int((time.perf_counter() - block_start) * 1e6)
                    if telemetry is not None:
                        telemetry.record("offline/label_block_us", block_us)
                        telemetry.counter("offline/blocks")
                        telemetry.counter("offline/examples", len(block))
                    if active_tracer is not None:
                        active_tracer.emit(
                            "offline.label_block",
                            block_us,
                            offset=start,
                            records=len(block),
                        )
        finally:
            stop_lf_resources(lfs)
    else:
        for j, lf in enumerate(lfs):
            if isinstance(lf, LabelingFunction):
                lf.start_resources()
            try:
                for i, example in enumerate(examples):
                    matrix[i, j] = lf.vote_in_memory(example)
            finally:
                if isinstance(lf, LabelingFunction):
                    lf.stop_resources()
                lf.close_local_service()
    return LabelMatrix(
        matrix,
        [e.example_id for e in examples],
        [lf.name for lf in lfs],
    )
