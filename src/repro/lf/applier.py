"""Executing labeling functions and joining their votes.

In production each LF is an independent binary: Snorkel DryBell
"executes the labeling function binary on Google's distributed compute
environment" and then "loads the labeling functions' output into its
generative model" (Figure 4). :class:`LFApplier` reproduces that flow:

1. examples are staged to sharded DFS record files,
2. each LF runs as its own MapReduce job writing its own vote shards,
3. the vote shards are joined on example id into a
   :class:`repro.types.LabelMatrix` (missing ids = abstain).

:func:`apply_lfs_in_memory` is the measurement fast path used by large
parameter sweeps; integration tests assert both paths produce identical
matrices.

Both paths are *batched*: LF binaries run block-based map tasks
(``batch_size`` records per block) and the vote join is columnar — one
``(n, m)`` int8 matrix filled a column per LF with a vectorized scatter,
instead of the per-``(example, LF)`` dictionary join the seed shipped
with. ``batch_size=None`` (or ``batched=False`` in memory) selects the
original per-example path, kept for equivalence tests and as the
baseline the perf benchmarks measure against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.records import DEFAULT_BLOCK_SIZE, iter_record_blobs, write_records
from repro.lf.base import AbstractLabelingFunction, LFRunResult
from repro.lf.default import LabelingFunction
from repro.types import Example, LabelMatrix

__all__ = [
    "LFApplier",
    "ApplyReport",
    "stage_examples",
    "apply_lfs_in_memory",
    "DEFAULT_MEMORY_BATCH",
]

#: Block size for the in-memory batched path. Big enough that NumPy and
#: set-intersection kernels dominate Python dispatch, small enough that a
#: block's intermediates stay cache-resident.
DEFAULT_MEMORY_BATCH = 8192


@dataclass
class ApplyReport:
    """Everything a labeling run reports (throughput feeds Section 1's
    6M-points-in-under-30-minutes scale claim)."""

    label_matrix: LabelMatrix
    lf_results: list[LFRunResult]
    wall_seconds: float
    examples: int

    @property
    def examples_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.examples / self.wall_seconds


def stage_examples(
    dfs: DistributedFileSystem,
    examples: Sequence[Example],
    base_path: str,
    num_shards: int = 8,
) -> list[str]:
    """Write examples to sharded record files; returns shard paths."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    from repro.dfs.filesystem import shard_name

    paths = []
    for shard in range(num_shards):
        path = shard_name(base_path, shard, num_shards)
        chunk = (
            examples[i].to_record()
            for i in range(shard, len(examples), num_shards)
        )
        write_records(dfs, path, chunk)
        paths.append(path)
    return paths


class LFApplier:
    """Runs a set of LF binaries over staged examples and joins votes."""

    def __init__(
        self,
        dfs: DistributedFileSystem,
        example_paths: Sequence[str],
        run_root: str = "/runs/default",
        parallelism: int = 1,
        batch_size: int | None = DEFAULT_BLOCK_SIZE,
    ) -> None:
        self._dfs = dfs
        self._example_paths = list(example_paths)
        self._run_root = run_root.rstrip("/")
        self._parallelism = parallelism
        self._batch_size = batch_size

    def apply(self, lfs: Sequence[AbstractLabelingFunction]) -> ApplyReport:
        start = time.perf_counter()
        example_ids = [
            record["example_id"]
            for record in iter_record_blobs(self._dfs, self._example_paths)
        ]
        # Columnar join: one O(n) id index, then each LF's sparse vote
        # shards scatter into their own int8 column.
        id_index = {eid: i for i, eid in enumerate(example_ids)}
        matrix = np.zeros((len(example_ids), len(lfs)), dtype=np.int8)

        lf_results = []
        for j, lf in enumerate(lfs):
            if isinstance(lf, LabelingFunction):
                lf.start_resources()
            try:
                output_base = f"{self._run_root}/{lf.name}/votes"
                result = lf.run(
                    self._dfs,
                    self._example_paths,
                    output_base,
                    parallelism=self._parallelism,
                    batch_size=self._batch_size,
                )
            finally:
                if isinstance(lf, LabelingFunction):
                    lf.stop_resources()
            lf_results.append(result)
            rows: list[int] = []
            values: list[int] = []
            for record in iter_record_blobs(self._dfs, result.output_paths):
                row = id_index.get(record["key"])
                if row is not None:
                    rows.append(row)
                    values.append(int(record["value"]))
            if rows:
                matrix[np.asarray(rows), j] = np.asarray(values, dtype=np.int8)

        label_matrix = LabelMatrix(matrix, example_ids, [lf.name for lf in lfs])
        wall = time.perf_counter() - start
        return ApplyReport(
            label_matrix=label_matrix,
            lf_results=lf_results,
            wall_seconds=wall,
            examples=len(example_ids),
        )


def apply_lfs_in_memory(
    lfs: Sequence[AbstractLabelingFunction],
    examples: Sequence[Example],
    batched: bool = True,
    batch_size: int = DEFAULT_MEMORY_BATCH,
) -> LabelMatrix:
    """Fast path: vote on in-memory examples, no DFS/MapReduce.

    Produces the same matrix as :class:`LFApplier` (asserted by the
    integration tests); used by benchmarks so parameter sweeps measure
    modeling, not simulator overhead.

    ``batched=True`` (the default) fills each LF's column via
    :meth:`~repro.lf.base.AbstractLabelingFunction.label_batch` in
    ``batch_size`` blocks; ``batched=False`` is the seed's per-example
    loop, kept as the baseline the perf suite compares against.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    examples = list(examples)
    n, m = len(examples), len(lfs)
    matrix = np.zeros((n, m), dtype=np.int8)

    # Keyword-style LFs carry a declarative TokenMatchSpec; fuse them so
    # each example is tokenized and index-probed once for the whole
    # group instead of once per LF.
    fused_cols: list[int] = []
    if batched:
        fused_cols = [
            j for j, lf in enumerate(lfs)
            if getattr(lf, "fused_spec", None) is not None
        ]
    if fused_cols:
        from repro.lf.templates import apply_fused_batch_specs

        fused_lfs = [lfs[j] for j in fused_cols]
        for lf in fused_lfs:
            lf.start_resources()
        try:
            fused_votes = apply_fused_batch_specs(
                [lf.fused_spec for lf in fused_lfs], examples
            )
            matrix[:, fused_cols] = fused_votes
        finally:
            for lf in fused_lfs:
                lf.stop_resources()

    for j, lf in enumerate(lfs):
        if j in fused_cols:
            continue
        if isinstance(lf, LabelingFunction):
            lf.start_resources()
        try:
            if batched:
                for start in range(0, n, batch_size):
                    block = examples[start:start + batch_size]
                    matrix[start:start + len(block), j] = lf.label_batch(block)
            else:
                for i, example in enumerate(examples):
                    matrix[i, j] = lf.vote_in_memory(example)
        finally:
            if isinstance(lf, LabelingFunction):
                lf.stop_resources()
            lf.close_local_service()
    return LabelMatrix(
        matrix,
        [e.example_id for e in examples],
        [lf.name for lf in lfs],
    )
