"""``AbstractLabelingFunction``: the root of the template library.

Section 5.1: "We achieve this by implementing an AbstractLabelingFunction
class that handles all input and output to Google's distributed
filesystem. Each subclass defines a MapReduce pipeline, with class
template slots for functions to be executed within the pipeline."

The reproduction follows the same contract:

* :meth:`run` is the whole "labeling function binary": it reads example
  records from the DFS, executes the subclass-defined MapReduce pipeline,
  and writes one vote record per non-abstaining example to its own
  sharded output — LFs never share state except through the filesystem
  (Section 5.4's loosely-coupled design).
* Subclasses override :meth:`_node_service_factory` (which model server,
  if any, to launch per compute node) and :meth:`_vote` (the per-example
  slot an engineer writes).

Vote records have the shape ``{"key": example_id, "value": vote}`` with
``vote in {-1, +1}`` (abstains are simply not written; the join treats
missing ids as abstain, exactly like sparse vote files at Google scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.records import DEFAULT_BLOCK_SIZE
from repro.mapreduce.runner import MapContext, MapReduceJob, MapReduceSpec
from repro.lf.registry import LFInfo
from repro.services.base import ModelServer
from repro.types import ABSTAIN, Example

__all__ = ["AbstractLabelingFunction", "LFRunResult", "VALID_VOTES"]

#: The only legal votes in the binary setting (Section 5.1's ``LFVote``).
VALID_VOTES = (-1, 0, 1)


@dataclass
class LFRunResult:
    """Outcome of executing one labeling-function binary."""

    lf_name: str
    output_paths: list[str]
    examples_seen: int
    votes_emitted: int
    positives: int
    negatives: int
    abstains: int
    wall_seconds: float
    nodes_used: int
    virtual_service_ms: float = 0.0

    @property
    def coverage(self) -> float:
        if self.examples_seen == 0:
            return 0.0
        return self.votes_emitted / self.examples_seen


class AbstractLabelingFunction:
    """Base class handling DFS I/O and MapReduce execution."""

    def __init__(self, info: LFInfo) -> None:
        self.info = info

    @property
    def name(self) -> str:
        return self.info.name

    # ------------------------------------------------------------------
    # template slots
    # ------------------------------------------------------------------
    def _node_service_factory(self) -> Callable[[], ModelServer] | None:
        """Return a factory for the per-node model server, or ``None``.

        The default pipeline launches no additional services; the NLP
        pipeline overrides this (Section 5.1).
        """
        return None

    def _vote(self, example: Example, service: ModelServer | None) -> int:
        """Compute the LF's vote for one example (the engineer's code)."""
        raise NotImplementedError

    def _vote_batch(
        self, examples: Sequence[Example], service: ModelServer | None
    ) -> np.ndarray:
        """Compute votes for a block of examples.

        The default implementation loops :meth:`_vote`, so every existing
        subclass works on the batched execution path unchanged; pipelines
        with a vectorized kernel override this and return an ``int8``
        array of shape ``(len(examples),)``.
        """
        # int64 so an out-of-range vote reaches _validate_votes intact
        # instead of being silently wrapped by an int8 cast.
        return np.fromiter(
            (self._vote(example, service) for example in examples),
            dtype=np.int64,
            count=len(examples),
        )

    def _validate_votes(self, votes: np.ndarray, expected: int) -> np.ndarray:
        """Check a batch of votes and normalize the dtype to ``int8``."""
        arr = np.asarray(votes)
        if arr.shape != (expected,):
            raise ValueError(
                f"labeling function {self.name!r} returned votes of shape "
                f"{arr.shape} for a batch of {expected} examples"
            )
        if not np.isin(arr, VALID_VOTES).all():
            bad = arr[~np.isin(arr, VALID_VOTES)][0]
            raise ValueError(
                f"labeling function {self.name!r} returned invalid vote "
                f"{bad!r} (must be -1, 0, or +1)"
            )
        return arr.astype(np.int8, copy=False)

    # ------------------------------------------------------------------
    # execution = one MapReduce job over the example shards
    # ------------------------------------------------------------------
    def run(
        self,
        dfs: DistributedFileSystem,
        input_paths: Sequence[str],
        output_base: str,
        parallelism: int = 1,
        tasks_per_node: int = 4,
        fail_injector: Callable[[int, int], None] | None = None,
        batch_size: int | None = DEFAULT_BLOCK_SIZE,
    ) -> LFRunResult:
        """Execute this LF over example record files; write vote shards.

        ``batch_size`` selects the batched mapper path (map tasks consume
        blocks of records and call :meth:`_vote_batch`); ``None`` selects
        the per-record mapper. Both produce byte-identical vote shards —
        the equivalence suite asserts this for every shipped LF.
        """

        def mapper(ctx: MapContext, record: dict) -> None:
            example = Example.from_record(record)
            service = ctx.service if ctx.has_service else None
            vote = self._vote(example, service)
            if vote not in VALID_VOTES:
                raise ValueError(
                    f"labeling function {self.name!r} returned invalid vote "
                    f"{vote!r} (must be -1, 0, or +1)"
                )
            ctx.counters.increment("examples_seen")
            if vote == ABSTAIN:
                ctx.counters.increment("abstains")
                return
            ctx.counters.increment("positives" if vote > 0 else "negatives")
            ctx.emit(example.example_id, vote)

        def batch_mapper(ctx: MapContext, records: list[dict]) -> None:
            examples = [Example.from_record(record) for record in records]
            service = ctx.service if ctx.has_service else None
            votes = self._validate_votes(
                self._vote_batch(examples, service), len(examples)
            )
            ctx.counters.increment("examples_seen", len(examples))
            positives = int(np.count_nonzero(votes > 0))
            negatives = int(np.count_nonzero(votes < 0))
            abstains = len(examples) - positives - negatives
            # Touch only the counters the per-record mapper would have,
            # so counter *names* match too, not just totals.
            for name, amount in (
                ("abstains", abstains),
                ("positives", positives),
                ("negatives", negatives),
            ):
                if amount:
                    ctx.counters.increment(name, amount)
            # Emissions stay in record order: shard bytes match the
            # per-record path exactly.
            for i in np.flatnonzero(votes):
                ctx.emit(examples[i].example_id, int(votes[i]))

        spec = MapReduceSpec(
            name=f"lf/{self.name}",
            input_paths=list(input_paths),
            output_base=output_base,
            mapper=mapper,
            batch_mapper=batch_mapper if batch_size is not None else None,
            map_block_size=batch_size or DEFAULT_BLOCK_SIZE,
            reducer=None,
            parallelism=parallelism,
            tasks_per_node=tasks_per_node,
            node_setup=self._node_service_factory(),
            fail_injector=fail_injector,
        )
        result = MapReduceJob(dfs, spec).run()
        counters = result.counters
        return LFRunResult(
            lf_name=self.name,
            output_paths=result.output_paths,
            examples_seen=counters.value("examples_seen"),
            votes_emitted=result.records_out,
            positives=counters.value("positives"),
            negatives=counters.value("negatives"),
            abstains=counters.value("abstains"),
            wall_seconds=result.wall_seconds,
            nodes_used=result.node_count,
        )

    # ------------------------------------------------------------------
    # fast path used by the experiment harness
    # ------------------------------------------------------------------
    def vote_in_memory(self, example: Example) -> int:
        """Vote on one in-memory example, managing any service locally.

        Benchmarks label hundreds of thousands of examples; going through
        DFS + MapReduce for each sweep would measure the simulator, not
        the method. The integration tests assert this fast path agrees
        with :meth:`run` exactly.
        """
        factory = self._node_service_factory()
        if factory is None:
            return self._vote(example, None)
        service = self._ensure_local_service(factory)
        return self._vote(example, service)

    def label(self, example: Example) -> int:
        """Alias for :meth:`vote_in_memory` — the per-example API."""
        return self.vote_in_memory(example)

    def label_batch(self, examples: Sequence[Example]) -> np.ndarray:
        """Vote on a block of in-memory examples; returns an ``int8`` array.

        This is the batched counterpart of :meth:`vote_in_memory`: it
        manages any node-local service, dispatches to :meth:`_vote_batch`
        (vectorized where the pipeline provides a kernel, per-example
        fallback otherwise), and validates the result. The equivalence
        suite asserts ``label_batch(xs) == [label(x) for x in xs]`` for
        every shipped LF.
        """
        examples = list(examples)
        factory = self._node_service_factory()
        service = (
            self._ensure_local_service(factory) if factory is not None else None
        )
        votes = self._vote_batch(examples, service)
        return self._validate_votes(votes, len(examples))

    _local_service: ModelServer | None = None

    def _ensure_local_service(
        self, factory: Callable[[], ModelServer]
    ) -> ModelServer:
        if self._local_service is None:
            self._local_service = factory()
            self._local_service.start()
        return self._local_service

    def close_local_service(self) -> None:
        if self._local_service is not None:
            self._local_service.stop()
            self._local_service = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"category={self.info.category.value!r}, "
            f"servable={self.info.servable})"
        )
