"""Labeling-function metadata and taxonomy.

Figure 2 of the paper plots the distribution of weak-supervision types per
application using four coarse buckets; Section 6.3's ablation needs to
know which LFs "depend on non-servable resources". Both facts are
metadata about labeling functions, captured here as :class:`LFInfo` and
aggregated by :class:`LFRegistry`.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Iterable

__all__ = ["LFCategory", "LFInfo", "LFRegistry"]


class LFCategory(enum.Enum):
    """The paper's coarse-grained weak-supervision buckets (Section 3)."""

    SOURCE_HEURISTIC = "source heuristic"
    CONTENT_HEURISTIC = "content heuristic"
    MODEL_BASED = "model-based"
    GRAPH_BASED = "graph-based"
    OTHER_HEURISTIC = "other heuristic"


@dataclass(frozen=True)
class LFInfo:
    """Descriptive metadata for one labeling function.

    ``servable`` marks whether every resource the LF touches is available
    in the production serving path (Section 4); the Table 3 ablation keeps
    only servable LFs.
    """

    name: str
    category: LFCategory
    servable: bool
    description: str = ""
    resources: tuple[str, ...] = ()


class LFRegistry:
    """A named collection of LF metadata for one application."""

    def __init__(self, application: str) -> None:
        self.application = application
        self._infos: dict[str, LFInfo] = {}

    def register(self, info: LFInfo) -> LFInfo:
        if info.name in self._infos:
            raise ValueError(
                f"labeling function {info.name!r} already registered for "
                f"{self.application}"
            )
        self._infos[info.name] = info
        return info

    def __len__(self) -> int:
        return len(self._infos)

    def __contains__(self, name: str) -> bool:
        return name in self._infos

    def info(self, name: str) -> LFInfo:
        return self._infos[name]

    def names(self) -> list[str]:
        return sorted(self._infos)

    def servable_names(self) -> list[str]:
        """LFs usable in the Table 3 'Servable LFs' ablation arm."""
        return sorted(n for n, i in self._infos.items() if i.servable)

    def non_servable_names(self) -> list[str]:
        return sorted(n for n, i in self._infos.items() if not i.servable)

    def category_counts(self) -> dict[LFCategory, int]:
        """LF count per category — the data behind Figure 2."""
        counts: Counter[LFCategory] = Counter(
            info.category for info in self._infos.values()
        )
        return dict(counts)

    def category_distribution(self) -> dict[str, float]:
        """Normalized category mix (fractions sum to 1)."""
        counts = self.category_counts()
        total = sum(counts.values())
        if total == 0:
            return {}
        return {
            category.value: count / total for category, count in counts.items()
        }

    def merge(self, other: "LFRegistry") -> "LFRegistry":
        merged = LFRegistry(f"{self.application}+{other.application}")
        for info in list(self._infos.values()) + list(other._infos.values()):
            merged.register(info)
        return merged

    @staticmethod
    def figure2_table(registries: Iterable["LFRegistry"]) -> list[dict[str, object]]:
        """Rows of (application, category, count, fraction) across
        applications — the Figure 2 dataset."""
        rows = []
        for registry in registries:
            counts = registry.category_counts()
            total = sum(counts.values())
            for category in LFCategory:
                count = counts.get(category, 0)
                if count == 0:
                    continue
                rows.append(
                    {
                        "application": registry.application,
                        "category": category.value,
                        "count": count,
                        "fraction": count / total,
                    }
                )
        return rows
