"""The NLP labeling-function pipeline.

This is the reproduction of the paper's central code example
(Section 5.1): an ``NLPLabelingFunction`` parameterized by two template
slots —

* ``get_text(example) -> str`` selects the text to send to the NLP model
  server ("StrCat(x.title, " ", x.body)") and
* ``get_value(example, nlp_result) -> vote`` computes the vote from the
  example plus the server's annotations ("if nlp.entities.people.size()
  == 0 return NEGATIVE; else return ABSTAIN;").

Because the NLP models are too expensive to run on all content, the
pipeline launches one model server per MapReduce compute node
(:meth:`_node_service_factory`), and every annotation is accounted
against that server's virtual-latency budget.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.lf.base import AbstractLabelingFunction
from repro.lf.registry import LFCategory, LFInfo
from repro.services.base import ModelServer, ServiceUnavailable
from repro.services.nlp_server import NLPResult, NLPServer
from repro.types import Example

__all__ = ["NLPLabelingFunction", "celebrity_example_lf"]


class NLPLabelingFunction(AbstractLabelingFunction):
    """Model-server pipeline with ``get_text``/``get_value`` slots."""

    def __init__(
        self,
        info: LFInfo,
        get_text: Callable[[Example], str],
        get_value: Callable[[Example, NLPResult], int],
        server_factory: Callable[[], NLPServer],
    ) -> None:
        super().__init__(info)
        self._get_text = get_text
        self._get_value = get_value
        self._server_factory = server_factory

    def _node_service_factory(self) -> Callable[[], ModelServer]:
        return self._server_factory

    def _vote(self, example: Example, service: ModelServer | None) -> int:
        if service is None:
            raise ServiceUnavailable(
                f"NLP labeling function {self.name!r} requires a node-local "
                f"model server; none was launched"
            )
        text = self._get_text(example)
        nlp = service.annotate(text)  # type: ignore[attr-defined]
        return self._get_value(example, nlp)

    def _vote_batch(
        self, examples: Sequence[Example], service: ModelServer | None
    ) -> np.ndarray:
        """Annotate a block against the node-local server.

        The model server is the cost center (every ``annotate`` call is
        accounted against its virtual-latency budget, exactly as in the
        per-example path), but the batch path checks the service and
        resolves the template slots once per block instead of per
        example.
        """
        if service is None:
            raise ServiceUnavailable(
                f"NLP labeling function {self.name!r} requires a node-local "
                f"model server; none was launched"
            )
        get_text, get_value = self._get_text, self._get_value
        annotate = service.annotate  # type: ignore[attr-defined]
        return np.fromiter(
            (
                get_value(example, annotate(get_text(example)))
                for example in examples
            ),
            dtype=np.int64,
            count=len(examples),
        )


def celebrity_example_lf(
    server_factory: Callable[[], NLPServer],
    name: str = "nlp_no_person_negative",
) -> NLPLabelingFunction:
    """The paper's worked example, verbatim in Python.

    "The labeling function labels any content that does not contain a
    person as not related to celebrities."
    """

    def get_text(x: Example) -> str:
        return f"{x.fields.get('title', '')} {x.fields.get('body', '')}"

    def get_value(x: Example, nlp: NLPResult) -> int:
        if len(nlp.people) == 0:
            return -1  # NEGATIVE
        return 0  # ABSTAIN

    info = LFInfo(
        name=name,
        category=LFCategory.MODEL_BASED,
        servable=False,
        description="no person entities => not celebrity content",
        resources=("nlp-server",),
    )
    return NLPLabelingFunction(info, get_text, get_value, server_factory)
