"""Factory helpers for the recurring weak-supervision patterns.

Section 3 catalogues the labeling-function types used across the three
Google applications: keyword and pattern heuristics over content,
URL-based source heuristics, topic-model vetoes, Knowledge-Graph keyword
translations, internal-model score thresholds, crawler-derived signals,
and aggregate-statistic thresholds. Each factory here returns a
:class:`repro.lf.default.LabelingFunction` wired with the right metadata
(category, servability, resources) so registries, the Figure 2 census,
and the Table 3 ablation all see a consistent inventory.

Every factory wires both template slots of the batched execution engine:
the per-example ``fn`` (the engineer-facing code, unchanged from the
paper) and a vectorized ``batch_fn`` used by ``label_batch`` and the
block-based MapReduce mapper. The two are semantically identical — the
equivalence suite asserts vote-for-vote agreement — but the batch
kernels tokenize each example once (memoized across LFs), test keyword
sets with hashed set intersection instead of per-surface scans, and
threshold model scores as NumPy arrays.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import repeat
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.lf.default import LabelingFunction
from repro.lf.registry import LFCategory, LFInfo
from repro.services.aggregates import AggregateStore
from repro.services.knowledge_graph import KnowledgeGraph
from repro.services.nlp_server import tokenize
from repro.services.topic_model import TopicModel
from repro.services.web_crawler import WebCrawler, domain_of
from repro.types import ABSTAIN, Example

__all__ = [
    "keyword_lf",
    "url_domain_lf",
    "pattern_lf",
    "topic_model_lf",
    "kg_translation_lf",
    "kg_category_lf",
    "model_score_lf",
    "crawler_lf",
    "aggregate_threshold_lf",
    "TokenMatchSpec",
    "TopicVetoSpec",
    "apply_fused_batch_specs",
]


def _text_of(example: Example, fields: Sequence[str]) -> str:
    return " ".join(str(example.fields.get(f, "")) for f in fields)


def _contains_any(text: str, surfaces: Iterable[str]) -> bool:
    tokens = set(t.lower() for t in tokenize(text))
    lowered = None
    for surface in surfaces:
        surface = surface.lower()
        if " " in surface:
            if lowered is None:
                lowered = " ".join(t.lower() for t in tokenize(text))
            if surface in lowered:
                return True
        elif surface in tokens:
            return True
    return False


# ----------------------------------------------------------------------
# batch-kernel machinery
# ----------------------------------------------------------------------
#: Edge punctuation stripped by :func:`tokenize`.
_PUNCT = ".,;:!?()[]{}\"'"


def _fast_tokens(lowered_text: str) -> list[str]:
    """One-pass lexer equivalent to ``tokenize(text)`` on lowered text.

    ``split``, ``strip``, and the empty-token filter all run as C loops
    (``map`` with an unbound method and two iterables), which is what
    lets the batch engine tokenize a 20k-example block in tens of
    milliseconds. ``test_batch_equivalence`` asserts agreement with the
    NLP service's :func:`tokenize`.
    """
    return list(
        filter(None, map(str.strip, lowered_text.split(), repeat(_PUNCT)))
    )


#: Attribute used to memoize per-example tokenization. Several LFs in a
#: suite read the same content fields; on the batched path the first LF
#: to touch an example pays for tokenization and the rest reuse it (the
#: per-example path, by design, re-tokenizes for every LF — that cost is
#: exactly what the batch engine removes). Tokens are memoized per
#: *field* and composed by concatenation, so ``("title",)`` and
#: ``("title", "body")`` consumers share the title tokens.
_TOKEN_MEMO_ATTR = "_repro_token_memo"


class _TokenEntry:
    """Memoized tokenization of one example's content fields."""

    __slots__ = ("tokens", "_set", "_joined")

    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self._set: frozenset[str] | None = None
        self._joined: str | None = None

    @property
    def token_set(self) -> frozenset[str]:
        if self._set is None:
            self._set = frozenset(self.tokens)
        return self._set

    @property
    def joined(self) -> str:
        """Space-joined token stream (multi-word surface matching)."""
        if self._joined is None:
            self._joined = " ".join(self.tokens)
        return self._joined


def _example_tokens(example: Example, fields_key: tuple[str, ...]) -> _TokenEntry:
    """Lowercased tokens for one example's content fields, memoized.

    Field texts are joined with a single space before tokenization in
    the scalar path, so the token stream of a multi-field key is exactly
    the concatenation of the per-field token streams — which is how it
    is built here.
    """
    memo = getattr(example, _TOKEN_MEMO_ATTR, None)
    if memo is None:
        memo = {}
        setattr(example, _TOKEN_MEMO_ATTR, memo)
    entry = memo.get(fields_key)
    if entry is None:
        if len(fields_key) == 1:
            text = str(example.fields.get(fields_key[0], ""))
            entry = _TokenEntry(_fast_tokens(text.lower()))
        else:
            tokens: list[str] = []
            for field in fields_key:
                tokens.extend(_example_tokens(example, (field,)).tokens)
            entry = _TokenEntry(tokens)
        memo[fields_key] = entry
    return entry


class _SurfaceMatcher:
    """Keyword-surface matching against pre-tokenized examples.

    Mirrors :func:`_contains_any` exactly: single-token surfaces match by
    set membership (here: one hashed set intersection instead of a scan
    over every surface), multi-token surfaces match as substrings of the
    space-joined lowercased token stream.
    """

    def __init__(self, surfaces: Iterable[str]) -> None:
        lowered = [s.lower() for s in surfaces]
        self.counts = Counter(s for s in lowered if " " not in s)
        self.single = frozenset(self.counts)
        self.multi = tuple(dict.fromkeys(s for s in lowered if " " in s))

    def matches(self, entry: _TokenEntry) -> bool:
        if not self.single.isdisjoint(entry.token_set):
            return True
        if self.multi:
            joined = entry.joined
            return any(m in joined for m in self.multi)
        return False

    def hit_count(self, entry: _TokenEntry) -> int:
        """Surface occurrences found in the token set.

        Matches the per-example ``min_hits`` semantics: duplicate
        surfaces count once each per duplicate, and multi-token surfaces
        never match a (single-token) set entry.
        """
        token_set = entry.token_set
        return sum(c for s, c in self.counts.items() if s in token_set)


def _keyword_batch_votes(
    examples: Sequence[Example],
    matcher: _SurfaceMatcher,
    fields_key: tuple[str, ...],
    vote: int,
    min_hits: int = 1,
) -> np.ndarray:
    votes = np.zeros(len(examples), dtype=np.int8)
    if min_hits <= 1:
        for i, example in enumerate(examples):
            if matcher.matches(_example_tokens(example, fields_key)):
                votes[i] = vote
    else:
        for i, example in enumerate(examples):
            if matcher.hit_count(_example_tokens(example, fields_key)) >= min_hits:
                votes[i] = vote
    return votes


@dataclass(frozen=True)
class TokenMatchSpec:
    """Declarative form of a keyword-style LF for the fused executor.

    Factories whose vote is a pure function of the example's token
    stream (keyword and Knowledge-Graph LFs) attach one of these to the
    :class:`LabelingFunction` they build. The in-memory batch applier
    then *fuses* all such LFs in a suite: one tokenization pass and one
    inverted-index probe per example fills every fused LF's column at
    once, instead of m independent scans. ``get_surfaces`` is resolved
    lazily at execution time, after the LF's resources are running
    (Knowledge-Graph closures are computed by the live service).
    """

    fields: tuple[str, ...]
    get_surfaces: Callable[[], Iterable[str]]
    vote: int
    min_hits: int = 1


@dataclass(frozen=True)
class TopicVetoSpec:
    """Declarative form of a topic-model veto LF for the fused executor.

    The fused pass probes the topic model's inverted keyword index
    alongside the keyword LFs' surfaces — one probe per distinct token —
    and resolves the argmax category per example at the end, reporting
    usage through :meth:`~repro.services.base.ModelServer.record_batch_calls`
    so the virtual-cost accounting matches one model call per document.
    """

    fields: tuple[str, ...]
    topic_model: TopicModel
    veto: frozenset[str]
    vote: int


def apply_fused_batch_specs(
    specs: Sequence[TokenMatchSpec | TopicVetoSpec],
    examples: Sequence[Example],
) -> np.ndarray:
    """Evaluate many token-driven LFs in one pass per example.

    Returns an ``(n_examples, len(specs))`` int8 vote matrix whose
    columns are vote-for-vote identical to running each spec's LF alone
    (asserted by the equivalence suite). Specs are grouped by their
    content-field tuple; within a group each example is tokenized once
    and each token is probed once against a combined inverted index, so
    cost is O(tokens) per example instead of O(tokens x LFs).
    """
    votes = np.zeros((len(examples), len(specs)), dtype=np.int8)
    by_fields: dict[tuple[str, ...], list[int]] = {}
    for k, spec in enumerate(specs):
        by_fields.setdefault(spec.fields, []).append(k)

    for fields_key, cols in by_fields.items():
        # One combined inverted index for the whole group:
        # token -> (direct, counted, topic) action lists, where
        #   direct:  [(column, vote)]          any-hit keyword specs
        #   counted: [(column, weight)]        min_hits keyword specs
        #   topic:   [(topic slot, categories)] topic-model specs
        combined: dict[str, tuple[list, list, list]] = {}

        def _entry(token: str) -> tuple[list, list, list]:
            entry = combined.get(token)
            if entry is None:
                entry = combined[token] = ([], [], [])
            return entry

        thresholds: list[tuple[int, int, int]] = []  # (column, min_hits, vote)
        multis: list[tuple[int, int, tuple[str, ...]]] = []  # (column, vote, surfaces)
        topics: list[tuple[int, frozenset[str], int]] = []  # (column, veto, vote)
        for k in cols:
            spec = specs[k]
            if isinstance(spec, TopicVetoSpec):
                spec.topic_model.record_batch_calls(len(examples))
                slot = len(topics)
                for keyword, cats in spec.topic_model.keyword_index.items():
                    _entry(keyword)[2].append((slot, cats))
                topics.append((k, spec.veto, spec.vote))
                continue
            lowered = [s.lower() for s in spec.get_surfaces()]
            singles = [s for s in lowered if " " not in s]
            multi = tuple(dict.fromkeys(s for s in lowered if " " in s))
            if spec.min_hits <= 1:
                for s in set(singles):
                    _entry(s)[0].append((k, spec.vote))
                if multi:
                    multis.append((k, spec.vote, multi))
            else:
                for s, c in Counter(singles).items():
                    _entry(s)[1].append((k, c))
                thresholds.append((k, spec.min_hits, spec.vote))

        for i, example in enumerate(examples):
            entry = _example_tokens(example, fields_key)
            tokens = entry.tokens
            seen: set[str] | None = None
            counts: dict[int, int] | None = None
            topic_hits: list[dict[str, int] | None] = [None] * len(topics)
            for token in tokens:
                actions = combined.get(token)
                if actions is None:
                    continue
                if seen is None:
                    seen = {token}
                elif token in seen:
                    continue
                else:
                    seen.add(token)
                direct, counted, topical = actions
                for col, vote in direct:
                    votes[i, col] = vote
                if counted:
                    if counts is None:
                        counts = {}
                    for col, weight in counted:
                        counts[col] = counts.get(col, 0) + weight
                for slot, cats in topical:
                    hits = topic_hits[slot]
                    if hits is None:
                        hits = topic_hits[slot] = {}
                    for cat in cats:
                        hits[cat] = hits.get(cat, 0) + 1
            if counts is not None:
                for col, min_hits, vote in thresholds:
                    if counts.get(col, 0) >= min_hits:
                        votes[i, col] = vote
            for slot, (col, veto, vote) in enumerate(topics):
                hits = topic_hits[slot]
                if hits:
                    # Same argmax + (score desc, category asc) tie-break
                    # as TopicModel.top_category: the score denominator
                    # (distinct token count) is shared by all categories.
                    top = min(hits, key=lambda cat: (-hits[cat], cat))
                    if top.lower() in veto:
                        votes[i, col] = vote
            for col, vote, surfaces in multis:
                if votes[i, col] == ABSTAIN and any(
                    m in entry.joined for m in surfaces
                ):
                    votes[i, col] = vote
    return votes


def keyword_lf(
    name: str,
    keywords: Iterable[str],
    vote: int,
    fields: Sequence[str] = ("title", "body"),
    min_hits: int = 1,
    description: str = "",
) -> LabelingFunction:
    """Vote when at least ``min_hits`` keywords appear in the content.

    Keyword heuristics run on raw content, which is available at serving
    time — they are the archetypal *servable* LF (Table 3's "Servable
    LFs" arm is exactly these pattern-based rules).
    """
    surfaces = [k.lower() for k in keywords]
    if not surfaces:
        raise ValueError(f"keyword LF {name!r} needs at least one keyword")
    matcher = _SurfaceMatcher(surfaces)
    fields_key = tuple(fields)

    def fn(example: Example) -> int:
        text = _text_of(example, fields)
        if min_hits <= 1:
            return vote if _contains_any(text, surfaces) else ABSTAIN
        tokens = set(t.lower() for t in tokenize(text))
        hits = sum(1 for s in surfaces if s in tokens)
        return vote if hits >= min_hits else ABSTAIN

    def batch_fn(examples: Sequence[Example]) -> np.ndarray:
        return _keyword_batch_votes(examples, matcher, fields_key, vote, min_hits)

    info = LFInfo(
        name=name,
        category=LFCategory.CONTENT_HEURISTIC,
        servable=True,
        description=description or f"keyword match -> {vote:+d}",
    )
    lf = LabelingFunction(info, fn, batch_fn=batch_fn)
    lf.fused_spec = TokenMatchSpec(fields_key, lambda: surfaces, vote, min_hits)
    return lf


def url_domain_lf(
    name: str,
    domains: Iterable[str],
    vote: int,
    description: str = "",
) -> LabelingFunction:
    """Vote based on the linked URL's domain (Section 3.1 "URL-based").

    The URL string itself is a cheap servable signal; heuristics that need
    *crawled* URL content are built with :func:`crawler_lf` instead.
    """
    domain_set = frozenset(d.lower() for d in domains)

    def fn(example: Example) -> int:
        url = str(example.fields.get("url", ""))
        if not url:
            return ABSTAIN
        return vote if domain_of(url) in domain_set else ABSTAIN

    def batch_fn(examples: Sequence[Example]) -> np.ndarray:
        votes = np.zeros(len(examples), dtype=np.int8)
        # URL pools repeat domains heavily; memoize parses within a block.
        domain_memo: dict[str, str] = {}
        for i, example in enumerate(examples):
            url = str(example.fields.get("url", ""))
            if not url:
                continue
            domain = domain_memo.get(url)
            if domain is None:
                domain = domain_memo[url] = domain_of(url)
            if domain in domain_set:
                votes[i] = vote
        return votes

    info = LFInfo(
        name=name,
        category=LFCategory.SOURCE_HEURISTIC,
        servable=True,
        description=description or f"url domain in list -> {vote:+d}",
    )
    return LabelingFunction(info, fn, batch_fn=batch_fn)


def pattern_lf(
    name: str,
    predicate: Callable[[Example], bool],
    vote: int,
    category: LFCategory = LFCategory.CONTENT_HEURISTIC,
    servable: bool = True,
    description: str = "",
) -> LabelingFunction:
    """Generic predicate heuristic: vote when the predicate holds."""

    def fn(example: Example) -> int:
        return vote if predicate(example) else ABSTAIN

    def batch_fn(examples: Sequence[Example]) -> np.ndarray:
        # The predicate is arbitrary user code, so the kernel is a tight
        # loop rather than true vectorization — it still skips the
        # per-example applier dispatch and vote validation.
        return np.fromiter(
            (vote if predicate(example) else ABSTAIN for example in examples),
            dtype=np.int8,
            count=len(examples),
        )

    info = LFInfo(
        name=name,
        category=category,
        servable=servable,
        description=description or f"predicate -> {vote:+d}",
    )
    return LabelingFunction(info, fn, batch_fn=batch_fn)


def topic_model_lf(
    name: str,
    topic_model: TopicModel,
    veto_categories: Iterable[str],
    vote: int = -1,
    fields: Sequence[str] = ("title", "body"),
    description: str = "",
) -> LabelingFunction:
    """Use the coarse internal topic model as a negative heuristic.

    Section 3.1: the topic model's categorizations are "far too
    coarse-grained for the targeted task at hand, but ... could be used as
    effective negative labeling heuristics" — vote (default NEGATIVE) when
    the argmax category is in the veto set.
    """
    veto = frozenset(c.lower() for c in veto_categories)

    def fn(example: Example) -> int:
        top = topic_model.top_category(_text_of(example, fields))
        if top is not None and top.lower() in veto:
            return vote
        return ABSTAIN

    fields_key = tuple(fields)

    def batch_fn(examples: Sequence[Example]) -> np.ndarray:
        # One tracked model call per example, exactly like the
        # per-example path — the topic model's virtual-latency accounting
        # is part of the cost model and must not be short-circuited — but
        # through the pre-tokenized batch API and the shared token memo.
        top_from_tokens = topic_model.top_category_from_tokens
        votes = np.zeros(len(examples), dtype=np.int8)
        for i, example in enumerate(examples):
            top = top_from_tokens(_example_tokens(example, fields_key).tokens)
            if top is not None and top.lower() in veto:
                votes[i] = vote
        return votes

    info = LFInfo(
        name=name,
        category=LFCategory.MODEL_BASED,
        servable=False,
        description=description or "coarse topic model veto",
        resources=("topic-model",),
    )
    lf = LabelingFunction(info, fn, resources=[topic_model], batch_fn=batch_fn)
    lf.fused_spec = TopicVetoSpec(fields_key, topic_model, veto, vote)
    return lf


def kg_translation_lf(
    name: str,
    kg: KnowledgeGraph,
    keywords: Iterable[str],
    languages: Iterable[str],
    vote: int = 1,
    fields: Sequence[str] = ("title", "body"),
    description: str = "",
) -> LabelingFunction:
    """Match Knowledge-Graph keyword translations (Section 3.2).

    "we queried Google's Knowledge Graph for translations of keywords in
    ten languages" — the surface set is the translation closure of the
    keyword list, computed once per run when the resource starts.
    """
    keyword_list = list(keywords)
    language_list = list(languages)
    cache: dict[str, object] = {}
    fields_key = tuple(fields)

    def surfaces() -> frozenset[str]:
        if "surfaces" not in cache:
            cache["surfaces"] = frozenset(
                kg.translation_closure(keyword_list, language_list)
            )
        return cache["surfaces"]

    def matcher() -> _SurfaceMatcher:
        # Built once per run: the translation closure is hundreds of
        # surfaces, exactly where hashed-set matching pays off most.
        if "matcher" not in cache:
            cache["matcher"] = _SurfaceMatcher(surfaces())
        return cache["matcher"]

    def fn(example: Example) -> int:
        text = _text_of(example, fields)
        return vote if _contains_any(text, surfaces()) else ABSTAIN

    def batch_fn(examples: Sequence[Example]) -> np.ndarray:
        return _keyword_batch_votes(examples, matcher(), fields_key, vote)

    info = LFInfo(
        name=name,
        category=LFCategory.GRAPH_BASED,
        servable=False,
        description=description
        or f"KG translations of {len(keyword_list)} keywords, "
        f"{len(language_list)} languages",
        resources=("knowledge-graph",),
    )
    lf = LabelingFunction(info, fn, resources=[kg], batch_fn=batch_fn)
    lf.fused_spec = TokenMatchSpec(fields_key, surfaces, vote)
    return lf


def kg_category_lf(
    name: str,
    kg: KnowledgeGraph,
    category: str,
    vote: int = 1,
    include_accessories: bool = True,
    fields: Sequence[str] = ("title", "body"),
    description: str = "",
) -> LabelingFunction:
    """Match products the Knowledge Graph files under a category."""
    cache: dict[str, object] = {}
    fields_key = tuple(fields)

    def surfaces() -> frozenset[str]:
        if "surfaces" not in cache:
            cache["surfaces"] = frozenset(
                kg.products_in_category(category, include_accessories)
            )
        return cache["surfaces"]

    def matcher() -> _SurfaceMatcher:
        if "matcher" not in cache:
            cache["matcher"] = _SurfaceMatcher(surfaces())
        return cache["matcher"]

    def fn(example: Example) -> int:
        text = _text_of(example, fields)
        return vote if _contains_any(text, surfaces()) else ABSTAIN

    def batch_fn(examples: Sequence[Example]) -> np.ndarray:
        return _keyword_batch_votes(examples, matcher(), fields_key, vote)

    info = LFInfo(
        name=name,
        category=LFCategory.GRAPH_BASED,
        servable=False,
        description=description or f"KG products under {category!r}",
        resources=("knowledge-graph",),
    )
    lf = LabelingFunction(info, fn, resources=[kg], batch_fn=batch_fn)
    lf.fused_spec = TokenMatchSpec(fields_key, surfaces, vote)
    return lf


def model_score_lf(
    name: str,
    field: str,
    threshold: float,
    vote: int,
    above: bool = True,
    view: str = "non_servable",
    description: str = "",
) -> LabelingFunction:
    """Threshold the score of an existing internal model.

    Section 3.3: "Several smaller models that had previously been
    developed over various feature sets were also used as weak labelers."
    The score is read from the example's servable or non-servable feature
    view; scores computed by expensive offline inference live in the
    non-servable view (the default).
    """
    if view not in ("servable", "non_servable"):
        raise ValueError(f"view must be servable|non_servable, got {view!r}")

    def fn(example: Example) -> int:
        source = example.servable if view == "servable" else example.non_servable
        value = source.get(field)
        if value is None:
            return ABSTAIN
        crosses = value >= threshold if above else value <= threshold
        return vote if crosses else ABSTAIN

    def batch_fn(examples: Sequence[Example]) -> np.ndarray:
        # The genuinely vectorized kernel: gather the score column once,
        # then one NumPy comparison for the whole block.
        if view == "servable":
            raw = [example.servable.get(field) for example in examples]
        else:
            raw = [example.non_servable.get(field) for example in examples]
        present = np.array([value is not None for value in raw], dtype=bool)
        values = np.array(
            [0.0 if value is None else value for value in raw], dtype=np.float64
        )
        crosses = values >= threshold if above else values <= threshold
        return np.where(present & crosses, np.int8(vote), np.int8(ABSTAIN))

    info = LFInfo(
        name=name,
        category=LFCategory.MODEL_BASED,
        servable=(view == "servable"),
        description=description
        or f"{field} {'>=' if above else '<='} {threshold} -> {vote:+d}",
    )
    return LabelingFunction(info, fn, batch_fn=batch_fn)


def crawler_lf(
    name: str,
    crawler: WebCrawler,
    target_categories: Iterable[str],
    vote: int,
    min_quality: float = 0.0,
    description: str = "",
) -> LabelingFunction:
    """Vote from crawled page profiles (high-latency, non-servable)."""
    targets = frozenset(c.lower() for c in target_categories)

    def classify(result) -> int:
        if not result.reachable or result.site_category is None:
            return ABSTAIN
        if (
            result.site_category.lower() in targets
            and result.quality_score >= min_quality
        ):
            return vote
        return ABSTAIN

    def fn(example: Example) -> int:
        url = str(example.fields.get("url", ""))
        if not url:
            return ABSTAIN
        return classify(crawler.crawl(url))

    def batch_fn(examples: Sequence[Example]) -> np.ndarray:
        # One crawl per example with a URL, matching the per-example
        # path's virtual-latency accounting (crawls dominate this LF's
        # cost by design; batching does not pretend otherwise).
        votes = np.zeros(len(examples), dtype=np.int8)
        crawl = crawler.crawl
        for i, example in enumerate(examples):
            url = str(example.fields.get("url", ""))
            if url:
                votes[i] = classify(crawl(url))
        return votes

    info = LFInfo(
        name=name,
        category=LFCategory.SOURCE_HEURISTIC,
        servable=False,
        description=description or "crawled site profile",
        resources=("web-crawler",),
    )
    return LabelingFunction(info, fn, resources=[crawler], batch_fn=batch_fn)


def aggregate_threshold_lf(
    name: str,
    store: AggregateStore,
    stat: str,
    threshold: float,
    vote: int,
    above: bool = True,
    key_field: str = "source_id",
    category: LFCategory = LFCategory.OTHER_HEURISTIC,
    description: str = "",
) -> LabelingFunction:
    """Threshold an offline aggregate statistic for the event's source.

    The incumbent approach for real-time events (Section 3.3) classifies
    "based on offline (or non-servable) features such as aggregate
    statistics"; these heuristics become weak labelers in DryBell.
    """

    def judge(row) -> int:
        if row is None:
            return ABSTAIN
        value = row.stats.get(stat)
        if value is None:
            return ABSTAIN
        crosses = value >= threshold if above else value <= threshold
        return vote if crosses else ABSTAIN

    def fn(example: Example) -> int:
        key = str(example.fields.get(key_field, ""))
        if not key:
            return ABSTAIN
        return judge(store.lookup(key))

    def batch_fn(examples: Sequence[Example]) -> np.ndarray:
        votes = np.zeros(len(examples), dtype=np.int8)
        lookup = store.lookup
        for i, example in enumerate(examples):
            key = str(example.fields.get(key_field, ""))
            if key:
                votes[i] = judge(lookup(key))
        return votes

    info = LFInfo(
        name=name,
        category=category,
        servable=False,
        description=description
        or f"aggregate {stat} {'>=' if above else '<='} {threshold}",
        resources=("aggregate-store",),
    )
    return LabelingFunction(info, fn, resources=[store], batch_fn=batch_fn)
