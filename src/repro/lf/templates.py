"""Factory helpers for the recurring weak-supervision patterns.

Section 3 catalogues the labeling-function types used across the three
Google applications: keyword and pattern heuristics over content,
URL-based source heuristics, topic-model vetoes, Knowledge-Graph keyword
translations, internal-model score thresholds, crawler-derived signals,
and aggregate-statistic thresholds. Each factory here returns a
:class:`repro.lf.default.LabelingFunction` wired with the right metadata
(category, servability, resources) so registries, the Figure 2 census,
and the Table 3 ablation all see a consistent inventory.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.lf.default import LabelingFunction
from repro.lf.registry import LFCategory, LFInfo
from repro.services.aggregates import AggregateStore
from repro.services.knowledge_graph import KnowledgeGraph
from repro.services.nlp_server import tokenize
from repro.services.topic_model import TopicModel
from repro.services.web_crawler import WebCrawler
from repro.types import ABSTAIN, Example

__all__ = [
    "keyword_lf",
    "url_domain_lf",
    "pattern_lf",
    "topic_model_lf",
    "kg_translation_lf",
    "kg_category_lf",
    "model_score_lf",
    "crawler_lf",
    "aggregate_threshold_lf",
]


def _text_of(example: Example, fields: Sequence[str]) -> str:
    return " ".join(str(example.fields.get(f, "")) for f in fields)


def _contains_any(text: str, surfaces: Iterable[str]) -> bool:
    tokens = set(t.lower() for t in tokenize(text))
    lowered = None
    for surface in surfaces:
        surface = surface.lower()
        if " " in surface:
            if lowered is None:
                lowered = " ".join(t.lower() for t in tokenize(text))
            if surface in lowered:
                return True
        elif surface in tokens:
            return True
    return False


def keyword_lf(
    name: str,
    keywords: Iterable[str],
    vote: int,
    fields: Sequence[str] = ("title", "body"),
    min_hits: int = 1,
    description: str = "",
) -> LabelingFunction:
    """Vote when at least ``min_hits`` keywords appear in the content.

    Keyword heuristics run on raw content, which is available at serving
    time — they are the archetypal *servable* LF (Table 3's "Servable
    LFs" arm is exactly these pattern-based rules).
    """
    surfaces = [k.lower() for k in keywords]
    if not surfaces:
        raise ValueError(f"keyword LF {name!r} needs at least one keyword")

    def fn(example: Example) -> int:
        text = _text_of(example, fields)
        if min_hits <= 1:
            return vote if _contains_any(text, surfaces) else ABSTAIN
        tokens = set(t.lower() for t in tokenize(text))
        hits = sum(1 for s in surfaces if s in tokens)
        return vote if hits >= min_hits else ABSTAIN

    info = LFInfo(
        name=name,
        category=LFCategory.CONTENT_HEURISTIC,
        servable=True,
        description=description or f"keyword match -> {vote:+d}",
    )
    return LabelingFunction(info, fn)


def url_domain_lf(
    name: str,
    domains: Iterable[str],
    vote: int,
    description: str = "",
) -> LabelingFunction:
    """Vote based on the linked URL's domain (Section 3.1 "URL-based").

    The URL string itself is a cheap servable signal; heuristics that need
    *crawled* URL content are built with :func:`crawler_lf` instead.
    """
    domain_set = frozenset(d.lower() for d in domains)

    def fn(example: Example) -> int:
        url = str(example.fields.get("url", ""))
        if not url:
            return ABSTAIN
        from repro.services.web_crawler import domain_of

        return vote if domain_of(url) in domain_set else ABSTAIN

    info = LFInfo(
        name=name,
        category=LFCategory.SOURCE_HEURISTIC,
        servable=True,
        description=description or f"url domain in list -> {vote:+d}",
    )
    return LabelingFunction(info, fn)


def pattern_lf(
    name: str,
    predicate: Callable[[Example], bool],
    vote: int,
    category: LFCategory = LFCategory.CONTENT_HEURISTIC,
    servable: bool = True,
    description: str = "",
) -> LabelingFunction:
    """Generic predicate heuristic: vote when the predicate holds."""

    def fn(example: Example) -> int:
        return vote if predicate(example) else ABSTAIN

    info = LFInfo(
        name=name,
        category=category,
        servable=servable,
        description=description or f"predicate -> {vote:+d}",
    )
    return LabelingFunction(info, fn)


def topic_model_lf(
    name: str,
    topic_model: TopicModel,
    veto_categories: Iterable[str],
    vote: int = -1,
    fields: Sequence[str] = ("title", "body"),
    description: str = "",
) -> LabelingFunction:
    """Use the coarse internal topic model as a negative heuristic.

    Section 3.1: the topic model's categorizations are "far too
    coarse-grained for the targeted task at hand, but ... could be used as
    effective negative labeling heuristics" — vote (default NEGATIVE) when
    the argmax category is in the veto set.
    """
    veto = frozenset(c.lower() for c in veto_categories)

    def fn(example: Example) -> int:
        top = topic_model.top_category(_text_of(example, fields))
        if top is not None and top.lower() in veto:
            return vote
        return ABSTAIN

    info = LFInfo(
        name=name,
        category=LFCategory.MODEL_BASED,
        servable=False,
        description=description or "coarse topic model veto",
        resources=("topic-model",),
    )
    return LabelingFunction(info, fn, resources=[topic_model])


def kg_translation_lf(
    name: str,
    kg: KnowledgeGraph,
    keywords: Iterable[str],
    languages: Iterable[str],
    vote: int = 1,
    fields: Sequence[str] = ("title", "body"),
    description: str = "",
) -> LabelingFunction:
    """Match Knowledge-Graph keyword translations (Section 3.2).

    "we queried Google's Knowledge Graph for translations of keywords in
    ten languages" — the surface set is the translation closure of the
    keyword list, computed once per run when the resource starts.
    """
    keyword_list = list(keywords)
    language_list = list(languages)
    cache: dict[str, frozenset[str]] = {}

    def fn(example: Example) -> int:
        if "surfaces" not in cache:
            cache["surfaces"] = frozenset(
                kg.translation_closure(keyword_list, language_list)
            )
        text = _text_of(example, fields)
        return vote if _contains_any(text, cache["surfaces"]) else ABSTAIN

    info = LFInfo(
        name=name,
        category=LFCategory.GRAPH_BASED,
        servable=False,
        description=description
        or f"KG translations of {len(keyword_list)} keywords, "
        f"{len(language_list)} languages",
        resources=("knowledge-graph",),
    )
    return LabelingFunction(info, fn, resources=[kg])


def kg_category_lf(
    name: str,
    kg: KnowledgeGraph,
    category: str,
    vote: int = 1,
    include_accessories: bool = True,
    fields: Sequence[str] = ("title", "body"),
    description: str = "",
) -> LabelingFunction:
    """Match products the Knowledge Graph files under a category."""
    cache: dict[str, frozenset[str]] = {}

    def fn(example: Example) -> int:
        if "surfaces" not in cache:
            cache["surfaces"] = frozenset(
                kg.products_in_category(category, include_accessories)
            )
        text = _text_of(example, fields)
        return vote if _contains_any(text, cache["surfaces"]) else ABSTAIN

    info = LFInfo(
        name=name,
        category=LFCategory.GRAPH_BASED,
        servable=False,
        description=description or f"KG products under {category!r}",
        resources=("knowledge-graph",),
    )
    return LabelingFunction(info, fn, resources=[kg])


def model_score_lf(
    name: str,
    field: str,
    threshold: float,
    vote: int,
    above: bool = True,
    view: str = "non_servable",
    description: str = "",
) -> LabelingFunction:
    """Threshold the score of an existing internal model.

    Section 3.3: "Several smaller models that had previously been
    developed over various feature sets were also used as weak labelers."
    The score is read from the example's servable or non-servable feature
    view; scores computed by expensive offline inference live in the
    non-servable view (the default).
    """
    if view not in ("servable", "non_servable"):
        raise ValueError(f"view must be servable|non_servable, got {view!r}")

    def fn(example: Example) -> int:
        source = example.servable if view == "servable" else example.non_servable
        value = source.get(field)
        if value is None:
            return ABSTAIN
        crosses = value >= threshold if above else value <= threshold
        return vote if crosses else ABSTAIN

    info = LFInfo(
        name=name,
        category=LFCategory.MODEL_BASED,
        servable=(view == "servable"),
        description=description
        or f"{field} {'>=' if above else '<='} {threshold} -> {vote:+d}",
    )
    return LabelingFunction(info, fn)


def crawler_lf(
    name: str,
    crawler: WebCrawler,
    target_categories: Iterable[str],
    vote: int,
    min_quality: float = 0.0,
    description: str = "",
) -> LabelingFunction:
    """Vote from crawled page profiles (high-latency, non-servable)."""
    targets = frozenset(c.lower() for c in target_categories)

    def fn(example: Example) -> int:
        url = str(example.fields.get("url", ""))
        if not url:
            return ABSTAIN
        result = crawler.crawl(url)
        if not result.reachable or result.site_category is None:
            return ABSTAIN
        if result.site_category.lower() in targets and result.quality_score >= min_quality:
            return vote
        return ABSTAIN

    info = LFInfo(
        name=name,
        category=LFCategory.SOURCE_HEURISTIC,
        servable=False,
        description=description or "crawled site profile",
        resources=("web-crawler",),
    )
    return LabelingFunction(info, fn, resources=[crawler])


def aggregate_threshold_lf(
    name: str,
    store: AggregateStore,
    stat: str,
    threshold: float,
    vote: int,
    above: bool = True,
    key_field: str = "source_id",
    category: LFCategory = LFCategory.OTHER_HEURISTIC,
    description: str = "",
) -> LabelingFunction:
    """Threshold an offline aggregate statistic for the event's source.

    The incumbent approach for real-time events (Section 3.3) classifies
    "based on offline (or non-servable) features such as aggregate
    statistics"; these heuristics become weak labelers in DryBell.
    """

    def fn(example: Example) -> int:
        key = str(example.fields.get(key_field, ""))
        if not key:
            return ABSTAIN
        row = store.lookup(key)
        if row is None:
            return ABSTAIN
        value = row.stats.get(stat)
        if value is None:
            return ABSTAIN
        crosses = value >= threshold if above else value <= threshold
        return vote if crosses else ABSTAIN

    info = LFInfo(
        name=name,
        category=category,
        servable=False,
        description=description
        or f"aggregate {stat} {'>=' if above else '<='} {threshold}",
        resources=("aggregate-store",),
    )
    return LabelingFunction(info, fn, resources=[store])
