"""The default labeling-function pipeline.

Section 5.1: "The first pipeline is a default pipeline that does not
launch any additional services; it simply executes a user-defined function
... This class meets the needs of many use cases, such as content
heuristics, model-based heuristics for models that are executed offline as
part of data collection such as semantic categorization, and graph-based
heuristics that can query a knowledge graph offline."

A :class:`LabelingFunction` wraps a plain ``Example -> vote`` callable.
Offline resources it queries (the topic model, the knowledge graph, the
aggregate store) are declared via ``resources`` so the applier can bring
them up for the duration of a run — the lifecycle bug of calling a
stopped service is surfaced loudly by :class:`repro.services.ModelServer`.

A pipeline that can vote on a whole block at once additionally supplies
``batch_fn`` (``Sequence[Example] -> np.ndarray``); the template
factories in :mod:`repro.lf.templates` all do, which is what makes the
batched execution engine fast. Without a ``batch_fn`` the per-example
``fn`` is looped, so handwritten LFs keep working on the batched path.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.lf.base import AbstractLabelingFunction
from repro.lf.registry import LFInfo
from repro.services.base import ModelServer
from repro.types import Example

__all__ = ["LabelingFunction"]


class LabelingFunction(AbstractLabelingFunction):
    """Default pipeline: a user function, no per-node services."""

    #: Declarative batch spec (a :class:`repro.lf.templates.TokenMatchSpec`
    #: or :class:`repro.lf.templates.TopicVetoSpec`), attached by the
    #: template factories whose vote is a pure function of the example's
    #: token stream. When present, the in-memory batch applier fuses all
    #: such LFs into one pass per example.
    fused_spec = None

    def __init__(
        self,
        info: LFInfo,
        fn: Callable[[Example], int],
        resources: Sequence[ModelServer] = (),
        batch_fn: Callable[[Sequence[Example]], np.ndarray] | None = None,
    ) -> None:
        super().__init__(info)
        self._fn = fn
        self._batch_fn = batch_fn
        self.resources = list(resources)

    def _vote(self, example: Example, service: ModelServer | None) -> int:
        # The default pipeline's template slot has no service argument in
        # the paper; `service` is always None here.
        return self._fn(example)

    def _vote_batch(
        self, examples: Sequence[Example], service: ModelServer | None
    ) -> np.ndarray:
        if self._batch_fn is not None:
            return self._batch_fn(examples)
        return super()._vote_batch(examples, service)

    # ------------------------------------------------------------------
    # offline resource lifecycle (managed by the applier)
    # ------------------------------------------------------------------
    def start_resources(self) -> None:
        for resource in self.resources:
            resource.start()

    def stop_resources(self) -> None:
        for resource in self.resources:
            resource.stop()

    def vote_in_memory(self, example: Example) -> int:
        # Offline resources are started lazily for ad-hoc in-memory use;
        # bulk paths call start_resources()/stop_resources() around runs.
        self._ensure_resources()
        return self._fn(example)

    def label_batch(self, examples: Sequence[Example]) -> np.ndarray:
        self._ensure_resources()
        return super().label_batch(examples)

    def _ensure_resources(self) -> None:
        for resource in self.resources:
            if not resource.running:
                resource.start()
