"""The labeling-function template library (Section 5.1).

The paper ships "a library of templated C++ classes" whose goal "is to
abstract away the repeated development of code for reading and writing to
Google's distributed filesystem, and for executing MapReduce pipelines".
Engineers "write only simple main files that define the function(s) that
computes the labeling function's vote for an individual example".

The Python reproduction keeps the same three-level shape:

* :class:`AbstractLabelingFunction` — owns all DFS I/O and the MapReduce
  pipeline definition; subclasses fill in template slots.
* :class:`LabelingFunction` — the default pipeline: a user function from
  example to vote, with optional offline resources (topic model, KG, ...).
* :class:`NLPLabelingFunction` — the model-server pipeline: launches an
  NLP server per compute node; users supply ``get_text`` and ``get_value``
  exactly as in the paper's code listing.

:mod:`repro.lf.templates` provides the factory helpers for the recurring
weak-supervision patterns in Section 3 (keyword, URL, topic-model,
knowledge-graph, model-score heuristics), and :class:`LFApplier` executes
a set of LF binaries over a DFS-resident corpus and joins their votes
into a :class:`repro.types.LabelMatrix`.
"""

from repro.lf.registry import LFCategory, LFInfo, LFRegistry
from repro.lf.base import AbstractLabelingFunction, LFRunResult
from repro.lf.default import LabelingFunction
from repro.lf.nlp import NLPLabelingFunction
from repro.lf.applier import LFApplier, apply_lfs_in_memory

__all__ = [
    "LFCategory",
    "LFInfo",
    "LFRegistry",
    "AbstractLabelingFunction",
    "LFRunResult",
    "LabelingFunction",
    "NLPLabelingFunction",
    "LFApplier",
    "apply_lfs_in_memory",
]
