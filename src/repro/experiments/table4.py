"""Table 4: learned generative weights vs equal weights.

"We also measured the importance of using the generative model to
estimate the weights of the labeling function votes by training an
identical logistic regression classifier giving equal weight to all the
labeling functions ... the probabilistic training labels were an
unweighted average of the labeling function votes."

Paper values (relative to the dev-set baseline):

  Topic    — equal weights: P 54.1, R 163.7, F1 109.0
             + generative:  P 100.6, R 132.1, F1 117.5 (lift +7.7)
  Product  — equal weights: P 94.3, R 110.9, F1 103.2
             + generative:  P 99.2, R 110.1, F1 105.2 (lift +1.9)

Shape: learned accuracy weights beat equal weights on both tasks (≈4.8%
average), with a larger margin on topic, whose LF suite has more
quality variance for the generative model to exploit.
"""

from __future__ import annotations

from repro.config import DEFAULT_SEED
from repro.experiments.harness import (
    ExperimentResult,
    format_relative_row,
    get_content_experiment,
)

__all__ = ["run", "PAPER_VALUES"]

PAPER_VALUES = {
    "topic": {
        "equal": {"precision": 54.1, "recall": 163.7, "f1": 109.0, "lift": 0.0},
        "generative": {"precision": 100.6, "recall": 132.1, "f1": 117.5, "lift": 7.7},
    },
    "product": {
        "equal": {"precision": 94.3, "recall": 110.9, "f1": 103.2, "lift": 0.0},
        "generative": {"precision": 99.2, "recall": 110.1, "f1": 105.2, "lift": 1.9},
    },
}


def run(scale: str | None = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    rows = []
    lines = ["Table 4: equal weights vs generative-model weights "
             "(relative to baseline)"]
    lifts = []
    for task in ("topic", "product"):
        exp = get_content_experiment(task, scale, seed)
        equal_rel = exp.relative(exp.equal_weights_metrics)
        gen_rel = exp.relative(exp.drybell_metrics)
        lift = (
            100.0 * (gen_rel["f1"] / equal_rel["f1"] - 1.0)
            if equal_rel["f1"] > 0
            else float("nan")
        )
        lifts.append(lift)
        paper = PAPER_VALUES[task]
        rows.append(
            {
                "task": task,
                "equal_weights": equal_rel,
                "generative_weights": gen_rel,
                "lift_pct": lift,
                "paper": paper,
            }
        )
        lines += [
            "",
            f"== {exp.dataset.task} ==",
            format_relative_row("equal weights", equal_rel),
            format_relative_row("  (paper)", paper["equal"]),
            format_relative_row("+ generative model", gen_rel),
            format_relative_row("  (paper)", paper["generative"]),
            f"{'F1 lift vs equal weights':<28} {lift:+.1f}%   "
            f"(paper: {paper['generative']['lift']:+.1f}%)",
        ]
    mean_lift = sum(lifts) / len(lifts)
    lines += ["", f"average lift from the generative model: {mean_lift:+.1f}% "
              f"(paper: +4.8% average)"]
    return ExperimentResult("table4_genmodel", "\n".join(lines), rows)
