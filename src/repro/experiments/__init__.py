"""Experiment harness reproducing every table and figure in Section 6.

Each ``tableN``/``figureN`` module exposes a ``run(scale, seed)`` function
returning a :class:`repro.experiments.harness.ExperimentResult` whose
``text`` is the rendered table (paper value vs measured value); the
benchmark suite under ``benchmarks/`` times the underlying computations
and tees the tables to ``results/``.

Shared state (datasets, label matrices, trained models) is cached per
``(task, scale, seed)`` in :mod:`repro.experiments.harness`, so running
all benchmarks in one session costs one end-to-end pipeline per task.
"""

from repro.experiments.harness import (
    ContentExperiment,
    EventsExperiment,
    ExperimentResult,
    get_content_experiment,
    get_events_experiment,
)

__all__ = [
    "ContentExperiment",
    "EventsExperiment",
    "ExperimentResult",
    "get_content_experiment",
    "get_events_experiment",
]
