"""Shared experiment state and arm definitions.

The evaluation protocol follows Section 6:

* the **baseline** for the content tasks is the discriminative classifier
  "trained directly on the hand-labeled development set"; every reported
  number in Tables 2-4 is normalized against its precision/recall/F1 at
  threshold 0.5;
* the **generative model only** arm applies the fitted label model to the
  test examples' labeling-function votes (non-servable; not deployable);
* the **Snorkel DryBell** arm trains the same logistic-regression
  configuration on the label model's probabilistic labels over the full
  unlabeled pool;
* the **servable-only** arm (Table 3) refits the generative model using
  only LFs whose every resource is servable;
* the **equal-weights** arm (Table 4) replaces the generative model's
  posteriors with the unweighted vote average;
* the **events** comparison (Section 6.4) trains the same DNN on
  DryBell posteriors vs Logical-OR labels and compares events identified
  under a fixed review budget, plus an average-precision quality metric.

Generative-model hard predictions use a strictly-greater threshold: an
all-abstain row carries no evidence and must not be called positive.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.config import DEFAULT_SEED, ScaleConfig, get_scale
from repro.core.combiners import (
    equal_weight_probabilities,
    logical_or_probabilities,
)
from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel
from repro.core.noise_aware import labels_to_soft_targets
from repro.datasets.content import (
    ContentDataset,
    generate_product_dataset,
    generate_topic_dataset,
)
from repro.datasets.events import EventsDataset, generate_events_dataset
from repro.applications.events import build_event_lfs, event_featurizer
from repro.applications.product import build_product_lfs, product_featurizer
from repro.applications.topic import build_topic_lfs, topic_featurizer
from repro.discriminative.dnn import MLPConfig, NoiseAwareMLP
from repro.discriminative.logistic import (
    LogisticConfig,
    NoiseAwareLogisticRegression,
)
from repro.discriminative.metrics import (
    BinaryMetrics,
    average_precision,
    binary_metrics,
    relative_metrics,
)
from repro.lf.applier import apply_lfs_in_memory

__all__ = [
    "GEN_MODEL_THRESHOLD",
    "ExperimentResult",
    "ContentExperiment",
    "EventsExperiment",
    "get_content_experiment",
    "get_events_experiment",
    "build_experiment_lfs",
    "content_lf_suite_spec",
    "results_path",
]

#: Strictly-above-0.5 cut for generative-model hard predictions (see
#: module docstring).
GEN_MODEL_THRESHOLD = 0.5 + 1e-9


@dataclass
class ExperimentResult:
    """One experiment's rendered output plus raw rows."""

    name: str
    text: str
    rows: list[dict[str, object]] = field(default_factory=list)

    def write(self, directory: str | None = None) -> str:
        """Persist the rendered table under ``results/``."""
        directory = directory or results_path()
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.name}.txt")
        with open(path, "w") as handle:
            handle.write(self.text + "\n")
        return path


def results_path() -> str:
    """Repository-level ``results/`` directory."""
    here = os.path.dirname(os.path.abspath(__file__))
    for candidate in (here, *[os.path.dirname(here)] * 5):
        repo = candidate
        while repo and repo != "/":
            if os.path.exists(os.path.join(repo, "pyproject.toml")):
                return os.path.join(repo, "results")
            repo = os.path.dirname(repo)
    return os.path.join(os.getcwd(), "results")


# ----------------------------------------------------------------------
# content applications
# ----------------------------------------------------------------------
class ContentExperiment:
    """Lazy, cached pipeline state for one content task."""

    def __init__(
        self,
        task: str = "topic",
        scale: ScaleConfig | str | None = None,
        seed: int = DEFAULT_SEED,
    ) -> None:
        if task not in ("topic", "product"):
            raise ValueError(f"task must be topic|product, got {task!r}")
        self.task = task
        self.scale = scale if isinstance(scale, ScaleConfig) else get_scale(scale)
        self.seed = seed

    # ------------------------------------------------------------------
    # data + labeling
    # ------------------------------------------------------------------
    @cached_property
    def dataset(self) -> ContentDataset:
        if self.task == "topic":
            return generate_topic_dataset(self.scale, seed=self.seed)
        return generate_product_dataset(self.scale, seed=self.seed)

    @cached_property
    def lfs_and_registry(self):
        if self.task == "topic":
            return build_topic_lfs(self.dataset.world)
        return build_product_lfs(self.dataset.world)

    @property
    def lfs(self):
        return self.lfs_and_registry[0]

    @property
    def registry(self):
        return self.lfs_and_registry[1]

    @cached_property
    def featurizer(self):
        return topic_featurizer() if self.task == "topic" else product_featurizer()

    @cached_property
    def L_unlabeled(self):
        return apply_lfs_in_memory(self.lfs, self.dataset.unlabeled)

    @cached_property
    def L_test(self):
        return apply_lfs_in_memory(self.lfs, self.dataset.test)

    @cached_property
    def label_model(self) -> SamplingFreeLabelModel:
        model = SamplingFreeLabelModel(self.label_model_config())
        model.fit(self.L_unlabeled.matrix)
        return model

    def label_model_config(self) -> LabelModelConfig:
        return LabelModelConfig(seed=self.seed)

    @cached_property
    def soft_labels(self) -> np.ndarray:
        return self.label_model.predict_proba(self.L_unlabeled.matrix)

    # ------------------------------------------------------------------
    # features + gold labels
    # ------------------------------------------------------------------
    @cached_property
    def X_unlabeled(self):
        return self.featurizer.transform(self.dataset.unlabeled)

    @cached_property
    def X_dev(self):
        return self.featurizer.transform(self.dataset.dev)

    @cached_property
    def X_test(self):
        return self.featurizer.transform(self.dataset.test)

    @cached_property
    def y_dev(self) -> np.ndarray:
        return np.array([e.label for e in self.dataset.dev])

    @cached_property
    def y_test(self) -> np.ndarray:
        return np.array([e.label for e in self.dataset.test])

    # ------------------------------------------------------------------
    # training arms
    # ------------------------------------------------------------------
    def logistic_config(self) -> LogisticConfig:
        """Per-task training budget (topic trains 10K iterations and
        product 100K in the paper; scaled ~3x down with the data)."""
        iterations = 3000 if self.task == "topic" else 6000
        if self.scale.is_full:
            iterations = 10_000 if self.task == "topic" else 100_000
        return LogisticConfig(n_iterations=iterations, alpha=0.2, seed=self.seed)

    def train_lr(self, X, soft_targets: np.ndarray) -> NoiseAwareLogisticRegression:
        model = NoiseAwareLogisticRegression(
            self.featurizer.spec.dimension, self.logistic_config()
        )
        return model.fit(X, soft_targets)

    @cached_property
    def baseline_model(self) -> NoiseAwareLogisticRegression:
        """LR trained directly on the hand-labeled development set."""
        return self.train_lr(self.X_dev, labels_to_soft_targets(self.y_dev))

    @cached_property
    def baseline_metrics(self) -> BinaryMetrics:
        return binary_metrics(
            self.y_test, self.baseline_model.predict_proba(self.X_test)
        )

    @cached_property
    def covered_rows(self) -> np.ndarray:
        """Mask of pool examples with at least one non-abstain vote.

        All-abstain examples carry exactly zero supervision signal
        (posterior = prior); weak-label training drops them, the standard
        Snorkel practice for training the end model.
        """
        return np.abs(self.L_unlabeled.matrix).sum(axis=1) > 0

    def train_lr_on_weak(self, soft: np.ndarray) -> NoiseAwareLogisticRegression:
        """Train the end classifier on weak labels, covered rows only."""
        mask = self.covered_rows
        return self.train_lr(self.X_unlabeled[mask], soft[mask])

    @cached_property
    def drybell_model(self) -> NoiseAwareLogisticRegression:
        """LR trained on the generative model's probabilistic labels."""
        return self.train_lr_on_weak(self.soft_labels)

    @cached_property
    def drybell_metrics(self) -> BinaryMetrics:
        return binary_metrics(
            self.y_test, self.drybell_model.predict_proba(self.X_test)
        )

    @cached_property
    def generative_metrics(self) -> BinaryMetrics:
        """The label model applied directly to test votes (Table 2's
        'Generative Model Only' — not servable in production)."""
        scores = self.label_model.predict_proba(self.L_test.matrix)
        return binary_metrics(self.y_test, scores, threshold=GEN_MODEL_THRESHOLD)

    # ------------------------------------------------------------------
    # ablation arms
    # ------------------------------------------------------------------
    def arm_with_lfs(self, lf_names: list[str]) -> BinaryMetrics:
        """Refit the generative model on an LF subset and retrain the
        end classifier (Table 3's servable-only arm)."""
        L_sub = self.L_unlabeled.select_lfs(lf_names)
        model = SamplingFreeLabelModel(self.label_model_config())
        model.fit(L_sub.matrix)
        soft = model.predict_proba(L_sub.matrix)
        mask = np.abs(L_sub.matrix).sum(axis=1) > 0
        lr = self.train_lr(self.X_unlabeled[mask], soft[mask])
        return binary_metrics(self.y_test, lr.predict_proba(self.X_test))

    @cached_property
    def servable_only_metrics(self) -> BinaryMetrics:
        return self.arm_with_lfs(self.registry.servable_names())

    @cached_property
    def equal_weights_metrics(self) -> BinaryMetrics:
        """Train the end classifier on the unweighted vote average
        (Table 4's 'Equal Weights' arm)."""
        soft = equal_weight_probabilities(self.L_unlabeled.matrix)
        lr = self.train_lr_on_weak(soft)
        return binary_metrics(self.y_test, lr.predict_proba(self.X_test))

    # ------------------------------------------------------------------
    # hand-label trade-off (Figure 5)
    # ------------------------------------------------------------------
    def hand_label_metrics(self, n_labels: int) -> BinaryMetrics:
        """Train the classifier on ``n_labels`` hand-labeled examples
        (simulated by revealing pool gold labels)."""
        if n_labels > len(self.dataset.unlabeled):
            raise ValueError(
                f"cannot hand-label {n_labels} of "
                f"{len(self.dataset.unlabeled)} pooled examples"
            )
        X = self.X_unlabeled[:n_labels]
        gold = self.dataset.unlabeled_gold[:n_labels]
        lr = self.train_lr(X, labels_to_soft_targets(gold))
        return binary_metrics(self.y_test, lr.predict_proba(self.X_test))

    # ------------------------------------------------------------------
    def relative(self, metrics: BinaryMetrics) -> dict[str, float]:
        """The paper's normalization against the dev-set baseline."""
        return relative_metrics(metrics, self.baseline_metrics)


# ----------------------------------------------------------------------
# events application
# ----------------------------------------------------------------------
class EventsExperiment:
    """Lazy, cached pipeline state for the real-time events task."""

    #: Review budget for 'events identified': the monitoring team can
    #: inspect the top 10% of scored events.
    REVIEW_BUDGET_FRACTION = 0.10

    def __init__(
        self,
        scale: ScaleConfig | str | None = None,
        seed: int = DEFAULT_SEED,
    ) -> None:
        self.scale = scale if isinstance(scale, ScaleConfig) else get_scale(scale)
        self.seed = seed

    @cached_property
    def dataset(self) -> EventsDataset:
        return generate_events_dataset(self.scale, seed=self.seed)

    @cached_property
    def lfs_and_registry(self):
        return build_event_lfs(self.dataset.world)

    @property
    def lfs(self):
        return self.lfs_and_registry[0]

    @property
    def registry(self):
        return self.lfs_and_registry[1]

    @cached_property
    def featurizer(self):
        return event_featurizer()

    @cached_property
    def L_unlabeled(self):
        return apply_lfs_in_memory(self.lfs, self.dataset.unlabeled)

    @cached_property
    def class_prior(self) -> float:
        """Base-rate estimate from a small calibration slice.

        Section 2 notes the class prior "can also be learned"; in the
        events deployment a rough base rate is available from historical
        review queues, simulated here with a 200-event calibration
        sample.
        """
        calibration = self.dataset.test_gold[:200]
        return float(np.clip((calibration == 1).mean(), 0.01, 0.5))

    @cached_property
    def label_model(self) -> SamplingFreeLabelModel:
        config = LabelModelConfig(seed=self.seed, init_class_prior=self.class_prior)
        return SamplingFreeLabelModel(config).fit(self.L_unlabeled.matrix)

    @cached_property
    def soft_labels(self) -> np.ndarray:
        return self.label_model.predict_proba(self.L_unlabeled.matrix)

    @cached_property
    def X_unlabeled(self) -> np.ndarray:
        return self.featurizer.transform(self.dataset.unlabeled)

    @cached_property
    def X_test(self) -> np.ndarray:
        return self.featurizer.transform(self.dataset.test)

    def mlp_config(self) -> MLPConfig:
        # Enough epochs to actually fit the targets: the Logical-OR arm's
        # hard 0/1 labels then drive its DNN to the over-confident score
        # pile-up of Figure 6, while the DryBell arm's soft targets keep
        # its distribution smooth at any budget.
        return MLPConfig(hidden_sizes=(64, 32), n_epochs=60, seed=self.seed)

    @cached_property
    def dnn_drybell(self) -> NoiseAwareMLP:
        model = NoiseAwareMLP(self.featurizer.spec.dimension, self.mlp_config())
        return model.fit(self.X_unlabeled, self.soft_labels)

    @cached_property
    def dnn_logical_or(self) -> NoiseAwareMLP:
        labels = logical_or_probabilities(self.L_unlabeled.matrix)
        model = NoiseAwareMLP(self.featurizer.spec.dimension, self.mlp_config())
        return model.fit(self.X_unlabeled, labels)

    @cached_property
    def scores_drybell(self) -> np.ndarray:
        return self.dnn_drybell.predict_proba(self.X_test)

    @cached_property
    def scores_logical_or(self) -> np.ndarray:
        return self.dnn_logical_or.predict_proba(self.X_test)

    # ------------------------------------------------------------------
    # Section 6.4 metrics
    # ------------------------------------------------------------------
    def review_budget(self) -> int:
        return max(1, int(len(self.dataset.test) * self.REVIEW_BUDGET_FRACTION))

    def events_identified(self, scores: np.ndarray) -> int:
        """True events of interest inside the top-K review budget."""
        k = self.review_budget()
        top = np.argsort(-scores)[:k]
        return int((self.dataset.test_gold[top] == 1).sum())

    def quality_metric(self, scores: np.ndarray) -> float:
        """The 'internal quality metric' proxy: average precision."""
        return average_precision(self.dataset.test_gold, scores)

    def comparison(self) -> dict[str, float]:
        """The Section 6.4 headline numbers."""
        found_db = self.events_identified(self.scores_drybell)
        found_or = self.events_identified(self.scores_logical_or)
        quality_db = self.quality_metric(self.scores_drybell)
        quality_or = self.quality_metric(self.scores_logical_or)
        return {
            "events_identified_drybell": found_db,
            "events_identified_logical_or": found_or,
            "identified_gain_pct": 100.0 * (found_db / max(found_or, 1) - 1.0),
            "quality_drybell": quality_db,
            "quality_logical_or": quality_or,
            "quality_gain_pct": 100.0 * (quality_db / max(quality_or, 1e-9) - 1.0),
        }


# ----------------------------------------------------------------------
# session-level cache
# ----------------------------------------------------------------------
_CONTENT_CACHE: dict[tuple[str, str, int], ContentExperiment] = {}
_EVENTS_CACHE: dict[tuple[str, int], EventsExperiment] = {}


def get_content_experiment(
    task: str,
    scale: str | None = None,
    seed: int = DEFAULT_SEED,
) -> ContentExperiment:
    """Cached experiment per (task, scale, seed)."""
    scale_cfg = get_scale(scale)
    key = (task, scale_cfg.name, seed)
    if key not in _CONTENT_CACHE:
        _CONTENT_CACHE[key] = ContentExperiment(task, scale_cfg, seed)
    return _CONTENT_CACHE[key]


def get_events_experiment(
    scale: str | None = None,
    seed: int = DEFAULT_SEED,
) -> EventsExperiment:
    scale_cfg = get_scale(scale)
    key = (scale_cfg.name, seed)
    if key not in _EVENTS_CACHE:
        _EVENTS_CACHE[key] = EventsExperiment(scale_cfg, seed)
    return _EVENTS_CACHE[key]


# ----------------------------------------------------------------------
# parallel-labeling suite specs
# ----------------------------------------------------------------------
def build_experiment_lfs(
    task: str, scale: str | None = None, seed: int = DEFAULT_SEED
):
    """Top-level LF-suite factory addressable from a worker process.

    This is the target :func:`content_lf_suite_spec` points at: the
    datasets and suites are deterministic per ``(task, scale, seed)``,
    so every worker rebuilds a suite that votes identically to the
    parent's — the premise of byte-exact parallel labeling. The
    experiment cache makes repeat builds (and forked workers) free.
    """
    return get_content_experiment(task, scale, seed).lfs


def content_lf_suite_spec(
    task: str, scale: str | None = None, seed: int = DEFAULT_SEED
):
    """Picklable :class:`repro.parallel.LFSuiteSpec` for a content task."""
    from repro.parallel import LFSuiteSpec

    return LFSuiteSpec(
        factory="repro.experiments.harness:build_experiment_lfs",
        args=(task, scale, seed),
    )


# ----------------------------------------------------------------------
# rendering helpers
# ----------------------------------------------------------------------
def format_relative_row(name: str, rel: dict[str, float]) -> str:
    return (
        f"{name:<28} P={rel['precision']:>6.1f}%  R={rel['recall']:>6.1f}%  "
        f"F1={rel['f1']:>6.1f}%  lift={rel['lift']:>+6.1f}%"
    )


def format_absolute_row(name: str, metrics: BinaryMetrics) -> str:
    return (
        f"{name:<28} P={metrics.precision:.3f}  R={metrics.recall:.3f}  "
        f"F1={metrics.f1:.3f}"
    )
