"""Section 6.4: real-time events, Snorkel DryBell vs Logical-OR.

"We observed that Snorkel DryBell identifies an additional 58% of
events of interest as compared to what the baseline Logical-OR approach
captures, and the quality of the events identified by Snorkel DryBell
offer a 4.5% improvement according to an internal metric."

Operationalization (the paper's internal metric is proprietary):

* *events identified* — true events of interest inside a fixed review
  budget (the top 10% of test events by model score); both systems get
  the same budget;
* *quality metric* — average precision over the full test ranking.

Shape to reproduce: DryBell identifies substantially more events under
the same budget and scores higher on the quality metric.
"""

from __future__ import annotations

from repro.config import DEFAULT_SEED
from repro.experiments.harness import ExperimentResult, get_events_experiment

__all__ = ["run", "PAPER_VALUES"]

PAPER_VALUES = {"identified_gain_pct": 58.0, "quality_gain_pct": 4.5}


def run(scale: str | None = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    exp = get_events_experiment(scale, seed)
    comparison = exp.comparison()
    budget = exp.review_budget()
    lines = [
        "Section 6.4: real-time events — DryBell vs Logical-OR",
        "",
        f"review budget: top {budget} of {len(exp.dataset.test)} test events",
        f"{'events identified (DryBell)':<34} {comparison['events_identified_drybell']:>8}",
        f"{'events identified (Logical-OR)':<34} {comparison['events_identified_logical_or']:>8}",
        f"{'identified gain':<34} {comparison['identified_gain_pct']:>+7.1f}%   "
        f"(paper: +{PAPER_VALUES['identified_gain_pct']:.0f}%)",
        "",
        f"{'quality metric (DryBell)':<34} {comparison['quality_drybell']:>8.3f}",
        f"{'quality metric (Logical-OR)':<34} {comparison['quality_logical_or']:>8.3f}",
        f"{'quality gain':<34} {comparison['quality_gain_pct']:>+7.1f}%   "
        f"(paper: +{PAPER_VALUES['quality_gain_pct']:.1f}%)",
        "",
        f"(label model class prior estimated from calibration slice: "
        f"{exp.class_prior:.3f})",
    ]
    return ExperimentResult(
        "events_realtime", "\n".join(lines), [dict(comparison)]
    )
