"""Figure 5: trade-off between weak supervision and hand-labeled data.

"We train the discriminative classifier for each content classification
task on increasingly large hand-labeled training sets ... On the topic
classification task, we find that it takes roughly 80K hand-labeled
examples to match the predictive accuracy of the weakly supervised
classifier. On the product classification task, we find that it takes
roughly 12K."

The reproduction sweeps hand-label counts (simulated by revealing gold
labels for a pool prefix), reports each point's F1 relative to the
dev-set baseline, plots the DryBell line, and locates the crossover by
linear interpolation. At reduced scale the crossover lands at a smaller
absolute count; the shape to reproduce is (a) a rising supervised curve
and (b) a crossover inside the swept range for both tasks, with topic's
crossover at a larger fraction of its pool than product's.
"""

from __future__ import annotations


from repro.config import DEFAULT_SEED
from repro.experiments.harness import ExperimentResult, get_content_experiment

__all__ = ["run", "sweep_sizes", "PAPER_CROSSOVER"]

PAPER_CROSSOVER = {"topic": 80_000, "product": 12_000}


def sweep_sizes(task: str, pool_size: int, full_scale: bool) -> list[int]:
    """Hand-label counts to sweep, spanning the Figure 5 x-axis range."""
    if full_scale:
        if task == "topic":
            return [25_000, 45_000, 65_000, 85_000, 105_000, 125_000, 145_000]
        return [7_000, 9_500, 12_000, 14_500, 17_000]
    fractions = (
        [0.02, 0.08, 0.25, 0.60, 1.00]
        if task == "topic"
        else [0.01, 0.04, 0.12, 0.35]
    )
    return [max(200, int(f * pool_size)) for f in fractions]


def _crossover(sizes: list[int], f1s: list[float], target: float) -> float | None:
    """First x where the supervised curve crosses the DryBell line."""
    for (x0, y0), (x1, y1) in zip(zip(sizes, f1s), zip(sizes[1:], f1s[1:])):
        if y0 < target <= y1:
            if y1 == y0:
                return float(x1)
            return float(x0 + (target - y0) * (x1 - x0) / (y1 - y0))
    if f1s and f1s[0] >= target:
        return float(sizes[0])
    return None


def run(scale: str | None = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    rows = []
    lines = ["Figure 5: hand-labeled-data trade-off (relative F1 vs baseline)"]
    for task in ("topic", "product"):
        exp = get_content_experiment(task, scale, seed)
        pool = len(exp.dataset.unlabeled)
        sizes = [s for s in sweep_sizes(task, pool, exp.scale.is_full) if s <= pool]
        drybell_f1 = exp.relative(exp.drybell_metrics)["f1"]

        points = []
        for n in sizes:
            rel = exp.relative(exp.hand_label_metrics(n))
            points.append((n, rel["f1"]))
        crossover = _crossover(
            [p[0] for p in points], [p[1] for p in points], drybell_f1
        )
        rows.append(
            {
                "task": task,
                "drybell_relative_f1": drybell_f1,
                "points": points,
                "crossover_labels": crossover,
                "pool_size": pool,
                "paper_crossover_labels": PAPER_CROSSOVER[task],
            }
        )
        lines += ["", f"== {exp.dataset.task} (pool {pool}) ==",
                  f"Snorkel DryBell line: relative F1 = {drybell_f1:.1f}%"]
        for n, f1 in points:
            marker = " <-- crosses DryBell" if crossover and n >= crossover and (
                points.index((n, f1)) == 0
                or points[points.index((n, f1)) - 1][1] < drybell_f1
            ) else ""
            lines.append(f"  {n:>8} hand labels: relative F1 = {f1:6.1f}%{marker}")
        if crossover is None:
            lines.append("  crossover: not reached inside the swept range")
        else:
            lines.append(
                f"  crossover at ~{crossover:,.0f} hand labels "
                f"({100 * crossover / pool:.1f}% of pool; paper: "
                f"~{PAPER_CROSSOVER[task]:,} labels at full scale)"
            )
    return ExperimentResult("figure5_tradeoff", "\n".join(lines), rows)
