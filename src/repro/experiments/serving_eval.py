"""Load-generator harness for the low-latency label-serving tier.

:func:`run_serving_eval` drives the full deployment story the serving
runbook (``docs/SERVING.md``) documents, in one measured pass:

1. a :class:`~repro.streaming.checkpoint.CheckpointedStream` labels the
   staged corpus, checkpointing every micro-batch — producing the
   bit-exact manifests that are the serving tier's deployment artifacts;
2. a :class:`~repro.serving.registry.CheckpointModelRegistry` +
   :class:`~repro.serving.service.LabelServer` pair serves an initially
   *empty* durable root: the first requests are answered degraded (class
   prior, ``degraded=True``) — the no-generation regime;
3. a mid-stream manifest is copied into the serving root; the watcher
   hot-swaps generation 1 in and the client threads start the measured
   load (round-robin over the corpus, per-request latency recorded);
4. halfway through the load, the *final* manifest is deployed — the
   watcher swaps to generation 2 under full concurrent load, without
   dropping or erring a single in-flight request;
5. every served posterior is compared **bitwise** against an offline
   :class:`~repro.core.label_model.SamplingFreeLabelModel` fit of the
   corresponding snapshot's stream prefix — the ARCHITECTURE invariant
   ("served posteriors are bitwise equal to the snapshot's offline
   fit"), enforced across both generations and the swap boundary.

``benchmarks/bench_serving.py`` turns the row into hard gates: p50/p99
latency ceilings and a sustained-QPS floor at the full n >= 20k regime,
plus the bitwise/degradation/hot-swap invariants at every scale.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.config import DEFAULT_SEED
from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel
from repro.core.online_label_model import OnlineLabelModelConfig
from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.records import iter_record_blobs
from repro.experiments.harness import ExperimentResult, get_content_experiment
from repro.lf.applier import apply_lfs_in_memory, stage_examples
from repro.obs import Histogram, MetricsRegistry, Tracer
from repro.serving import CheckpointModelRegistry, LabelServer, ServeConfig
from repro.streaming import CheckpointedStream, RecordStreamSource
from repro.types import Example

__all__ = ["run_serving_eval", "DEFAULT_SERVE_TIMEOUT_MS"]

#: Per-request deadline used by the load generator. Generous: the gate
#: asserts zero timeouts, so the deadline must only catch a wedged
#: server, not a slow CI runner.
DEFAULT_SERVE_TIMEOUT_MS = 60_000.0


def run_serving_eval(
    scale: str | None = None,
    seed: int = DEFAULT_SEED,
    n_requests: int = 20_000,
    batch_size: int = 512,
    num_shards: int = 8,
    clients: int = 4,
    max_batch: int = 256,
    flush_ms: float = 2.0,
    degraded_requests: int = 64,
) -> ExperimentResult:
    """Serve a checkpointed stream under concurrent load; measure + verify.

    Args:
        scale: Dataset scale (``None`` reads ``REPRO_SCALE``).
        seed: Shared seed for the stream, references, and serving.
        n_requests: Measured requests issued by the client threads
            (round-robin over the staged corpus; the corpus itself is
            capped at ``min(n_requests, pool)`` examples).
        batch_size: Stream micro-batch size used to *produce* the
            checkpoint manifests (shrunk automatically so tiny smoke
            corpora still yield at least two manifests).
        num_shards: Shards the corpus is staged into.
        clients: Concurrent client threads issuing requests.
        max_batch: Serving-side micro-batch bound
            (:class:`~repro.serving.service.ServeConfig`).
        flush_ms: Serving-side flush deadline in milliseconds.
        degraded_requests: Requests issued against the empty serving
            root before any manifest is deployed (the degraded phase).

    Returns:
        An :class:`ExperimentResult` whose single row carries the
        latency distribution, sustained QPS, counter snapshot, and the
        bitwise-equivalence verdicts for both generations.

    Raises:
        RuntimeError: If the first deployed manifest never activates
            (watcher wedged — should be impossible).
    """
    exp = get_content_experiment("product", scale, seed)
    pool = exp.dataset.unlabeled
    corpus_n = min(n_requests, len(pool))
    lfs = exp.lfs
    online_config = OnlineLabelModelConfig(
        base=LabelModelConfig(seed=seed), seed=seed
    )

    # ------------------------------------------------------------------
    # produce deployment artifacts: a checkpoint-per-batch stream
    # ------------------------------------------------------------------
    dfs = DistributedFileSystem()
    shard_paths = stage_examples(
        dfs, pool[:corpus_n], "/serving/examples", num_shards=num_shards
    )
    # At least two manifests (a mid-stream one and the final one) are
    # needed for the hot-swap arm; shrink the stream's batch size on
    # tiny smoke corpora.
    stream_batch = max(1, min(batch_size, corpus_n // 2))
    stream = CheckpointedStream(
        dfs,
        lfs,
        "/serving/stream",
        batch_size=stream_batch,
        online_config=online_config,
        checkpoint_every=1,
        write_labels=False,
    )
    stream.run(RecordStreamSource(dfs, shard_paths))
    manifests = stream.manager.manifest_paths()
    mid_path = manifests[max(0, len(manifests) // 2 - 1)]
    final_path = manifests[-1]

    # ------------------------------------------------------------------
    # offline references, in *stream* order (shards interleave the pool)
    # ------------------------------------------------------------------
    decoded = [
        Example.from_record(record)
        for record in iter_record_blobs(dfs, shard_paths)
    ]
    L_full = apply_lfs_in_memory(lfs, decoded)
    row_of = {ex.example_id: i for i, ex in enumerate(decoded)}

    # In-memory labeling-only rate: the request path's compute kernel,
    # without serving overhead — context for the QPS ratio.
    from repro.experiments.perf import _clone_examples

    cloned = _clone_examples(decoded)
    label_only_start = time.perf_counter()
    apply_lfs_in_memory(lfs, cloned)
    label_only_wall = time.perf_counter() - label_only_start
    label_only_eps = (
        corpus_n / label_only_wall if label_only_wall > 0 else float("inf")
    )

    def offline_reference(manifest_path: str) -> np.ndarray:
        """Offline fit of the snapshot's stream prefix, scoring all rows."""
        checkpoint = stream.manager.load(manifest_path)
        model = SamplingFreeLabelModel(LabelModelConfig(seed=seed))
        model.fit(L_full.matrix[: checkpoint.cursor])
        return model.predict_proba(L_full.matrix)

    expected = {
        1: offline_reference(mid_path),
        2: offline_reference(final_path),
    }

    # ------------------------------------------------------------------
    # serve: degraded phase -> generation 1 -> mid-load swap to 2
    # ------------------------------------------------------------------
    live_root = "/serving/live"
    registry = CheckpointModelRegistry(
        dfs, live_root, online_config=online_config
    )
    config = ServeConfig(
        max_batch=max_batch,
        flush_ms=flush_ms,
        timeout_ms=DEFAULT_SERVE_TIMEOUT_MS,
        max_pending=max(1024, 4 * max_batch),
        poll_ms=5.0,
    )
    telemetry = MetricsRegistry()
    tracer = Tracer()  # enabled + sample read from REPRO_TRACE* knobs
    server = LabelServer(
        registry, lfs, config, telemetry=telemetry, tracer=tracer
    )
    abstain_prior = registry.abstain_prior()

    def deploy(manifest_path: str) -> None:
        """Copy a manifest into the live root (a release, DFS-style)."""
        name = manifest_path.rsplit("/", 1)[1]
        dfs.write_file(
            f"{live_root}/checkpoints/{name}", dfs.read_file(manifest_path)
        )

    degraded_served = 0
    degraded_prior_ok = True
    swap_at = max(1, n_requests // 2)
    issued_lock = threading.Lock()
    issued = [0]
    barrier = threading.Barrier(clients)
    # Per-client accumulators: a log-bucketed latency histogram instead
    # of an unbounded (example_id, result, latency) list — memory stays
    # O(buckets) no matter how long the load runs — plus inline bitwise
    # verification against the offline references, since the raw
    # per-request tuples no longer exist to replay post-hoc.
    latency_hists = [Histogram() for _ in range(clients)]
    served_by_gen_per_client: list[dict[int | None, int]] = [
        {} for _ in range(clients)
    ]
    mismatched_per_client = [0] * clients

    def client(c: int) -> None:
        """One load-generator thread: its share of the request stream."""
        hist = latency_hists[c]
        served_by_gen = served_by_gen_per_client[c]
        barrier.wait()
        for i in range(c, n_requests, clients):
            example = pool[i % corpus_n]
            request_start = time.perf_counter()
            result = server.predict(example)
            hist.record(1e6 * (time.perf_counter() - request_start))
            with issued_lock:
                issued[0] += 1
                if issued[0] == swap_at:
                    # The mid-load hot swap: deploy the final manifest
                    # while every client keeps hammering.
                    deploy(final_path)
            generation = result.generation
            served_by_gen[generation] = served_by_gen.get(generation, 0) + 1
            if generation is not None and result.posterior != (
                expected[generation][row_of[example.example_id]]
            ):
                mismatched_per_client[c] += 1

    with server:
        # Phase A: empty root — every response degrades to the prior.
        for i in range(degraded_requests):
            result = server.predict(pool[i % corpus_n])
            if result.degraded:
                degraded_served += 1
                if result.posterior != abstain_prior:
                    degraded_prior_ok = False
        # Deploy generation 1 and wait for the watcher to swap it in.
        deploy(mid_path)
        activate_deadline = time.perf_counter() + 30.0
        while registry.active() is None:
            if time.perf_counter() > activate_deadline:
                raise RuntimeError(
                    "generation 1 never activated after deploy"
                )
            time.sleep(0.002)
        # Phase B: the measured load, with the swap at the halfway mark.
        threads = [
            threading.Thread(target=client, args=(c,), name=f"client-{c}")
            for c in range(clients)
        ]
        load_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            # Bounded join: clients exit once their request share is
            # answered or times out, so the server-side deadline bounds
            # how long this can legitimately take.
            thread.join(timeout=120.0)
            if thread.is_alive():
                raise RuntimeError(
                    f"load-generator {thread.name} failed to finish"
                )
        load_wall = time.perf_counter() - load_start
        report = server.report()
    tracer.close()
    server_snapshot = report["telemetry"] or {}

    # ------------------------------------------------------------------
    # verdicts: bitwise posteriors per generation, swap under load
    # ------------------------------------------------------------------
    latency_hist = Histogram()
    for hist in latency_hists:
        latency_hist.merge(hist)
    served_by_generation: dict[int | None, int] = {}
    for part in served_by_gen_per_client:
        for generation, count in part.items():
            served_by_generation[generation] = (
                served_by_generation.get(generation, 0) + count
            )
    mismatched = sum(mismatched_per_client)
    degraded_in_load = served_by_generation.get(None, 0)
    served_gen1 = served_by_generation.get(1, 0)
    served_gen2 = served_by_generation.get(2, 0)
    swap_mid_load = served_gen1 > 0 and served_gen2 > 0
    bitwise_equal = mismatched == 0 and degraded_in_load == 0

    qps = n_requests / load_wall if load_wall > 0 else float("inf")
    p50_ms = latency_hist.quantile(0.50) / 1e3 if latency_hist.count else 0.0
    p99_ms = latency_hist.quantile(0.99) / 1e3 if latency_hist.count else 0.0
    counters = report["counters"]
    batches = counters.get("serving/batches", 0)
    mean_batch = (
        counters.get("serving/requests", 0) / batches if batches else 0.0
    )

    lines = [
        "Label serving: micro-batched requests over hot-swapped checkpoint "
        f"generations ({n_requests:,} requests, {clients} clients, "
        f"corpus {corpus_n:,} x {len(lfs)} LFs, max_batch {max_batch}, "
        f"flush {flush_ms}ms)",
        "",
        f"{'sustained QPS':<34} {qps:>12,.0f} requests/s",
        f"{'in-memory labeling only':<34} {label_only_eps:>12,.0f} examples/s",
        f"{'QPS / labeling-only rate':<34} {qps / label_only_eps:>12.2f}x",
        f"{'p50 / p99 latency':<34} {p50_ms:>7.2f}ms / {p99_ms:.2f}ms",
        f"{'mean micro-batch size':<34} {mean_batch:>12.1f}",
        f"{'degraded phase (empty root)':<34} {degraded_served:>12,} "
        f"requests at prior {abstain_prior:.2f}",
        f"{'generation swaps':<34} "
        f"{counters.get('serving/swaps', 0):>12,}",
        f"{'served by gen 1 / gen 2':<34} {served_gen1:>7,} / "
        f"{served_gen2:,} (swap under load: {swap_mid_load})",
        f"{'posteriors bitwise == offline fit':<34} "
        f"{str(bitwise_equal):>12} ({mismatched} mismatched)",
        f"{'timeouts / backpressure waits':<34} "
        f"{counters.get('serving/timeouts', 0):>7,} / "
        f"{counters.get('serving/backpressure_waits', 0):,}",
        f"{'peak pending requests':<34} {report['peak_pending']:>12,} "
        f"(bound {report['max_pending']:,})",
    ]
    server_latency = server_snapshot.get("histograms", {}).get(
        "serving/latency_us"
    )
    if server_latency is not None:
        lines.append(
            f"{'server-side latency p50 / p99':<34} "
            f"{server_latency['p50'] / 1e3:>7.2f}ms / "
            f"{server_latency['p99'] / 1e3:.2f}ms "
            f"({server_latency['count']:,} samples)"
        )
    rows = [
        {
            "examples": n_requests,
            "requests": n_requests,
            "corpus_examples": corpus_n,
            "lfs": len(lfs),
            "clients": clients,
            "max_batch": max_batch,
            "flush_ms": flush_ms,
            "stream_batch_size": stream_batch,
            "manifests_written": len(manifests),
            "qps": qps,
            "label_only_examples_per_second": label_only_eps,
            "qps_ratio": qps / label_only_eps if label_only_eps else 0.0,
            "p50_ms": p50_ms,
            "p99_ms": p99_ms,
            "wall_seconds": load_wall,
            "mean_batch_size": mean_batch,
            "batches": batches,
            "degraded_requests": degraded_served,
            "degraded_expected": degraded_requests,
            "degraded_prior_ok": degraded_prior_ok,
            "degraded_in_load": degraded_in_load,
            "abstain_prior": abstain_prior,
            "swaps": counters.get("serving/swaps", 0),
            "active_generation": report["active_generation"],
            "served_generation_1": served_gen1,
            "served_generation_2": served_gen2,
            "swap_mid_load": swap_mid_load,
            "posteriors_bitwise_equal": bitwise_equal,
            "mismatched_posteriors": mismatched,
            "timeouts": counters.get("serving/timeouts", 0),
            "backpressure_waits": counters.get(
                "serving/backpressure_waits", 0
            ),
            "peak_pending": report["peak_pending"],
            "max_pending": report["max_pending"],
            "latency_samples": latency_hist.count,
            "telemetry": server_snapshot,
            "cpu_count": os.cpu_count(),
        }
    ]
    return ExperimentResult("label_serving", "\n".join(lines), rows)
