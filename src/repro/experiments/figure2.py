"""Figure 2: distribution of weak-supervision categories per application.

The paper plots, for each of the three applications, how its labeling
functions split across the coarse buckets (source heuristics, content
heuristics, model-based, graph-based). Exact counts are not printed in
the paper beyond the totals (10 / 8 / 140); the reproduction emits the
census of this implementation's suites, which follow the source types
each case study describes in Section 3.
"""

from __future__ import annotations

from repro.config import DEFAULT_SEED
from repro.experiments.harness import (
    ExperimentResult,
    get_content_experiment,
    get_events_experiment,
)
from repro.lf.registry import LFRegistry

__all__ = ["run"]


def run(scale: str | None = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    registries = [
        get_content_experiment("topic", scale, seed).registry,
        get_content_experiment("product", scale, seed).registry,
        get_events_experiment(scale, seed).registry,
    ]
    rows = LFRegistry.figure2_table(registries)
    lines = [
        "Figure 2: labeling-function category census",
        f"{'application':<26} {'category':<20} {'count':>6} {'fraction':>9}",
        "-" * 64,
    ]
    for row in rows:
        lines.append(
            f"{row['application']:<26} {row['category']:<20} "
            f"{row['count']:>6} {100 * row['fraction']:>8.1f}%"
        )
    totals = {r.application: len(r) for r in registries}
    lines += [
        "-" * 64,
        f"totals: {totals}  (paper: topic 10, product 8, events 140)",
    ]
    return ExperimentResult("figure2_lf_categories", "\n".join(lines), rows)
