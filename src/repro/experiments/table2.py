"""Table 2: generative-model-only vs full Snorkel DryBell, both relative
to the classifier trained directly on the hand-labeled development set.

Paper values (relative to the dev-set baseline, threshold 0.5):

  Topic    — generative only: P 84.4, R 101.7, F1 93.9 (lift -6.1)
             Snorkel DryBell: P 100.6, R 132.1, F1 117.5 (lift +17.5)
  Product  — generative only: P 103.8, R 102.0, F1 102.7 (lift +2.7)
             Snorkel DryBell: P 99.2, R 110.1, F1 105.2 (lift +5.2)

The shapes to reproduce: the DryBell discriminative classifier beats the
dev-set baseline on both tasks, with the gain concentrated in recall; and
the discriminative classifier beats the generative model it was trained
from (the cross-feature transfer and generalization effect).
"""

from __future__ import annotations

from repro.config import DEFAULT_SEED
from repro.experiments.harness import (
    ExperimentResult,
    format_absolute_row,
    format_relative_row,
    get_content_experiment,
)

__all__ = ["run", "PAPER_VALUES"]

PAPER_VALUES = {
    "topic": {
        "generative": {"precision": 84.4, "recall": 101.7, "f1": 93.9, "lift": -6.1},
        "drybell": {"precision": 100.6, "recall": 132.1, "f1": 117.5, "lift": 17.5},
    },
    "product": {
        "generative": {"precision": 103.8, "recall": 102.0, "f1": 102.7, "lift": 2.7},
        "drybell": {"precision": 99.2, "recall": 110.1, "f1": 105.2, "lift": 5.2},
    },
}


def run(scale: str | None = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    rows = []
    lines = ["Table 2: content classification, relative to dev-set baseline"]
    for task in ("topic", "product"):
        exp = get_content_experiment(task, scale, seed)
        gen_rel = exp.relative(exp.generative_metrics)
        db_rel = exp.relative(exp.drybell_metrics)
        paper = PAPER_VALUES[task]
        rows.append(
            {
                "task": task,
                "generative": gen_rel,
                "drybell": db_rel,
                "baseline_absolute": exp.baseline_metrics.as_dict(),
                "paper": paper,
            }
        )
        lines += [
            "",
            f"== {exp.dataset.task} ==",
            format_absolute_row("baseline (dev-trained)", exp.baseline_metrics),
            format_relative_row("generative model only", gen_rel),
            format_relative_row("  (paper)", paper["generative"]),
            format_relative_row("Snorkel DryBell", db_rel),
            format_relative_row("  (paper)", paper["drybell"]),
        ]
    return ExperimentResult("table2_content", "\n".join(lines), rows)
