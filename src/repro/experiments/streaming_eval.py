"""End-to-end streaming weak supervision: stream, label, learn online.

The offline pipeline stages a corpus, labels it, fits the generative
model, then trains the discriminative model. This experiment runs the
same workload as a *continuous* micro-batch stream:

    DFS record shards --chunked reads--> MicroBatchPipeline
        --per-batch votes--> OnlineLabelModel (incremental + refits)
        --probabilistic labels--> FTRL logistic end model (partial_fit)

and compares it against the offline batched path on three axes:

* **throughput** — sustained streaming examples/second vs the offline
  batched job over the same staged shards (decode + label), plus the
  in-memory labeling-only rate for context;
* **equivalence** — streamed votes must be vote-for-vote identical to
  the offline applier (id-aligned), and the online model after its
  final refit must produce the same probabilistic labels as an offline
  :class:`SamplingFreeLabelModel` fit on the same stream;
* **quality** — test-set F1 of the stream-trained FTRL end model
  relative to the offline DryBell arm (which trains thousands of
  buffered FTRL iterations; the streaming model sees every example
  once, as it arrives).

``benchmarks/bench_streaming.py`` turns the first two axes into hard
gates and feeds the rows into ``BENCH_perf.json`` / the trend history.

:func:`run_drift_eval` is the non-stationary arm: it injects a
mid-stream distribution shift (LF accuracy swaps + a class-balance
flip) into a synthetic vote stream drawn from the paper's generative
model, and compares a cumulative :class:`OnlineLabelModel` against a
decayed one watched by a :class:`~repro.core.drift.DriftMonitor` — the
alarm must fire within a few micro-batches of the shift (and never on
the stationary control), and the decayed arm's post-shift label and
end-model quality must beat the cumulative arm's.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.config import DEFAULT_SEED
from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel
from repro.core.online_label_model import OnlineLabelModel, OnlineLabelModelConfig
from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.records import iter_record_blobs
from repro.discriminative.logistic import (
    LogisticConfig,
    NoiseAwareLogisticRegression,
)
from repro.discriminative.metrics import binary_metrics
from repro.experiments.harness import (
    ExperimentResult,
    get_content_experiment,
)
from repro.lf.applier import apply_lfs_in_memory, stage_examples
from repro.streaming import (
    CheckpointedStream,
    MicroBatchPipeline,
    RecordStreamSource,
    SimulatedCrash,
)
from repro.types import Example

__all__ = [
    "run_streaming_eval",
    "run_crash_recovery",
    "run_multi_consumer_eval",
    "run_drift_eval",
    "DEFAULT_MICRO_BATCH",
]

#: Default micro-batch size: big enough that the fused executor and
#: NumPy kernels dominate dispatch, small enough that two resident
#: batches stay far below a shard's worth of records.
DEFAULT_MICRO_BATCH = 2048


def run_streaming_eval(
    scale: str | None = None,
    seed: int = DEFAULT_SEED,
    n_examples: int = 20_000,
    batch_size: int = DEFAULT_MICRO_BATCH,
    refit_every: int | None = None,
    num_shards: int = 8,
    end_model_epochs: int = 2,
) -> ExperimentResult:
    """Stream the product workload end to end; returns the comparison.

    ``refit_every`` is the online model's full-refit cadence in
    micro-batches (``None`` = one refit at stream end, the cheapest
    schedule that still yields offline-exact parameters).
    ``end_model_epochs`` is how many FTRL passes the prequential end
    model takes over each micro-batch before it is discarded.
    """
    exp = get_content_experiment("product", scale, seed)
    pool = exp.dataset.unlabeled
    n = min(n_examples, len(pool))
    lfs = exp.lfs
    featurizer = exp.featurizer

    # ------------------------------------------------------------------
    # stage the corpus once; both arms consume the same shards
    # ------------------------------------------------------------------
    dfs = DistributedFileSystem()
    shard_paths = stage_examples(
        dfs, pool[:n], "/streaming/examples", num_shards=num_shards
    )

    # ------------------------------------------------------------------
    # offline arm: decode everything, label everything, fit once
    # ------------------------------------------------------------------
    offline_start = time.perf_counter()
    offline_examples = [
        Example.from_record(record)
        for record in iter_record_blobs(dfs, shard_paths)
    ]
    L_offline = apply_lfs_in_memory(lfs, offline_examples)
    offline_wall = time.perf_counter() - offline_start
    offline_eps = n / offline_wall if offline_wall > 0 else float("inf")

    # In-memory labeling-only rate (no decode, cold token memos).
    from repro.experiments.perf import _clone_examples

    cloned = _clone_examples(offline_examples)
    label_only_start = time.perf_counter()
    apply_lfs_in_memory(lfs, cloned)
    label_only_wall = time.perf_counter() - label_only_start
    label_only_eps = (
        n / label_only_wall if label_only_wall > 0 else float("inf")
    )

    fit_start = time.perf_counter()
    offline_model = SamplingFreeLabelModel(LabelModelConfig(seed=seed))
    offline_model.fit(L_offline.matrix)
    offline_fit_seconds = time.perf_counter() - fit_start

    # ------------------------------------------------------------------
    # streaming labeling pass: micro-batches feed the online label model
    # (this is the throughput + equivalence arm — the work an always-on
    # labeling service performs per example)
    # ------------------------------------------------------------------
    online = OnlineLabelModel(
        OnlineLabelModelConfig(
            base=LabelModelConfig(seed=seed),
            refit_every=refit_every,
            seed=seed,
        )
    )
    pipeline = MicroBatchPipeline(
        lfs,
        batch_size=batch_size,
        max_resident_batches=2,
        on_batch=lambda _seq, _examples, votes: online.observe(votes),
        collect_votes=True,
    )
    report = pipeline.run(RecordStreamSource(dfs, shard_paths))
    final_model = online.refit()

    # ------------------------------------------------------------------
    # streaming learning pass: a fresh one-pass run where probabilistic
    # labels from the evolving online model train the FTRL end model
    # prequentially (every example seen exactly once, as it arrives)
    # ------------------------------------------------------------------
    online_preq = OnlineLabelModel(
        OnlineLabelModelConfig(
            base=LabelModelConfig(seed=seed),
            refit_every=refit_every,
            seed=seed,
        )
    )
    end_model = NoiseAwareLogisticRegression(
        featurizer.spec.dimension,
        LogisticConfig(alpha=0.2, seed=seed),
    )

    def learning_sink(
        _seq: int, examples: list[Example], votes: np.ndarray
    ) -> None:
        online_preq.observe(votes)
        # Probabilistic labels from the *current* parameter estimate
        # flow straight to the online end model; covered rows only
        # (all-abstain rows carry no signal).
        covered = np.abs(votes).sum(axis=1) > 0
        if covered.any():
            soft = online_preq.predict_proba(votes[covered])
            X = featurizer.transform(
                [e for e, keep in zip(examples, covered) if keep]
            )
            end_model.partial_fit(X, soft, epochs=end_model_epochs)

    learning_pipeline = MicroBatchPipeline(
        lfs,
        batch_size=batch_size,
        max_resident_batches=2,
        on_batch=learning_sink,
    )
    learning_report = learning_pipeline.run(
        RecordStreamSource(dfs, shard_paths)
    )

    # ------------------------------------------------------------------
    # equivalence: votes and (post-refit) probabilistic labels
    # ------------------------------------------------------------------
    L_stream = report.label_matrix
    aligned = L_offline.select_examples(L_stream.example_ids)
    votes_identical = bool(np.array_equal(L_stream.matrix, aligned.matrix))
    # The reference fit sees the stream's matrix (same rows, stream
    # order) so minibatch draws coincide; posteriors must then agree.
    reference = SamplingFreeLabelModel(LabelModelConfig(seed=seed))
    reference.fit(L_stream.matrix)
    max_proba_diff = float(
        np.max(
            np.abs(
                reference.predict_proba(L_stream.matrix)
                - final_model.predict_proba(L_stream.matrix)
            )
        )
        if L_stream.n_examples
        else 0.0
    )

    # ------------------------------------------------------------------
    # end-model quality vs the offline DryBell arm
    # ------------------------------------------------------------------
    stream_metrics = binary_metrics(
        exp.y_test, end_model.predict_proba(exp.X_test)
    )
    offline_metrics = exp.drybell_metrics
    f1_ratio = (
        stream_metrics.f1 / offline_metrics.f1
        if offline_metrics.f1 > 0
        else float("inf")
    )

    throughput_ratio = (
        report.examples_per_second / offline_eps if offline_eps > 0 else 0.0
    )
    lines = [
        "Streaming weak supervision: micro-batch pipeline vs offline batch "
        f"({n:,} examples, {len(lfs)} LFs, micro-batch {batch_size})",
        "",
        f"{'streaming labeling':<34} {report.examples_per_second:>12,.0f} examples/s",
        f"{'offline batch (decode + label)':<34} {offline_eps:>12,.0f} examples/s",
        f"{'  in-memory labeling only':<34} {label_only_eps:>12,.0f} examples/s",
        f"{'streaming / offline':<34} {throughput_ratio:>12.2f}x",
        f"{'streaming + end-model training':<34} "
        f"{learning_report.examples_per_second:>12,.0f} examples/s",
        f"{'peak resident records':<34} {report.peak_resident_records:>12,} "
        f"(bound: {report.max_resident_records:,} = 2 micro-batches)",
        f"{'backpressure waits':<34} {report.backpressure_waits:>12,}",
        f"{'mean / max batch latency':<34} "
        f"{1e3 * report.mean_batch_latency_seconds:>7.1f}ms / "
        f"{1e3 * report.max_batch_latency_seconds:.1f}ms",
        f"{'votes identical to offline':<34} {str(votes_identical):>12}",
        f"{'posterior gap after final refit':<34} {max_proba_diff:>12.2e}",
        f"{'offline label-model fit':<34} {offline_fit_seconds:>11.2f}s "
        f"(online refits: {online.refits_done}, "
        f"{online.n_patterns} vote patterns retained)",
        f"{'stream-trained end model F1':<34} {stream_metrics.f1:>12.3f} "
        f"({100 * f1_ratio:.1f}% of offline arm F1 {offline_metrics.f1:.3f})",
    ]
    rows = [
        {
            "examples": n,
            "lfs": len(lfs),
            "micro_batch": batch_size,
            "streaming_examples_per_second": report.examples_per_second,
            "offline_examples_per_second": offline_eps,
            "label_only_examples_per_second": label_only_eps,
            "learning_examples_per_second": (
                learning_report.examples_per_second
            ),
            "throughput_ratio": throughput_ratio,
            "peak_resident_records": report.peak_resident_records,
            "max_resident_records": report.max_resident_records,
            "backpressure_waits": report.backpressure_waits,
            "mean_batch_latency_seconds": report.mean_batch_latency_seconds,
            "max_batch_latency_seconds": report.max_batch_latency_seconds,
            "votes_identical": votes_identical,
            "max_proba_diff": max_proba_diff,
            "vote_patterns": online.n_patterns,
            "stream_f1": stream_metrics.f1,
            "offline_f1": offline_metrics.f1,
            "f1_ratio": f1_ratio,
        }
    ]
    return ExperimentResult("streaming_eval", "\n".join(lines), rows)


def run_multi_consumer_eval(
    scale: str | None = None,
    seed: int = DEFAULT_SEED,
    n_examples: int = 20_000,
    batch_size: int = DEFAULT_MICRO_BATCH,
    num_shards: int = 8,
    workers: int = 4,
) -> ExperimentResult:
    """Multi-consumer vs single-consumer streaming over the same shards.

    Both arms run the full labeling stream — chunked shard decode,
    micro-batch labeling, a durable :class:`VoteSink`, and an online
    label model — over identical staged shards. The single-consumer arm
    labels on the caller's thread; the multi-consumer arm fans labeling
    out to ``workers`` processes behind the same admission-controlled
    ingest, with sinks still consuming finalized batches strictly in
    order. The equivalence axes are absolute: votes, durable sink shard
    bytes, and post-refit posteriors must match exactly; throughput is
    the axis the bench gate conditions on hardware.
    """
    from repro.experiments.harness import content_lf_suite_spec
    from repro.streaming import VoteSink

    exp = get_content_experiment("product", scale, seed)
    pool = exp.dataset.unlabeled
    n = min(n_examples, len(pool))
    lfs = exp.lfs
    lf_names = [lf.name for lf in lfs]

    dfs = DistributedFileSystem()
    shard_paths = stage_examples(
        dfs, pool[:n], "/multi/examples", num_shards=num_shards
    )

    def run_arm(root: str, arm_workers: int):
        online = OnlineLabelModel(
            OnlineLabelModelConfig(base=LabelModelConfig(seed=seed), seed=seed)
        )
        pipeline = MicroBatchPipeline(
            lfs,
            batch_size=batch_size,
            # The permit pool must cover the worker fan-out or the pool
            # starves; single-consumer keeps the standard 2-batch bound.
            max_resident_batches=2 if arm_workers == 1 else arm_workers + 2,
            on_batch=lambda _seq, _examples, votes: online.observe(votes),
            sinks=[VoteSink(dfs, root, lf_names)],
            collect_votes=True,
            workers=arm_workers,
            suite_spec=(
                None
                if arm_workers == 1
                else content_lf_suite_spec("product", scale, seed)
            ),
        )
        report = pipeline.run(RecordStreamSource(dfs, shard_paths))
        return report, online

    single_report, single_online = run_arm("/multi/single", 1)
    multi_report, multi_online = run_arm("/multi/parallel", workers)

    votes_identical = bool(
        single_report.label_matrix.example_ids
        == multi_report.label_matrix.example_ids
        and np.array_equal(
            single_report.label_matrix.matrix,
            multi_report.label_matrix.matrix,
        )
    )
    single_shards = {
        path[len("/multi/single"):]: dfs.read_file(path)
        for path in dfs.list("/multi/single")
    }
    multi_shards = {
        path[len("/multi/parallel"):]: dfs.read_file(path)
        for path in dfs.list("/multi/parallel")
    }
    sinks_identical = single_shards == multi_shards

    L = single_report.label_matrix.matrix
    max_proba_diff = float(
        np.max(
            np.abs(
                single_online.refit().predict_proba(L)
                - multi_online.refit().predict_proba(L)
            )
        )
        if len(L)
        else 0.0
    )

    single_eps = single_report.examples_per_second
    multi_eps = multi_report.examples_per_second
    speedup = multi_eps / single_eps if single_eps > 0 else 0.0

    lines = [
        "Multi-consumer streaming: process-pool labeling workers vs one "
        f"consumer ({n:,} examples, {len(lfs)} LFs, micro-batch "
        f"{batch_size}, {workers} workers, {os.cpu_count()} CPUs visible)",
        "",
        f"{'single consumer':<34} {single_eps:>12,.0f} examples/s",
        f"{'multi-consumer (%d workers)' % workers:<34} "
        f"{multi_eps:>12,.0f} examples/s",
        f"{'multi / single':<34} {speedup:>12.2f}x",
        f"{'peak resident records (multi)':<34} "
        f"{multi_report.peak_resident_records:>12,} "
        f"(bound: {multi_report.max_resident_records:,})",
        f"{'votes identical':<34} {str(votes_identical):>12}",
        f"{'sink shards byte-identical':<34} {str(sinks_identical):>12}",
        f"{'posterior gap after final refit':<34} {max_proba_diff:>12.2e}",
    ]
    rows = [
        {
            "examples": n,
            "lfs": len(lfs),
            "micro_batch": batch_size,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "single_examples_per_second": single_eps,
            "multi_examples_per_second": multi_eps,
            "speedup": speedup,
            "peak_resident_records": multi_report.peak_resident_records,
            "max_resident_records": multi_report.max_resident_records,
            "backpressure_waits": multi_report.backpressure_waits,
            "votes_identical": votes_identical,
            "sinks_identical": sinks_identical,
            "max_proba_diff": max_proba_diff,
        }
    ]
    return ExperimentResult("streaming_multi_consumer", "\n".join(lines), rows)


def _draw_votes(
    rng: np.random.Generator,
    n: int,
    accuracies: np.ndarray,
    propensities: np.ndarray,
    positive_rate: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``(L, y)`` from the paper's conditionally independent model.

    Each LF fires with its propensity and, conditioned on firing, votes
    correctly with its accuracy — the exact generative process the
    label model assumes, so arm comparisons have a well-defined truth.
    """
    y = np.where(rng.random(n) < positive_rate, 1, -1).astype(np.int8)
    L = np.zeros((n, len(accuracies)), dtype=np.int8)
    for j, (acc, prop) in enumerate(zip(accuracies, propensities)):
        fires = rng.random(n) < prop
        correct = rng.random(n) < acc
        L[fires, j] = np.where(correct[fires], y[fires], -y[fires])
    return L, y


def run_drift_eval(
    scale: str | None = None,
    seed: int = DEFAULT_SEED,
    n_batches: int = 60,
    batch_size: int = 512,
    shift_after: int = 30,
    decay: float = 0.92,
    refit_every: int = 10,
    refit_steps: int = 400,
    reference_batches: int = 8,
    recent_batches: int = 4,
    threshold: float = 6.0,
    n_eval: int = 4096,
) -> ExperimentResult:
    """Injected-shift vs stationary streams: detection + adaptation.

    Two vote streams drawn from the paper's generative model:

    * a **drifted** stream whose parameters swap at batch
      ``shift_after`` — two LFs flip polarity (accuracy ``a -> 1-a``),
      one degrades to coin-flipping, and the class balance moves from
      0.5 to 0.3 — fed to three consumers: a *cumulative*
      :class:`OnlineLabelModel` (periodic refits over all of history),
      a *decayed* one (same cadence, exponential recency weighting),
      and a :class:`~repro.core.drift.DriftMonitor` wired to force an
      early refit of the decayed model and re-baseline its reference
      window on alarm;
    * a **stationary control** of the same length and parameters (no
      shift), fed to an identically configured monitor — any alarm here
      is a false alarm.

    Both label-model arms also train a prequential FTRL end model on
    their own probabilistic labels (votes as features, every covered
    example seen once). After the stream, both arms take a final refit
    and are scored on a held-out *post-shift* sample: label-model
    prediction accuracy and end-model accuracy/F1 against the known
    synthetic labels. ``benchmarks/bench_streaming.py`` gates the
    detection delay, the stationary false-alarm count, and the
    decayed-beats-cumulative comparison.

    ``scale`` is accepted for bench-harness uniformity; the streams are
    synthetic, so it only annotates the result rows.
    """
    from repro.core.drift import DriftMonitor, DriftPolicy

    pre_acc = np.array([0.88, 0.85, 0.82, 0.80, 0.75, 0.72, 0.70, 0.68])
    pre_prop = np.array([0.55, 0.50, 0.60, 0.45, 0.50, 0.40, 0.55, 0.50])
    pre_rate = 0.5
    # The injected shift: LFs 0/1 flip polarity, LF 2 rots to a coin
    # flip, and positives thin out — the compound failure mode the
    # Section 3.3 diagnostics exist for.
    post_acc = pre_acc.copy()
    post_acc[0] = 1.0 - pre_acc[0]
    post_acc[1] = 1.0 - pre_acc[1]
    post_acc[2] = 0.5
    post_prop = pre_prop
    post_rate = 0.3
    m = len(pre_acc)

    def make_arm(arm_decay: float | None) -> OnlineLabelModel:
        return OnlineLabelModel(
            OnlineLabelModelConfig(
                base=LabelModelConfig(n_steps=refit_steps, seed=seed),
                steps_per_batch=4,
                refit_every=refit_every,
                seed=seed,
                decay=arm_decay,
            )
        )

    cumulative = make_arm(None)
    decayed = make_arm(decay)
    policy = DriftPolicy(
        reference_batches=reference_batches,
        recent_batches=recent_batches,
        threshold=threshold,
        reactions=("log", "refit", "reset_reference"),
    )
    monitor = DriftMonitor(policy, refit_callback=decayed.refit)
    stationary_monitor = DriftMonitor(
        policy, refit_callback=lambda: None
    )

    end_models = {
        "cumulative": NoiseAwareLogisticRegression(
            m, LogisticConfig(alpha=0.2, seed=seed)
        ),
        "decayed": NoiseAwareLogisticRegression(
            m, LogisticConfig(alpha=0.2, seed=seed)
        ),
    }

    def train_end_model(name: str, arm: OnlineLabelModel, votes) -> None:
        # Prequential: probabilistic labels from the arm's *current*
        # estimate train its end model on the votes themselves as
        # features; covered rows only (all-abstain rows carry nothing).
        if arm.model.alpha is None:
            return
        covered = np.abs(votes).sum(axis=1) > 0
        if covered.any():
            soft = arm.predict_proba(votes[covered])
            end_models[name].partial_fit(
                votes[covered].astype(np.float64), soft, epochs=1
            )

    drift_rng = np.random.default_rng(seed)
    stationary_rng = np.random.default_rng(seed + 1)
    wall_start = time.perf_counter()
    for batch_index in range(n_batches):
        shifted = batch_index >= shift_after
        votes, _ = _draw_votes(
            drift_rng,
            batch_size,
            post_acc if shifted else pre_acc,
            post_prop if shifted else pre_prop,
            post_rate if shifted else pre_rate,
        )
        cumulative.observe(votes)
        decayed.observe(votes)
        monitor.observe_batch(votes)
        train_end_model("cumulative", cumulative, votes)
        train_end_model("decayed", decayed, votes)
        stationary_votes, _ = _draw_votes(
            stationary_rng, batch_size, pre_acc, pre_prop, pre_rate
        )
        stationary_monitor.observe_batch(stationary_votes)
    final_cumulative = cumulative.refit()
    final_decayed = decayed.refit()
    wall = time.perf_counter() - wall_start

    # Held-out post-shift evaluation against the known synthetic labels.
    eval_rng = np.random.default_rng(seed + 2)
    L_eval, y_eval = _draw_votes(
        eval_rng, n_eval, post_acc, post_prop, post_rate
    )
    covered_eval = np.abs(L_eval).sum(axis=1) > 0
    L_cov, y_cov = L_eval[covered_eval], y_eval[covered_eval]

    def label_accuracy(model: SamplingFreeLabelModel) -> float:
        return float(np.mean(model.predict(L_cov) == y_cov))

    def end_metrics(name: str) -> tuple:
        proba = end_models[name].predict_proba(L_cov.astype(np.float64))
        met = binary_metrics(y_cov, proba)
        total = (
            met.true_positives
            + met.false_positives
            + met.false_negatives
            + met.true_negatives
        )
        accuracy = (
            (met.true_positives + met.true_negatives) / total if total else 0.0
        )
        return met, accuracy

    cumulative_acc = label_accuracy(final_cumulative)
    decayed_acc = label_accuracy(final_decayed)
    cumulative_end, cumulative_end_acc = end_metrics("cumulative")
    decayed_end, decayed_end_acc = end_metrics("decayed")

    first_alarm = monitor.first_alarm_batch
    alarm_fired = first_alarm is not None and first_alarm >= shift_after
    detection_delay = (
        first_alarm - shift_after + 1 if alarm_fired else None
    )

    lines = [
        "Drift-aware streaming: injected mid-stream shift vs stationary "
        f"control ({n_batches} micro-batches x {batch_size}, {m} LFs, "
        f"shift after batch {shift_after}, decay {decay})",
        "",
        f"{'alarm fired at batch':<36} {str(first_alarm):>12} "
        f"(shift at {shift_after}; threshold {threshold})",
        f"{'detection delay':<36} {str(detection_delay):>12} micro-batches",
        f"{'drift-stream alarms / checks':<36} "
        f"{monitor.alarms:>5} / {monitor.checks_run}",
        f"{'forced early refits':<36} {monitor.forced_refits:>12}",
        f"{'stationary false alarms':<36} "
        f"{stationary_monitor.alarms:>12} (of {stationary_monitor.checks_run} checks)",
        f"{'post-shift label accuracy':<36} "
        f"decayed {decayed_acc:.3f} vs cumulative {cumulative_acc:.3f}",
        f"{'post-shift end-model accuracy':<36} "
        f"decayed {decayed_end_acc:.3f} vs cumulative "
        f"{cumulative_end_acc:.3f}",
        f"{'post-shift end-model F1':<36} "
        f"decayed {decayed_end.f1:.3f} vs cumulative {cumulative_end.f1:.3f}",
        f"{'patterns retained':<36} "
        f"decayed {decayed.n_patterns:,} vs cumulative "
        f"{cumulative.n_patterns:,}",
        f"{'stream wall time':<36} {wall:>11.2f}s",
    ]
    rows = [
        {
            "examples": n_batches * batch_size,
            "lfs": m,
            "micro_batch": batch_size,
            "n_batches": n_batches,
            "shift_after_batch": shift_after,
            "decay": decay,
            "threshold": threshold,
            "reference_batches": reference_batches,
            "recent_batches": recent_batches,
            "first_alarm_batch": first_alarm,
            "alarm_fired": alarm_fired,
            "detection_delay_batches": detection_delay,
            "drift_alarms": monitor.alarms,
            "drift_checks": monitor.checks_run,
            "forced_refits": monitor.forced_refits,
            "reference_resets": monitor.reference_resets,
            "stationary_alarms": stationary_monitor.alarms,
            "stationary_checks": stationary_monitor.checks_run,
            "cumulative_post_shift_accuracy": cumulative_acc,
            "decayed_post_shift_accuracy": decayed_acc,
            "cumulative_end_accuracy": cumulative_end_acc,
            "decayed_end_accuracy": decayed_end_acc,
            "cumulative_end_f1": cumulative_end.f1,
            "decayed_end_f1": decayed_end.f1,
            "decayed_patterns": decayed.n_patterns,
            "cumulative_patterns": cumulative.n_patterns,
            "wall_seconds": wall,
        }
    ]
    return ExperimentResult("streaming_drift", "\n".join(lines), rows)


def run_crash_recovery(
    scale: str | None = None,
    seed: int = DEFAULT_SEED,
    n_examples: int = 20_000,
    batch_size: int = DEFAULT_MICRO_BATCH,
    num_shards: int = 8,
    checkpoint_every: int = 2,
    crash_after_fraction: float = 0.45,
) -> ExperimentResult:
    """Durable streaming: sink overhead + crash-resume equivalence.

    Three arms over the same staged shards:

    * **offline** — decode + label everything in one batch (the
      throughput reference, as in :func:`run_streaming_eval`);
    * **checkpointed** — the full durable pipeline: vote + label sinks,
      a checkpoint manifest every ``checkpoint_every`` batches; timed,
      because persistence is only a production path if its overhead is
      bounded;
    * **crash + resume** — the same durable pipeline killed after the
      batch at ``crash_after_fraction`` of the stream, then resumed from
      the manifest. Every byte under the recovery root (vote shards,
      label shards, checkpoint manifests) must equal the uninterrupted
      arm's, and the final refit posteriors must agree to <= 1e-6
      (bitwise in practice).
    """
    exp = get_content_experiment("product", scale, seed)
    pool = exp.dataset.unlabeled
    n = min(n_examples, len(pool))
    lfs = exp.lfs

    dfs = DistributedFileSystem()
    shard_paths = stage_examples(
        dfs, pool[:n], "/recovery/examples", num_shards=num_shards
    )

    # ------------------------------------------------------------------
    # offline reference: decode + label, no persistence
    # ------------------------------------------------------------------
    offline_start = time.perf_counter()
    offline_examples = [
        Example.from_record(record)
        for record in iter_record_blobs(dfs, shard_paths)
    ]
    apply_lfs_in_memory(lfs, offline_examples)
    offline_wall = time.perf_counter() - offline_start
    offline_eps = n / offline_wall if offline_wall > 0 else float("inf")

    online_config = OnlineLabelModelConfig(
        base=LabelModelConfig(seed=seed), seed=seed
    )

    def make_runner(root: str) -> CheckpointedStream:
        return CheckpointedStream(
            dfs,
            lfs,
            root,
            batch_size=batch_size,
            max_resident_batches=2,
            online_config=online_config,
            checkpoint_every=checkpoint_every,
        )

    # ------------------------------------------------------------------
    # uninterrupted durable run (timed: the sink-overhead arm)
    # ------------------------------------------------------------------
    uninterrupted = make_runner("/recovery/full")
    full_report = uninterrupted.run(RecordStreamSource(dfs, shard_paths))
    durable_eps = full_report.stream.examples_per_second
    throughput_ratio = durable_eps / offline_eps if offline_eps > 0 else 0.0

    # ------------------------------------------------------------------
    # crash after ~crash_after_fraction of the batches, then resume
    # ------------------------------------------------------------------
    total_batches = full_report.stream.batches
    crash_after = max(0, min(
        total_batches - 2, int(total_batches * crash_after_fraction)
    ))
    crashed = make_runner("/recovery/resumed")
    crash_seen = False
    try:
        crashed.run(
            RecordStreamSource(dfs, shard_paths),
            fail_after_batch=crash_after,
        )
    except SimulatedCrash:
        crash_seen = True
    resumed = make_runner("/recovery/resumed")
    resumed_report = resumed.run(RecordStreamSource(dfs, shard_paths))

    # ------------------------------------------------------------------
    # equivalence: every durable byte, then the final posteriors
    # ------------------------------------------------------------------
    full_files = {
        path[len("/recovery/full"):]: dfs.read_file(path)
        for path in dfs.list("/recovery/full")
    }
    resumed_files = {
        path[len("/recovery/resumed"):]: dfs.read_file(path)
        for path in dfs.list("/recovery/resumed")
    }
    shards_identical = full_files == resumed_files

    L = uninterrupted.online.reconstruct_matrix()
    final_full = uninterrupted.online.refit()
    final_resumed = resumed.online.refit()
    max_proba_diff = float(
        np.max(
            np.abs(
                final_full.predict_proba(L) - final_resumed.predict_proba(L)
            )
        )
        if len(L)
        else 0.0
    )

    manifest = uninterrupted.manager.latest()
    manifest_bytes = (
        dfs.size(manifest.path) if manifest is not None else 0
    )

    lines = [
        "Durable streaming: checkpointed sinks + crash-resume "
        f"({n:,} examples, {len(lfs)} LFs, micro-batch {batch_size}, "
        f"checkpoint every {checkpoint_every} batches)",
        "",
        f"{'durable streaming (sinks + ckpt)':<34} {durable_eps:>12,.0f} examples/s",
        f"{'offline batch (decode + label)':<34} {offline_eps:>12,.0f} examples/s",
        f"{'durable / offline':<34} {throughput_ratio:>12.2f}x",
        f"{'peak resident records':<34} "
        f"{full_report.stream.peak_resident_records:>12,} "
        f"(bound: {full_report.stream.max_resident_records:,})",
        f"{'vote+label shards written':<34} "
        f"{len(full_files):>12,} files",
        f"{'checkpoints written':<34} "
        f"{full_report.checkpoints_written:>12,} "
        f"(last manifest {manifest_bytes:,} bytes)",
        f"{'crash injected after batch':<34} {crash_after:>12,} "
        f"of {total_batches:,}",
        f"{'resumed from batch':<34} "
        f"{str(resumed_report.resumed_from_batch):>12} "
        f"(skipped {resumed_report.skipped_examples:,} examples via "
        f"cursor seek, re-decoded {resumed_report.replayed_examples:,}, "
        f"deleted {len(resumed_report.orphan_shards_deleted)} orphan shards)",
        f"{'resumed bytes == uninterrupted':<34} {str(shards_identical):>12}",
        f"{'posterior gap after final refit':<34} {max_proba_diff:>12.2e}",
    ]
    rows = [
        {
            "examples": n,
            "lfs": len(lfs),
            "micro_batch": batch_size,
            "checkpoint_every": checkpoint_every,
            "durable_examples_per_second": durable_eps,
            "offline_examples_per_second": offline_eps,
            "throughput_ratio": throughput_ratio,
            "peak_resident_records": full_report.stream.peak_resident_records,
            "max_resident_records": full_report.stream.max_resident_records,
            "checkpoints_written": full_report.checkpoints_written,
            "manifest_bytes": manifest_bytes,
            "crash_after_batch": crash_after,
            "crash_seen": crash_seen,
            "resumed_from_batch": resumed_report.resumed_from_batch,
            "skipped_examples": resumed_report.skipped_examples,
            "replayed_examples": resumed_report.replayed_examples,
            "orphan_shards_deleted": len(
                resumed_report.orphan_shards_deleted
            ),
            "shards_identical": shards_identical,
            "max_proba_diff": max_proba_diff,
            "manifest": None
            if manifest is None
            else {
                "path": manifest.path,
                "batch": manifest.batch,
                "cursor": manifest.cursor,
                "meta": manifest.meta,
                "bytes": manifest_bytes,
            },
        }
    ]
    return ExperimentResult("streaming_recovery", "\n".join(lines), rows)
