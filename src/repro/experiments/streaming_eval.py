"""End-to-end streaming weak supervision: stream, label, learn online.

The offline pipeline stages a corpus, labels it, fits the generative
model, then trains the discriminative model. This experiment runs the
same workload as a *continuous* micro-batch stream:

    DFS record shards --chunked reads--> MicroBatchPipeline
        --per-batch votes--> OnlineLabelModel (incremental + refits)
        --probabilistic labels--> FTRL logistic end model (partial_fit)

and compares it against the offline batched path on three axes:

* **throughput** — sustained streaming examples/second vs the offline
  batched job over the same staged shards (decode + label), plus the
  in-memory labeling-only rate for context;
* **equivalence** — streamed votes must be vote-for-vote identical to
  the offline applier (id-aligned), and the online model after its
  final refit must produce the same probabilistic labels as an offline
  :class:`SamplingFreeLabelModel` fit on the same stream;
* **quality** — test-set F1 of the stream-trained FTRL end model
  relative to the offline DryBell arm (which trains thousands of
  buffered FTRL iterations; the streaming model sees every example
  once, as it arrives).

``benchmarks/bench_streaming.py`` turns the first two axes into hard
gates and feeds the rows into ``BENCH_perf.json`` / the trend history.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.config import DEFAULT_SEED
from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel
from repro.core.online_label_model import OnlineLabelModel, OnlineLabelModelConfig
from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.records import iter_record_blobs
from repro.discriminative.logistic import (
    LogisticConfig,
    NoiseAwareLogisticRegression,
)
from repro.discriminative.metrics import binary_metrics
from repro.experiments.harness import (
    ExperimentResult,
    get_content_experiment,
)
from repro.lf.applier import apply_lfs_in_memory, stage_examples
from repro.streaming import (
    CheckpointedStream,
    MicroBatchPipeline,
    RecordStreamSource,
    SimulatedCrash,
)
from repro.types import Example

__all__ = [
    "run_streaming_eval",
    "run_crash_recovery",
    "run_multi_consumer_eval",
    "DEFAULT_MICRO_BATCH",
]

#: Default micro-batch size: big enough that the fused executor and
#: NumPy kernels dominate dispatch, small enough that two resident
#: batches stay far below a shard's worth of records.
DEFAULT_MICRO_BATCH = 2048


def run_streaming_eval(
    scale: str | None = None,
    seed: int = DEFAULT_SEED,
    n_examples: int = 20_000,
    batch_size: int = DEFAULT_MICRO_BATCH,
    refit_every: int | None = None,
    num_shards: int = 8,
    end_model_epochs: int = 2,
) -> ExperimentResult:
    """Stream the product workload end to end; returns the comparison.

    ``refit_every`` is the online model's full-refit cadence in
    micro-batches (``None`` = one refit at stream end, the cheapest
    schedule that still yields offline-exact parameters).
    ``end_model_epochs`` is how many FTRL passes the prequential end
    model takes over each micro-batch before it is discarded.
    """
    exp = get_content_experiment("product", scale, seed)
    pool = exp.dataset.unlabeled
    n = min(n_examples, len(pool))
    lfs = exp.lfs
    featurizer = exp.featurizer

    # ------------------------------------------------------------------
    # stage the corpus once; both arms consume the same shards
    # ------------------------------------------------------------------
    dfs = DistributedFileSystem()
    shard_paths = stage_examples(
        dfs, pool[:n], "/streaming/examples", num_shards=num_shards
    )

    # ------------------------------------------------------------------
    # offline arm: decode everything, label everything, fit once
    # ------------------------------------------------------------------
    offline_start = time.perf_counter()
    offline_examples = [
        Example.from_record(record)
        for record in iter_record_blobs(dfs, shard_paths)
    ]
    L_offline = apply_lfs_in_memory(lfs, offline_examples)
    offline_wall = time.perf_counter() - offline_start
    offline_eps = n / offline_wall if offline_wall > 0 else float("inf")

    # In-memory labeling-only rate (no decode, cold token memos).
    from repro.experiments.perf import _clone_examples

    cloned = _clone_examples(offline_examples)
    label_only_start = time.perf_counter()
    apply_lfs_in_memory(lfs, cloned)
    label_only_wall = time.perf_counter() - label_only_start
    label_only_eps = (
        n / label_only_wall if label_only_wall > 0 else float("inf")
    )

    fit_start = time.perf_counter()
    offline_model = SamplingFreeLabelModel(LabelModelConfig(seed=seed))
    offline_model.fit(L_offline.matrix)
    offline_fit_seconds = time.perf_counter() - fit_start

    # ------------------------------------------------------------------
    # streaming labeling pass: micro-batches feed the online label model
    # (this is the throughput + equivalence arm — the work an always-on
    # labeling service performs per example)
    # ------------------------------------------------------------------
    online = OnlineLabelModel(
        OnlineLabelModelConfig(
            base=LabelModelConfig(seed=seed),
            refit_every=refit_every,
            seed=seed,
        )
    )
    pipeline = MicroBatchPipeline(
        lfs,
        batch_size=batch_size,
        max_resident_batches=2,
        on_batch=lambda _seq, _examples, votes: online.observe(votes),
        collect_votes=True,
    )
    report = pipeline.run(RecordStreamSource(dfs, shard_paths))
    final_model = online.refit()

    # ------------------------------------------------------------------
    # streaming learning pass: a fresh one-pass run where probabilistic
    # labels from the evolving online model train the FTRL end model
    # prequentially (every example seen exactly once, as it arrives)
    # ------------------------------------------------------------------
    online_preq = OnlineLabelModel(
        OnlineLabelModelConfig(
            base=LabelModelConfig(seed=seed),
            refit_every=refit_every,
            seed=seed,
        )
    )
    end_model = NoiseAwareLogisticRegression(
        featurizer.spec.dimension,
        LogisticConfig(alpha=0.2, seed=seed),
    )

    def learning_sink(
        _seq: int, examples: list[Example], votes: np.ndarray
    ) -> None:
        online_preq.observe(votes)
        # Probabilistic labels from the *current* parameter estimate
        # flow straight to the online end model; covered rows only
        # (all-abstain rows carry no signal).
        covered = np.abs(votes).sum(axis=1) > 0
        if covered.any():
            soft = online_preq.predict_proba(votes[covered])
            X = featurizer.transform(
                [e for e, keep in zip(examples, covered) if keep]
            )
            end_model.partial_fit(X, soft, epochs=end_model_epochs)

    learning_pipeline = MicroBatchPipeline(
        lfs,
        batch_size=batch_size,
        max_resident_batches=2,
        on_batch=learning_sink,
    )
    learning_report = learning_pipeline.run(
        RecordStreamSource(dfs, shard_paths)
    )

    # ------------------------------------------------------------------
    # equivalence: votes and (post-refit) probabilistic labels
    # ------------------------------------------------------------------
    L_stream = report.label_matrix
    aligned = L_offline.select_examples(L_stream.example_ids)
    votes_identical = bool(np.array_equal(L_stream.matrix, aligned.matrix))
    # The reference fit sees the stream's matrix (same rows, stream
    # order) so minibatch draws coincide; posteriors must then agree.
    reference = SamplingFreeLabelModel(LabelModelConfig(seed=seed))
    reference.fit(L_stream.matrix)
    max_proba_diff = float(
        np.max(
            np.abs(
                reference.predict_proba(L_stream.matrix)
                - final_model.predict_proba(L_stream.matrix)
            )
        )
        if L_stream.n_examples
        else 0.0
    )

    # ------------------------------------------------------------------
    # end-model quality vs the offline DryBell arm
    # ------------------------------------------------------------------
    stream_metrics = binary_metrics(
        exp.y_test, end_model.predict_proba(exp.X_test)
    )
    offline_metrics = exp.drybell_metrics
    f1_ratio = (
        stream_metrics.f1 / offline_metrics.f1
        if offline_metrics.f1 > 0
        else float("inf")
    )

    throughput_ratio = (
        report.examples_per_second / offline_eps if offline_eps > 0 else 0.0
    )
    lines = [
        "Streaming weak supervision: micro-batch pipeline vs offline batch "
        f"({n:,} examples, {len(lfs)} LFs, micro-batch {batch_size})",
        "",
        f"{'streaming labeling':<34} {report.examples_per_second:>12,.0f} examples/s",
        f"{'offline batch (decode + label)':<34} {offline_eps:>12,.0f} examples/s",
        f"{'  in-memory labeling only':<34} {label_only_eps:>12,.0f} examples/s",
        f"{'streaming / offline':<34} {throughput_ratio:>12.2f}x",
        f"{'streaming + end-model training':<34} "
        f"{learning_report.examples_per_second:>12,.0f} examples/s",
        f"{'peak resident records':<34} {report.peak_resident_records:>12,} "
        f"(bound: {report.max_resident_records:,} = 2 micro-batches)",
        f"{'backpressure waits':<34} {report.backpressure_waits:>12,}",
        f"{'mean / max batch latency':<34} "
        f"{1e3 * report.mean_batch_latency_seconds:>7.1f}ms / "
        f"{1e3 * report.max_batch_latency_seconds:.1f}ms",
        f"{'votes identical to offline':<34} {str(votes_identical):>12}",
        f"{'posterior gap after final refit':<34} {max_proba_diff:>12.2e}",
        f"{'offline label-model fit':<34} {offline_fit_seconds:>11.2f}s "
        f"(online refits: {online.refits_done}, "
        f"{online.n_patterns} vote patterns retained)",
        f"{'stream-trained end model F1':<34} {stream_metrics.f1:>12.3f} "
        f"({100 * f1_ratio:.1f}% of offline arm F1 {offline_metrics.f1:.3f})",
    ]
    rows = [
        {
            "examples": n,
            "lfs": len(lfs),
            "micro_batch": batch_size,
            "streaming_examples_per_second": report.examples_per_second,
            "offline_examples_per_second": offline_eps,
            "label_only_examples_per_second": label_only_eps,
            "learning_examples_per_second": (
                learning_report.examples_per_second
            ),
            "throughput_ratio": throughput_ratio,
            "peak_resident_records": report.peak_resident_records,
            "max_resident_records": report.max_resident_records,
            "backpressure_waits": report.backpressure_waits,
            "mean_batch_latency_seconds": report.mean_batch_latency_seconds,
            "max_batch_latency_seconds": report.max_batch_latency_seconds,
            "votes_identical": votes_identical,
            "max_proba_diff": max_proba_diff,
            "vote_patterns": online.n_patterns,
            "stream_f1": stream_metrics.f1,
            "offline_f1": offline_metrics.f1,
            "f1_ratio": f1_ratio,
        }
    ]
    return ExperimentResult("streaming_eval", "\n".join(lines), rows)


def run_multi_consumer_eval(
    scale: str | None = None,
    seed: int = DEFAULT_SEED,
    n_examples: int = 20_000,
    batch_size: int = DEFAULT_MICRO_BATCH,
    num_shards: int = 8,
    workers: int = 4,
) -> ExperimentResult:
    """Multi-consumer vs single-consumer streaming over the same shards.

    Both arms run the full labeling stream — chunked shard decode,
    micro-batch labeling, a durable :class:`VoteSink`, and an online
    label model — over identical staged shards. The single-consumer arm
    labels on the caller's thread; the multi-consumer arm fans labeling
    out to ``workers`` processes behind the same admission-controlled
    ingest, with sinks still consuming finalized batches strictly in
    order. The equivalence axes are absolute: votes, durable sink shard
    bytes, and post-refit posteriors must match exactly; throughput is
    the axis the bench gate conditions on hardware.
    """
    from repro.experiments.harness import content_lf_suite_spec
    from repro.streaming import VoteSink

    exp = get_content_experiment("product", scale, seed)
    pool = exp.dataset.unlabeled
    n = min(n_examples, len(pool))
    lfs = exp.lfs
    lf_names = [lf.name for lf in lfs]

    dfs = DistributedFileSystem()
    shard_paths = stage_examples(
        dfs, pool[:n], "/multi/examples", num_shards=num_shards
    )

    def run_arm(root: str, arm_workers: int):
        online = OnlineLabelModel(
            OnlineLabelModelConfig(base=LabelModelConfig(seed=seed), seed=seed)
        )
        pipeline = MicroBatchPipeline(
            lfs,
            batch_size=batch_size,
            # The permit pool must cover the worker fan-out or the pool
            # starves; single-consumer keeps the standard 2-batch bound.
            max_resident_batches=2 if arm_workers == 1 else arm_workers + 2,
            on_batch=lambda _seq, _examples, votes: online.observe(votes),
            sinks=[VoteSink(dfs, root, lf_names)],
            collect_votes=True,
            workers=arm_workers,
            suite_spec=(
                None
                if arm_workers == 1
                else content_lf_suite_spec("product", scale, seed)
            ),
        )
        report = pipeline.run(RecordStreamSource(dfs, shard_paths))
        return report, online

    single_report, single_online = run_arm("/multi/single", 1)
    multi_report, multi_online = run_arm("/multi/parallel", workers)

    votes_identical = bool(
        single_report.label_matrix.example_ids
        == multi_report.label_matrix.example_ids
        and np.array_equal(
            single_report.label_matrix.matrix,
            multi_report.label_matrix.matrix,
        )
    )
    single_shards = {
        path[len("/multi/single"):]: dfs.read_file(path)
        for path in dfs.list("/multi/single")
    }
    multi_shards = {
        path[len("/multi/parallel"):]: dfs.read_file(path)
        for path in dfs.list("/multi/parallel")
    }
    sinks_identical = single_shards == multi_shards

    L = single_report.label_matrix.matrix
    max_proba_diff = float(
        np.max(
            np.abs(
                single_online.refit().predict_proba(L)
                - multi_online.refit().predict_proba(L)
            )
        )
        if len(L)
        else 0.0
    )

    single_eps = single_report.examples_per_second
    multi_eps = multi_report.examples_per_second
    speedup = multi_eps / single_eps if single_eps > 0 else 0.0

    lines = [
        "Multi-consumer streaming: process-pool labeling workers vs one "
        f"consumer ({n:,} examples, {len(lfs)} LFs, micro-batch "
        f"{batch_size}, {workers} workers, {os.cpu_count()} CPUs visible)",
        "",
        f"{'single consumer':<34} {single_eps:>12,.0f} examples/s",
        f"{'multi-consumer (%d workers)' % workers:<34} "
        f"{multi_eps:>12,.0f} examples/s",
        f"{'multi / single':<34} {speedup:>12.2f}x",
        f"{'peak resident records (multi)':<34} "
        f"{multi_report.peak_resident_records:>12,} "
        f"(bound: {multi_report.max_resident_records:,})",
        f"{'votes identical':<34} {str(votes_identical):>12}",
        f"{'sink shards byte-identical':<34} {str(sinks_identical):>12}",
        f"{'posterior gap after final refit':<34} {max_proba_diff:>12.2e}",
    ]
    rows = [
        {
            "examples": n,
            "lfs": len(lfs),
            "micro_batch": batch_size,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "single_examples_per_second": single_eps,
            "multi_examples_per_second": multi_eps,
            "speedup": speedup,
            "peak_resident_records": multi_report.peak_resident_records,
            "max_resident_records": multi_report.max_resident_records,
            "backpressure_waits": multi_report.backpressure_waits,
            "votes_identical": votes_identical,
            "sinks_identical": sinks_identical,
            "max_proba_diff": max_proba_diff,
        }
    ]
    return ExperimentResult("streaming_multi_consumer", "\n".join(lines), rows)


def run_crash_recovery(
    scale: str | None = None,
    seed: int = DEFAULT_SEED,
    n_examples: int = 20_000,
    batch_size: int = DEFAULT_MICRO_BATCH,
    num_shards: int = 8,
    checkpoint_every: int = 2,
    crash_after_fraction: float = 0.45,
) -> ExperimentResult:
    """Durable streaming: sink overhead + crash-resume equivalence.

    Three arms over the same staged shards:

    * **offline** — decode + label everything in one batch (the
      throughput reference, as in :func:`run_streaming_eval`);
    * **checkpointed** — the full durable pipeline: vote + label sinks,
      a checkpoint manifest every ``checkpoint_every`` batches; timed,
      because persistence is only a production path if its overhead is
      bounded;
    * **crash + resume** — the same durable pipeline killed after the
      batch at ``crash_after_fraction`` of the stream, then resumed from
      the manifest. Every byte under the recovery root (vote shards,
      label shards, checkpoint manifests) must equal the uninterrupted
      arm's, and the final refit posteriors must agree to <= 1e-6
      (bitwise in practice).
    """
    exp = get_content_experiment("product", scale, seed)
    pool = exp.dataset.unlabeled
    n = min(n_examples, len(pool))
    lfs = exp.lfs

    dfs = DistributedFileSystem()
    shard_paths = stage_examples(
        dfs, pool[:n], "/recovery/examples", num_shards=num_shards
    )

    # ------------------------------------------------------------------
    # offline reference: decode + label, no persistence
    # ------------------------------------------------------------------
    offline_start = time.perf_counter()
    offline_examples = [
        Example.from_record(record)
        for record in iter_record_blobs(dfs, shard_paths)
    ]
    apply_lfs_in_memory(lfs, offline_examples)
    offline_wall = time.perf_counter() - offline_start
    offline_eps = n / offline_wall if offline_wall > 0 else float("inf")

    online_config = OnlineLabelModelConfig(
        base=LabelModelConfig(seed=seed), seed=seed
    )

    def make_runner(root: str) -> CheckpointedStream:
        return CheckpointedStream(
            dfs,
            lfs,
            root,
            batch_size=batch_size,
            max_resident_batches=2,
            online_config=online_config,
            checkpoint_every=checkpoint_every,
        )

    # ------------------------------------------------------------------
    # uninterrupted durable run (timed: the sink-overhead arm)
    # ------------------------------------------------------------------
    uninterrupted = make_runner("/recovery/full")
    full_report = uninterrupted.run(RecordStreamSource(dfs, shard_paths))
    durable_eps = full_report.stream.examples_per_second
    throughput_ratio = durable_eps / offline_eps if offline_eps > 0 else 0.0

    # ------------------------------------------------------------------
    # crash after ~crash_after_fraction of the batches, then resume
    # ------------------------------------------------------------------
    total_batches = full_report.stream.batches
    crash_after = max(0, min(
        total_batches - 2, int(total_batches * crash_after_fraction)
    ))
    crashed = make_runner("/recovery/resumed")
    crash_seen = False
    try:
        crashed.run(
            RecordStreamSource(dfs, shard_paths),
            fail_after_batch=crash_after,
        )
    except SimulatedCrash:
        crash_seen = True
    resumed = make_runner("/recovery/resumed")
    resumed_report = resumed.run(RecordStreamSource(dfs, shard_paths))

    # ------------------------------------------------------------------
    # equivalence: every durable byte, then the final posteriors
    # ------------------------------------------------------------------
    full_files = {
        path[len("/recovery/full"):]: dfs.read_file(path)
        for path in dfs.list("/recovery/full")
    }
    resumed_files = {
        path[len("/recovery/resumed"):]: dfs.read_file(path)
        for path in dfs.list("/recovery/resumed")
    }
    shards_identical = full_files == resumed_files

    L = uninterrupted.online.reconstruct_matrix()
    final_full = uninterrupted.online.refit()
    final_resumed = resumed.online.refit()
    max_proba_diff = float(
        np.max(
            np.abs(
                final_full.predict_proba(L) - final_resumed.predict_proba(L)
            )
        )
        if len(L)
        else 0.0
    )

    manifest = uninterrupted.manager.latest()
    manifest_bytes = (
        dfs.size(manifest.path) if manifest is not None else 0
    )

    lines = [
        "Durable streaming: checkpointed sinks + crash-resume "
        f"({n:,} examples, {len(lfs)} LFs, micro-batch {batch_size}, "
        f"checkpoint every {checkpoint_every} batches)",
        "",
        f"{'durable streaming (sinks + ckpt)':<34} {durable_eps:>12,.0f} examples/s",
        f"{'offline batch (decode + label)':<34} {offline_eps:>12,.0f} examples/s",
        f"{'durable / offline':<34} {throughput_ratio:>12.2f}x",
        f"{'peak resident records':<34} "
        f"{full_report.stream.peak_resident_records:>12,} "
        f"(bound: {full_report.stream.max_resident_records:,})",
        f"{'vote+label shards written':<34} "
        f"{len(full_files):>12,} files",
        f"{'checkpoints written':<34} "
        f"{full_report.checkpoints_written:>12,} "
        f"(last manifest {manifest_bytes:,} bytes)",
        f"{'crash injected after batch':<34} {crash_after:>12,} "
        f"of {total_batches:,}",
        f"{'resumed from batch':<34} "
        f"{str(resumed_report.resumed_from_batch):>12} "
        f"(skipped {resumed_report.skipped_examples:,} examples via "
        f"cursor seek, re-decoded {resumed_report.replayed_examples:,}, "
        f"deleted {len(resumed_report.orphan_shards_deleted)} orphan shards)",
        f"{'resumed bytes == uninterrupted':<34} {str(shards_identical):>12}",
        f"{'posterior gap after final refit':<34} {max_proba_diff:>12.2e}",
    ]
    rows = [
        {
            "examples": n,
            "lfs": len(lfs),
            "micro_batch": batch_size,
            "checkpoint_every": checkpoint_every,
            "durable_examples_per_second": durable_eps,
            "offline_examples_per_second": offline_eps,
            "throughput_ratio": throughput_ratio,
            "peak_resident_records": full_report.stream.peak_resident_records,
            "max_resident_records": full_report.stream.max_resident_records,
            "checkpoints_written": full_report.checkpoints_written,
            "manifest_bytes": manifest_bytes,
            "crash_after_batch": crash_after,
            "crash_seen": crash_seen,
            "resumed_from_batch": resumed_report.resumed_from_batch,
            "skipped_examples": resumed_report.skipped_examples,
            "replayed_examples": resumed_report.replayed_examples,
            "orphan_shards_deleted": len(
                resumed_report.orphan_shards_deleted
            ),
            "shards_identical": shards_identical,
            "max_proba_diff": max_proba_diff,
            "manifest": None
            if manifest is None
            else {
                "path": manifest.path,
                "batch": manifest.batch,
                "cursor": manifest.cursor,
                "meta": manifest.meta,
                "bytes": manifest_bytes,
            },
        }
    ]
    return ExperimentResult("streaming_recovery", "\n".join(lines), rows)
