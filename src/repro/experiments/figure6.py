"""Figure 6: score distributions of the events DNN.

"We compare a histogram of the predicted probabilities ('scores') of an
event using a model trained with a baseline Logical-OR approach ... and
trained using Snorkel DryBell's output ... the baseline approach
results in greatly over-estimating the score of events, whereas the
model trained using Snorkel DryBell produces a smoother distribution."

Shape to reproduce: the Logical-OR-trained DNN piles mass at the extreme
score bins (its targets are hard 0/1 labels and the OR over 140 sources
is mostly wrong about certainty), while the DryBell-trained DNN spreads
scores smoothly. We render ASCII histograms and report tail-mass and
entropy statistics that quantify "smoother".
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_SEED
from repro.discriminative.metrics import score_histogram
from repro.experiments.harness import ExperimentResult, get_events_experiment

__all__ = ["run", "distribution_stats"]


def distribution_stats(scores: np.ndarray, bins: int = 20) -> dict[str, float]:
    """Summary statistics for a score distribution."""
    counts, _ = score_histogram(scores, bins=bins)
    total = counts.sum()
    probs = counts / max(total, 1)
    nonzero = probs[probs > 0]
    entropy = float(-(nonzero * np.log(nonzero)).sum())
    extreme_mass = float(probs[0] + probs[-1])
    return {
        "entropy_nats": entropy,
        "extreme_bin_mass": extreme_mass,
        "mean_score": float(scores.mean()),
        "mass_above_0.9": float((scores > 0.9).mean()),
        "mass_above_0.7": float((scores > 0.7).mean()),
        "occupied_bins": int((counts > 0).sum()),
    }


def _ascii_histogram(scores: np.ndarray, bins: int = 20, width: int = 40) -> list[str]:
    counts, edges = score_histogram(scores, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"  [{edges[i]:.2f},{edges[i+1]:.2f}) {count:>6} {bar}")
    return lines


def run(scale: str | None = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    exp = get_events_experiment(scale, seed)
    s_or = exp.scores_logical_or
    s_db = exp.scores_drybell
    stats_or = distribution_stats(s_or)
    stats_db = distribution_stats(s_db)

    lines = ["Figure 6: events-DNN score distributions", ""]
    lines.append("Logical-OR-trained DNN scores:")
    lines += _ascii_histogram(s_or)
    lines.append("")
    lines.append("Snorkel DryBell-trained DNN scores:")
    lines += _ascii_histogram(s_db)
    lines += [
        "",
        f"{'':<24} {'Logical-OR':>12} {'DryBell':>12}",
        f"{'mean score':<24} {stats_or['mean_score']:>12.3f} "
        f"{stats_db['mean_score']:>12.3f}",
        f"{'mass above 0.7':<24} {stats_or['mass_above_0.7']:>12.3f} "
        f"{stats_db['mass_above_0.7']:>12.3f}",
        f"{'mass above 0.9':<24} {stats_or['mass_above_0.9']:>12.3f} "
        f"{stats_db['mass_above_0.9']:>12.3f}",
        f"{'entropy (nats)':<24} {stats_or['entropy_nats']:>12.3f} "
        f"{stats_db['entropy_nats']:>12.3f}",
        "",
        "shape check (paper Figure 6): the Logical-OR model greatly",
        "over-estimates event scores (mass piled at high values); the",
        "DryBell model's distribution is smoother and lower.",
    ]
    rows = [{"logical_or": stats_or, "drybell": stats_db}]
    return ExperimentResult("figure6_scores", "\n".join(lines), rows)
