"""Table 3: servability ablation.

"We measured the importance of including non-servable organizational
supervision resources by removing all labeling functions that depend on
them ... The only labeling functions that remained were pattern-based
rules."

Paper values (relative to the dev-set baseline):

  Topic    — servable LFs only: P 50.9, R 159.2, F1 86.1
             + non-servable:    P 100.6, R 132.1, F1 117.5 (lift +36.4)
  Product  — servable LFs only: P 38.0, R 119.2, F1 62.5
             + non-servable:    P 99.2, R 110.1, F1 105.2 (lift +68.2)

Shape: the servable-only arm is recall-heavy and precision-poor; adding
the non-servable organizational resources restores precision for an
average ≈52% F1 lift.
"""

from __future__ import annotations

from repro.config import DEFAULT_SEED
from repro.experiments.harness import (
    ExperimentResult,
    format_relative_row,
    get_content_experiment,
)

__all__ = ["run", "PAPER_VALUES"]

PAPER_VALUES = {
    "topic": {
        "servable": {"precision": 50.9, "recall": 159.2, "f1": 86.1, "lift": 0.0},
        "all": {"precision": 100.6, "recall": 132.1, "f1": 117.5, "lift": 36.4},
    },
    "product": {
        "servable": {"precision": 38.0, "recall": 119.2, "f1": 62.5, "lift": 0.0},
        "all": {"precision": 99.2, "recall": 110.1, "f1": 105.2, "lift": 68.2},
    },
}


def run(scale: str | None = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    rows = []
    lines = ["Table 3: servable-only LFs vs all LFs (relative to baseline)"]
    lifts = []
    for task in ("topic", "product"):
        exp = get_content_experiment(task, scale, seed)
        servable_rel = exp.relative(exp.servable_only_metrics)
        all_rel = exp.relative(exp.drybell_metrics)
        lift_vs_servable = (
            100.0 * (all_rel["f1"] / servable_rel["f1"] - 1.0)
            if servable_rel["f1"] > 0
            else float("nan")
        )
        lifts.append(lift_vs_servable)
        paper = PAPER_VALUES[task]
        rows.append(
            {
                "task": task,
                "servable_only": servable_rel,
                "all_lfs": all_rel,
                "lift_vs_servable_pct": lift_vs_servable,
                "servable_lf_names": exp.registry.servable_names(),
                "paper": paper,
            }
        )
        lines += [
            "",
            f"== {exp.dataset.task} "
            f"({len(exp.registry.servable_names())} servable of {len(exp.lfs)} LFs) ==",
            format_relative_row("servable LFs only", servable_rel),
            format_relative_row("  (paper)", paper["servable"]),
            format_relative_row("+ non-servable LFs", all_rel),
            format_relative_row("  (paper)", paper["all"]),
            f"{'F1 lift vs servable-only':<28} {lift_vs_servable:+.1f}%   "
            f"(paper: {paper['all']['lift']:+.1f}%)",
        ]
    mean_lift = sum(lifts) / len(lifts)
    lines += ["", f"average lift from non-servable resources: {mean_lift:+.1f}% "
              f"(paper: +52% average)"]
    return ExperimentResult("table3_servability", "\n".join(lines), rows)
