"""Table 1: dataset regimes for the content classification applications.

Paper values (full scale): topic — n=684K, nDev=11K, nTest=11K, 0.86%
positive, 10 LFs; product — n=6.5M, nDev=14K, nTest=13K, 1.48% positive,
8 LFs. At reduced scale the sizes shrink ~30x and the positive rate is
raised to keep the positive *count* (and hence F1 variance) in the same
regime as the paper's ~95-190 test positives.
"""

from __future__ import annotations

from repro.config import DEFAULT_SEED
from repro.experiments.harness import ExperimentResult, get_content_experiment

__all__ = ["run", "PAPER_VALUES"]

PAPER_VALUES = {
    "topic": {
        "n": 684_000, "n_dev": 11_000, "n_test": 11_000,
        "pct_pos": 0.86, "n_lfs": 10,
    },
    "product": {
        "n": 6_500_000, "n_dev": 14_000, "n_test": 13_000,
        "pct_pos": 1.48, "n_lfs": 8,
    },
}


def run(scale: str | None = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    rows = []
    lines = [
        "Table 1: content-classification dataset regimes",
        f"{'task':<24} {'n':>10} {'nDev':>8} {'nTest':>8} {'%pos':>7} {'#LFs':>5}",
        "-" * 68,
    ]
    for task in ("topic", "product"):
        exp = get_content_experiment(task, scale, seed)
        stats = exp.dataset.stats()
        n_lfs = len(exp.lfs)
        paper = PAPER_VALUES[task]
        rows.append({**stats, "n_lfs": n_lfs, "paper": paper})
        lines.append(
            f"{stats['task']:<24} {stats['n_unlabeled']:>10} "
            f"{stats['n_dev']:>8} {stats['n_test']:>8} "
            f"{stats['pct_positive_test']:>6.2f}% {n_lfs:>5}"
        )
        lines.append(
            f"{'  (paper, full scale)':<24} {paper['n']:>10} "
            f"{paper['n_dev']:>8} {paper['n_test']:>8} "
            f"{paper['pct_pos']:>6.2f}% {paper['n_lfs']:>5}"
        )
    return ExperimentResult("table1_datasets", "\n".join(lines), rows)
