"""Telemetry overhead + identity: instrumented vs bare hot paths.

The unified telemetry layer (:mod:`repro.obs`) promises two things:

* **identity** — attaching a :class:`~repro.obs.MetricsRegistry`, a
  :class:`~repro.obs.Tracer`, and a
  :class:`~repro.obs.TelemetryExporter` to a run must not change a
  single produced byte: vote shards, label shards, checkpoint
  manifests, and offline vote matrices are compared against an
  uninstrumented run of the same workload;
* **bounded overhead** — the instrumented run's throughput must stay
  within a fixed fraction of the bare run's on both hot paths
  (streaming and offline batched labeling).

:func:`run_telemetry_overhead` measures both on the product workload
and ``benchmarks/bench_telemetry.py`` turns them into hard gates (the
``telemetry_overhead`` section of ``BENCH_perf.json``). The identity
half is asserted unconditionally — it must hold at smoke scale too;
the throughput floor binds at production scale like every other bench.
"""

from __future__ import annotations

import gc
import time

from repro.config import DEFAULT_SEED
from repro.core.online_label_model import OnlineLabelModelConfig
from repro.core.label_model import LabelModelConfig
from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.records import iter_record_blobs
from repro.experiments.harness import (
    ExperimentResult,
    get_content_experiment,
)
from repro.lf.applier import apply_lfs_in_memory, stage_examples
from repro.obs import (
    DfsTraceSink,
    JsonlTraceSink,
    MetricsRegistry,
    TelemetryExporter,
    Tracer,
)
from repro.streaming import CheckpointedStream, RecordStreamSource
from repro.types import Example

__all__ = ["run_telemetry_overhead"]


def _root_bytes(dfs: DistributedFileSystem, root: str) -> dict[str, bytes]:
    """Every durable file under ``root``, keyed by its relative path."""
    return {
        path[len(root):]: dfs.read_file(path)
        for path in dfs.list(root)
    }


def _timed(fn):
    """Run ``fn`` with the garbage collector parked; returns (result, wall).

    The ``timeit`` trick: a cyclic-GC pass landing inside one arm but
    not the other swings sub-second measurements by far more than the
    few histogram records under test, so each arm starts from a
    collected heap and runs without the collector.
    """
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = fn()
        return result, time.perf_counter() - start
    finally:
        gc.enable()


def run_telemetry_overhead(
    scale: str | None = None,
    seed: int = DEFAULT_SEED,
    n_examples: int = 20_000,
    batch_size: int = 2048,
    num_shards: int = 8,
    checkpoint_every: int = 4,
    trace_sample: float = 1.0,
    trace_jsonl: str | None = None,
    metrics_jsonl: str | None = None,
    repeats: int = 3,
) -> ExperimentResult:
    """Fully instrumented vs bare runs of both hot paths.

    Four arms over one staged corpus:

    * **streaming, bare** — durable :class:`CheckpointedStream` (vote +
      label sinks, periodic manifests), no telemetry;
    * **streaming, instrumented** — the same stream with a metrics
      registry, an always-on tracer (``trace_sample`` of root spans
      kept), and a running :class:`TelemetryExporter` publishing
      snapshots durably. Every byte under its stream root must equal
      the bare arm's;
    * **offline, bare / instrumented** — the batched in-memory applier
      with and without telemetry over clones of the same decoded
      examples; the vote matrices must be identical.

    Each arm runs ``repeats`` times, bare and instrumented interleaved,
    and the comparison uses the best rate per arm — min-wall
    methodology: arms take around a second each, where background
    machine noise swings single measurements far more than the
    instrumentation under test, while the *minimum* wall time is the
    run the noise missed.

    Args:
        scale: Dataset scale preset (``None`` reads ``REPRO_SCALE``).
        seed: Workload seed.
        n_examples: Examples per arm (capped by the pool).
        batch_size: Micro-batch / block size for both paths.
        num_shards: Staged example shards.
        checkpoint_every: Manifest cadence of the streaming arms.
        trace_sample: Root-span keep fraction for the instrumented arms.
        trace_jsonl: When set, spans additionally land in this local
            JSONL file (the CI trace artifact) instead of DFS trace
            shards.
        metrics_jsonl: When set, the exporter appends snapshot lines to
            this local file as well as its DFS records.
        repeats: Interleaved timing repetitions per arm (>= 1).

    Returns:
        An :class:`ExperimentResult` whose single row carries both
        throughput ratios, both identity verdicts, and the final
        telemetry snapshot.

    Raises:
        ValueError: On a non-positive ``repeats``.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    exp = get_content_experiment("product", scale, seed)
    pool = exp.dataset.unlabeled
    n = min(n_examples, len(pool))
    lfs = exp.lfs

    dfs = DistributedFileSystem()
    shard_paths = stage_examples(
        dfs, pool[:n], "/telemetry/examples", num_shards=num_shards
    )

    online_config = OnlineLabelModelConfig(
        base=LabelModelConfig(seed=seed), seed=seed
    )

    # Untimed warm-up: decode one shard and label it once so neither
    # arm pays the one-time costs (lazy imports, LF resource start,
    # kernel warm caches) — with arms run back to back, those costs
    # would otherwise land entirely on whichever arm goes first and
    # bias the ratio.
    from repro.experiments.perf import _clone_examples

    warm = [
        Example.from_record(record)
        for record in iter_record_blobs(dfs, shard_paths[:1])
    ]
    apply_lfs_in_memory(lfs, _clone_examples(warm), batch_size=batch_size)

    def run_stream(root: str, telemetry, tracer):
        stream = CheckpointedStream(
            dfs,
            lfs,
            root,
            batch_size=batch_size,
            max_resident_batches=2,
            online_config=online_config,
            checkpoint_every=checkpoint_every,
            telemetry=telemetry,
            tracer=tracer,
        )
        return stream.run(RecordStreamSource(dfs, shard_paths))

    # ------------------------------------------------------------------
    # streaming arms: bare and instrumented, interleaved repeats
    # ------------------------------------------------------------------
    registry = MetricsRegistry()
    if trace_jsonl is not None:
        sink = JsonlTraceSink(trace_jsonl)
    else:
        sink = DfsTraceSink(dfs, "/telemetry/obs/traces")
    tracer = Tracer(sink=sink, enabled=True, sample=trace_sample)
    exporter = TelemetryExporter(
        registry,
        interval_s=0.5,
        dfs=dfs,
        root="/telemetry/obs/metrics",
        path=metrics_jsonl,
    )
    stream_off_eps = 0.0
    stream_on_eps = 0.0
    instrumented_report = None
    with exporter:
        for rep in range(repeats):
            bare_report, _ = _timed(
                lambda rep=rep: run_stream(
                    f"/telemetry/stream-off-{rep}", None, None
                )
            )
            rep_report, _ = _timed(
                lambda rep=rep: run_stream(
                    f"/telemetry/stream-on-{rep}", registry, tracer
                )
            )
            if instrumented_report is None:
                instrumented_report = rep_report
            stream_off_eps = max(
                stream_off_eps, bare_report.stream.examples_per_second
            )
            stream_on_eps = max(
                stream_on_eps, rep_report.stream.examples_per_second
            )
    tracer.close()
    stream_ratio = (
        stream_on_eps / stream_off_eps if stream_off_eps > 0 else 0.0
    )
    # The identity claim, byte for byte: telemetry lives under its own
    # root, so every instrumented stream root must equal the bare one.
    reference_bytes = _root_bytes(dfs, "/telemetry/stream-off-0")
    stream_identical = all(
        _root_bytes(dfs, f"/telemetry/stream-{arm}-{rep}")
        == reference_bytes
        for rep in range(repeats)
        for arm in ("off", "on")
    )
    final_snapshot = exporter.last_snapshot or {}
    trace_records = getattr(sink, "records_written", 0)

    # ------------------------------------------------------------------
    # offline arms: bare vs instrumented over clones of one decode
    # ------------------------------------------------------------------
    decoded = [
        Example.from_record(record)
        for record in iter_record_blobs(dfs, shard_paths)
    ]
    offline_registry = MetricsRegistry()
    offline_tracer = Tracer(enabled=True, sample=trace_sample)
    offline_off_eps = 0.0
    offline_on_eps = 0.0
    L_bare = None
    L_instrumented = None
    for rep in range(repeats):
        bare_clone = _clone_examples(decoded)
        rep_bare, off_wall = _timed(
            lambda: apply_lfs_in_memory(
                lfs, bare_clone, batch_size=batch_size
            )
        )
        offline_off_eps = max(
            offline_off_eps, n / off_wall if off_wall > 0 else float("inf")
        )

        on_clone = _clone_examples(decoded)
        rep_instrumented, on_wall = _timed(
            lambda: apply_lfs_in_memory(
                lfs,
                on_clone,
                batch_size=batch_size,
                telemetry=offline_registry,
                tracer=offline_tracer,
            )
        )
        offline_on_eps = max(
            offline_on_eps, n / on_wall if on_wall > 0 else float("inf")
        )
        if L_bare is None:
            L_bare, L_instrumented = rep_bare, rep_instrumented
    offline_ratio = (
        offline_on_eps / offline_off_eps if offline_off_eps > 0 else 0.0
    )
    offline_identical = (
        L_bare.example_ids == L_instrumented.example_ids
        and bool((L_bare.matrix == L_instrumented.matrix).all())
    )

    stream_hists = instrumented_report.stream.telemetry["histograms"]
    lines = [
        "Telemetry overhead: instrumented vs bare hot paths "
        f"({n:,} examples, {len(lfs)} LFs, micro-batch {batch_size}, "
        f"trace sample {trace_sample})",
        "",
        f"{'streaming bare':<34} {stream_off_eps:>12,.0f} examples/s",
        f"{'streaming instrumented':<34} {stream_on_eps:>12,.0f} examples/s",
        f"{'streaming on / off':<34} {stream_ratio:>12.2f}x",
        f"{'offline bare':<34} {offline_off_eps:>12,.0f} examples/s",
        f"{'offline instrumented':<34} {offline_on_eps:>12,.0f} examples/s",
        f"{'offline on / off':<34} {offline_ratio:>12.2f}x",
        f"{'stream roots byte-identical':<34} {str(stream_identical):>12}",
        f"{'offline votes identical':<34} {str(offline_identical):>12}",
        f"{'spans written / started':<34} "
        f"{tracer.spans_written:>6,} / {tracer.spans_started:,} "
        f"({trace_records:,} trace records)",
        f"{'metrics snapshots published':<34} "
        f"{exporter.snapshots_written:>12,}",
        f"{'stage histograms (stream)':<34} "
        + ", ".join(
            f"{name.split('/', 1)[1]} p99 "
            f"{stream_hists[name]['p99']:,.0f}us"
            for name in (
                "stream/decode_us",
                "stream/label_us",
                "stream/sink_us",
            )
            if name in stream_hists
        ),
    ]
    rows = [
        {
            "examples": n,
            "lfs": len(lfs),
            "micro_batch": batch_size,
            "trace_sample": trace_sample,
            "repeats": repeats,
            "stream_examples_per_second": stream_off_eps,
            "stream_telemetry_examples_per_second": stream_on_eps,
            "stream_telemetry_ratio": stream_ratio,
            "offline_examples_per_second": offline_off_eps,
            "offline_telemetry_examples_per_second": offline_on_eps,
            "offline_telemetry_ratio": offline_ratio,
            "stream_bytes_identical": stream_identical,
            "offline_votes_identical": offline_identical,
            "spans_started": tracer.spans_started,
            "spans_written": tracer.spans_written,
            "trace_records": trace_records,
            "snapshots_written": exporter.snapshots_written,
            "checkpoints_written": instrumented_report.checkpoints_written,
            "histogram_names": sorted(stream_hists),
            "final_snapshot": final_snapshot,
        }
    ]
    return ExperimentResult("telemetry_overhead", "\n".join(lines), rows)
