"""Section 5.2 speed comparison and Section 1 scale extrapolation.

Speed: "in our product classification application, in which there are
ten labeling functions, the optimizer takes an average > 100 steps per
second with a batch size of 64. With ten labeling functions and a batch
size of 64, a Gibbs sampler averages < 50 examples per second, so
Snorkel DryBell provides a 2x speedup."

(Note the paper compares optimizer *steps*/s against Gibbs *examples*/s
at the same batch size — a step consumes one 64-example batch, so the
comparable rate is steps/s * 64 vs examples/s; we report both.)

Scale: "implementing weak supervision over 6M+ data points with
sub-30min execution time". We measure this implementation's end-to-end
labeling + modeling throughput on the simulated MapReduce substrate and
extrapolate to 6.5M examples, reporting the implied node count needed to
stay under 30 minutes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import DEFAULT_SEED
from repro.core.gibbs import GibbsConfig, GibbsLabelModel
from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel
from repro.experiments.harness import ExperimentResult, get_content_experiment
from repro.lf.applier import LFApplier, stage_examples
from repro.dfs.filesystem import DistributedFileSystem

__all__ = ["run_speed", "run_scale", "measure_label_model_steps_per_second"]


def measure_label_model_steps_per_second(
    L: np.ndarray,
    batch_size: int = 64,
    budget_seconds: float = 1.0,
    seed: int = 0,
) -> float:
    """Gradient steps per second of the sampling-free trainer."""
    model = SamplingFreeLabelModel(
        LabelModelConfig(batch_size=batch_size, optimizer="sgd", seed=seed)
    )
    model.init_params(L.shape[1])
    rng = np.random.default_rng(seed)
    steps = 0
    start = time.perf_counter()
    while time.perf_counter() - start < budget_seconds:
        idx = rng.integers(0, len(L), size=batch_size)
        model.partial_step(L[idx])
        steps += 1
    return steps / (time.perf_counter() - start)


def run_speed(scale: str | None = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """The Section 5.2 sampling-free vs Gibbs comparison."""
    exp = get_content_experiment("product", scale, seed)
    L = exp.L_unlabeled.matrix.astype(np.float64)

    steps_per_s = measure_label_model_steps_per_second(L, budget_seconds=1.5)
    gibbs = GibbsLabelModel(GibbsConfig(batch_size=64, seed=seed))
    gibbs_examples_per_s = gibbs.benchmark_examples_per_second(
        L, budget_seconds=1.5
    )
    sampling_free_examples_per_s = steps_per_s * 64
    speedup = sampling_free_examples_per_s / max(gibbs_examples_per_s, 1e-9)

    lines = [
        "Section 5.2: sampling-free vs Gibbs (product app LF matrix, batch 64)",
        "",
        f"{'sampling-free optimizer':<32} {steps_per_s:>10.1f} steps/s "
        f"(paper: >100)",
        f"{'  = examples consumed':<32} {sampling_free_examples_per_s:>10.1f} examples/s",
        f"{'Gibbs sampler':<32} {gibbs_examples_per_s:>10.1f} examples/s "
        f"(paper: <50)",
        f"{'speedup (examples/s ratio)':<32} {speedup:>10.1f}x (paper: ~2x; "
        f"ours is larger because the Gibbs inner loop is pure Python)",
    ]
    rows = [
        {
            "steps_per_second": steps_per_s,
            "gibbs_examples_per_second": gibbs_examples_per_s,
            "speedup": speedup,
        }
    ]
    return ExperimentResult("perf_label_model", "\n".join(lines), rows)


def run_scale(scale: str | None = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """The Section 1 scale claim: 6M+ points in under 30 minutes."""
    exp = get_content_experiment("product", scale, seed)
    examples = exp.dataset.unlabeled[:4000]
    lfs = exp.lfs

    dfs = DistributedFileSystem()
    paths = stage_examples(dfs, examples, "/perf/examples", num_shards=8)
    applier = LFApplier(dfs, paths, run_root="/perf/run", parallelism=4)
    start = time.perf_counter()
    report = applier.apply(lfs)
    labeling_wall = time.perf_counter() - start

    start = time.perf_counter()
    model = SamplingFreeLabelModel(LabelModelConfig(seed=seed))
    model.fit(report.label_matrix.matrix)
    modeling_wall = time.perf_counter() - start

    per_example = labeling_wall / len(examples)
    target = 6_500_000
    single_node_minutes = per_example * target / 60
    nodes_for_30min = max(1, int(np.ceil(single_node_minutes / 30)))

    lines = [
        "Section 1 scale: end-to-end labeling throughput (MapReduce substrate)",
        "",
        f"{'examples labeled':<36} {len(examples):>12,}",
        f"{'labeling functions':<36} {len(lfs):>12}",
        f"{'labeling wall time':<36} {labeling_wall:>11.1f}s "
        f"({report.examples_per_second:,.0f} examples/s)",
        f"{'generative model training':<36} {modeling_wall:>11.1f}s",
        f"{'extrapolated 6.5M single-node':<36} {single_node_minutes:>10.1f}min",
        f"{'nodes needed for sub-30min':<36} {nodes_for_30min:>12,} "
        f"(paper: 6M+ in <30min on Google's cluster)",
    ]
    rows = [
        {
            "examples": len(examples),
            "labeling_wall_seconds": labeling_wall,
            "modeling_wall_seconds": modeling_wall,
            "examples_per_second": report.examples_per_second,
            "nodes_for_30min_at_6_5m": nodes_for_30min,
        }
    ]
    return ExperimentResult("perf_scale", "\n".join(lines), rows)
