"""Section 5.2 speed comparison and Section 1 scale extrapolation.

Speed: "in our product classification application, in which there are
ten labeling functions, the optimizer takes an average > 100 steps per
second with a batch size of 64. With ten labeling functions and a batch
size of 64, a Gibbs sampler averages < 50 examples per second, so
Snorkel DryBell provides a 2x speedup."

(Note the paper compares optimizer *steps*/s against Gibbs *examples*/s
at the same batch size — a step consumes one 64-example batch, so the
comparable rate is steps/s * 64 vs examples/s; we report both.)

Scale: "implementing weak supervision over 6M+ data points with
sub-30min execution time". We measure this implementation's end-to-end
labeling + modeling throughput on the simulated MapReduce substrate and
extrapolate to 6.5M examples, reporting the implied node count needed to
stay under 30 minutes.

Batch engine: :func:`run_batch_throughput` compares the vectorized
in-memory labeling path against the per-example baseline on identical
example pools (votes asserted identical) and times the label-model fit.
All perf experiments contribute their rows to a machine-readable
``BENCH_perf.json`` at the repository root via :func:`update_bench_json`,
which CI uploads as an artifact so the performance trajectory is tracked
per commit.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.config import DEFAULT_SEED
from repro.core.gibbs import GibbsConfig, GibbsLabelModel
from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel
from repro.core.patterns import compress_votes
from repro.experiments.harness import (
    ExperimentResult,
    get_content_experiment,
    results_path,
)
from repro.lf.applier import LFApplier, apply_lfs_in_memory, stage_examples
from repro.dfs.filesystem import DistributedFileSystem
from repro.types import Example

__all__ = [
    "run_speed",
    "run_scale",
    "run_batch_throughput",
    "run_fit_compression_eval",
    "measure_label_model_steps_per_second",
    "bench_json_path",
    "update_bench_json",
    "bench_history_path",
    "append_bench_history",
    "check_history_trend",
]


def bench_json_path() -> str:
    """``BENCH_perf.json`` at the repository root."""
    return os.path.join(os.path.dirname(results_path()), "BENCH_perf.json")


def update_bench_json(section: str, payload: dict, path: str | None = None) -> str:
    """Merge one experiment's rows into ``BENCH_perf.json``.

    Each perf benchmark owns a section; read-modify-write keeps the file
    a single machine-readable snapshot regardless of which benchmarks
    ran. Returns the path written.
    """
    path = path or bench_json_path()
    data: dict = {"schema": 1}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            data = {"schema": 1}
    data[section] = payload
    data["python"] = platform.python_version()
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def bench_history_path() -> str:
    """``BENCH_history.jsonl`` at the repository root."""
    return os.path.join(os.path.dirname(results_path()), "BENCH_history.jsonl")


def append_bench_history(
    section: str, payload: dict, path: str | None = None
) -> str:
    """Append one benchmark row to the append-only history log.

    ``BENCH_perf.json`` is a latest-snapshot; the JSONL history keeps
    every run so the trend gate can flag *gradual* regressions that
    never trip a hard floor in any single run. One line per (run,
    section), stamped with wall-clock time and the Python version.
    Returns the path written.
    """
    path = path or bench_history_path()
    entry = {
        "section": section,
        "recorded_unix": round(time.time(), 3),
        "python": platform.python_version(),
        **payload,
    }
    with open(path, "a") as handle:
        json.dump(entry, handle, sort_keys=True)
        handle.write("\n")
    return path


#: History fields that define a benchmark *configuration*. Entries whose
#: values differ on any of these never share a trend window: comparing a
#: ``REPRO_BENCH_N=4000`` smoke run against 20k-example history (or a
#: ``REPRO_SCALE`` / ``REPRO_WORKERS`` change) flags spurious >20%
#: "regressions" that are really workload changes.
TREND_CONFIG_KEYS = ("scale", "examples", "workers")


def check_history_trend(
    section: str,
    metric: str,
    higher_is_better: bool = True,
    window: int = 10,
    tolerance: float = 0.20,
    min_history: int = 3,
    path: str | None = None,
    match: dict | None = None,
    config_keys: tuple[str, ...] = TREND_CONFIG_KEYS,
) -> dict | None:
    """Compare the latest history entry against its trailing median.

    Reads the last ``window`` prior entries for ``(section, metric)``
    and flags the newest one when it regresses more than ``tolerance``
    (default 20%) from their median — the complement of the hard
    speedup floors, which only catch cliff-edge regressions.

    The window is keyed strictly per configuration: prior entries only
    join the trend line when their ``config_keys`` fields
    (scale / example count by default) equal the newest entry's, so a
    history that spans a ``REPRO_BENCH_N`` or ``REPRO_SCALE`` change
    never mixes configurations even when the caller passes no explicit
    ``match``. ``match`` additionally restricts the series to entries
    whose fields equal the given values. Returns a diagnostic dict when
    flagged, ``None`` when healthy or when fewer than ``min_history``
    prior same-configuration runs exist (fresh checkouts and CI machines
    with no baseline stay green).
    """
    path = path or bench_history_path()
    if not os.path.exists(path):
        return None
    entries: list[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if entry.get("section") != section or metric not in entry:
                continue
            if match and any(
                entry.get(key) != value for key, value in match.items()
            ):
                continue
            entries.append(entry)
    if not entries:
        return None
    # Key the window per configuration: the newest entry defines the
    # configuration under test; history rows recorded under any other
    # configuration are a different workload, not a different speed.
    config = {
        key: entries[-1].get(key)
        for key in config_keys
        if key in entries[-1]
    }
    values = [
        float(entry[metric])
        for entry in entries
        if all(entry.get(key) == value for key, value in config.items())
    ]
    if len(values) < min_history + 1:
        return None
    latest = values[-1]
    trailing = values[-(window + 1):-1]
    median = float(np.median(trailing))
    if median <= 0:
        return None
    ratio = latest / median
    regressed = ratio < (1.0 - tolerance) if higher_is_better else (
        ratio > (1.0 + tolerance)
    )
    if not regressed:
        return None
    return {
        "section": section,
        "metric": metric,
        "latest": latest,
        "trailing_median": median,
        "ratio": ratio,
        "window": len(trailing),
        "tolerance": tolerance,
        "config": config,
    }


def measure_label_model_steps_per_second(
    L: np.ndarray,
    batch_size: int = 64,
    budget_seconds: float = 1.0,
    seed: int = 0,
) -> float:
    """Gradient steps per second of the sampling-free trainer."""
    model = SamplingFreeLabelModel(
        LabelModelConfig(batch_size=batch_size, optimizer="sgd", seed=seed)
    )
    model.init_params(L.shape[1])
    rng = np.random.default_rng(seed)
    steps = 0
    start = time.perf_counter()
    while time.perf_counter() - start < budget_seconds:
        idx = rng.integers(0, len(L), size=batch_size)
        model.partial_step(L[idx])
        steps += 1
    return steps / (time.perf_counter() - start)


def run_speed(scale: str | None = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """The Section 5.2 sampling-free vs Gibbs comparison."""
    exp = get_content_experiment("product", scale, seed)
    L = exp.L_unlabeled.matrix.astype(np.float64)

    steps_per_s = measure_label_model_steps_per_second(L, budget_seconds=1.5)
    gibbs = GibbsLabelModel(GibbsConfig(batch_size=64, seed=seed))
    gibbs_examples_per_s = gibbs.benchmark_examples_per_second(
        L, budget_seconds=1.5
    )
    sampling_free_examples_per_s = steps_per_s * 64
    speedup = sampling_free_examples_per_s / max(gibbs_examples_per_s, 1e-9)

    lines = [
        "Section 5.2: sampling-free vs Gibbs (product app LF matrix, batch 64)",
        "",
        f"{'sampling-free optimizer':<32} {steps_per_s:>10.1f} steps/s "
        f"(paper: >100)",
        f"{'  = examples consumed':<32} {sampling_free_examples_per_s:>10.1f} examples/s",
        f"{'Gibbs sampler':<32} {gibbs_examples_per_s:>10.1f} examples/s "
        f"(paper: <50)",
        f"{'speedup (examples/s ratio)':<32} {speedup:>10.1f}x (paper: ~2x; "
        f"ours is larger because the Gibbs inner loop is pure Python)",
    ]
    rows = [
        {
            "steps_per_second": steps_per_s,
            "gibbs_examples_per_second": gibbs_examples_per_s,
            "speedup": speedup,
        }
    ]
    return ExperimentResult("perf_label_model", "\n".join(lines), rows)


def run_scale(scale: str | None = None, seed: int = DEFAULT_SEED) -> ExperimentResult:
    """The Section 1 scale claim: 6M+ points in under 30 minutes."""
    exp = get_content_experiment("product", scale, seed)
    examples = exp.dataset.unlabeled[:4000]
    lfs = exp.lfs

    dfs = DistributedFileSystem()
    paths = stage_examples(dfs, examples, "/perf/examples", num_shards=8)
    applier = LFApplier(dfs, paths, run_root="/perf/run", parallelism=4)
    start = time.perf_counter()
    report = applier.apply(lfs)
    labeling_wall = time.perf_counter() - start

    start = time.perf_counter()
    model = SamplingFreeLabelModel(LabelModelConfig(seed=seed))
    model.fit(report.label_matrix.matrix)
    modeling_wall = time.perf_counter() - start

    per_example = labeling_wall / len(examples)
    target = 6_500_000
    single_node_minutes = per_example * target / 60
    nodes_for_30min = max(1, int(np.ceil(single_node_minutes / 30)))

    lines = [
        "Section 1 scale: end-to-end labeling throughput (MapReduce substrate)",
        "",
        f"{'examples labeled':<36} {len(examples):>12,}",
        f"{'labeling functions':<36} {len(lfs):>12}",
        f"{'labeling wall time':<36} {labeling_wall:>11.1f}s "
        f"({report.examples_per_second:,.0f} examples/s)",
        f"{'generative model training':<36} {modeling_wall:>11.1f}s",
        f"{'extrapolated 6.5M single-node':<36} {single_node_minutes:>10.1f}min",
        f"{'nodes needed for sub-30min':<36} {nodes_for_30min:>12,} "
        f"(paper: 6M+ in <30min on Google's cluster)",
    ]
    rows = [
        {
            "examples": len(examples),
            "labeling_wall_seconds": labeling_wall,
            "modeling_wall_seconds": modeling_wall,
            "examples_per_second": report.examples_per_second,
            "nodes_for_30min_at_6_5m": nodes_for_30min,
        }
    ]
    return ExperimentResult("perf_scale", "\n".join(lines), rows)


def run_fit_compression_eval(
    n_values: tuple[int, ...] = (2_000, 8_000, 30_720),
    n_patterns: int = 200,
    n_lfs: int = 12,
    n_steps: int = 120,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Refit latency: full-matrix vs pattern-compressed fitting.

    Draws every matrix from one fixed pool of ``n_patterns`` distinct
    vote rows so the compressed problem size stays constant while ``n``
    grows, then times a full-batch fit (``batch_size >= n``, so each
    step touches every row) both ways and checks the compression
    contract: posteriors agree to <= 1e-9 at every size. Per-step cost
    on the full path grows linearly in ``n``; on the compressed path it
    must stay flat — that flatness ratio, together with the speedup at
    the largest ``n``, is what the ``label_model_fit`` bench row gates.

    Raises:
        AssertionError: If compressed-fit posteriors diverge from the
            full-matrix fit beyond 1e-9 at any size.
    """
    rng = np.random.default_rng(seed)
    pool = rng.choice(
        np.array([-1, 0, 0, 1]), size=(n_patterns, n_lfs)
    ).astype(np.int8)
    base = LabelModelConfig(
        n_steps=n_steps,
        batch_size=max(n_values) + 1,
        optimizer="sgd",
        learning_rate=0.0005,
        seed=seed,
    )

    rows = []
    for n in n_values:
        L = pool[rng.integers(0, n_patterns, size=n)]
        full = SamplingFreeLabelModel(LabelModelConfig(**vars(base)))
        start = time.perf_counter()
        full.fit(L)
        full_wall = time.perf_counter() - start

        # The one-time dedup is O(n log n) and unavoidable; what must be
        # flat in n is the *per-step* cost, so time the two separately.
        start = time.perf_counter()
        votes = compress_votes(L)
        compress_wall = time.perf_counter() - start
        compressed = SamplingFreeLabelModel(LabelModelConfig(**vars(base)))
        start = time.perf_counter()
        compressed.fit_compressed(votes)
        compressed_wall = time.perf_counter() - start

        diff = float(
            np.max(np.abs(full.predict_proba(L) - compressed.predict_proba(L)))
        )
        if diff > 1e-9:
            raise AssertionError(
                f"compressed fit diverged from full fit at n={n}: "
                f"max posterior diff {diff:.3e} > 1e-9"
            )
        rows.append(
            {
                "examples": n,
                "patterns": n_patterns,
                "lfs": n_lfs,
                "steps": n_steps,
                "full_step_ms": full_wall / n_steps * 1e3,
                "compressed_step_ms": compressed_wall / n_steps * 1e3,
                "compress_once_ms": compress_wall * 1e3,
                "speedup": full_wall / max(compressed_wall, 1e-12),
                "max_posterior_diff": diff,
            }
        )

    flatness = rows[-1]["compressed_step_ms"] / max(
        rows[0]["compressed_step_ms"], 1e-12
    )
    lines = [
        "Pattern-compressed label model fitting: full-batch refit latency "
        f"({n_patterns} patterns, {n_lfs} LFs, {n_steps} steps)",
        "",
        f"{'n':>8} {'full ms/step':>14} {'compressed ms/step':>20} "
        f"{'dedup once ms':>14} {'speedup':>9} {'max |dP|':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['examples']:>8,} {row['full_step_ms']:>14.3f} "
            f"{row['compressed_step_ms']:>20.3f} "
            f"{row['compress_once_ms']:>14.2f} {row['speedup']:>8.1f}x "
            f"{row['max_posterior_diff']:>10.1e}"
        )
    lines.append(
        f"per-step growth {min(n_values):,} -> {max(n_values):,} rows: "
        f"{rows[-1]['full_step_ms'] / max(rows[0]['full_step_ms'], 1e-12):.1f}x "
        f"full vs {flatness:.2f}x compressed (flat = compression wins)"
    )
    for row in rows:
        row["compressed_step_growth"] = flatness
    return ExperimentResult("label_model_fit", "\n".join(lines), rows)


def _clone_examples(examples) -> list[Example]:
    """Fresh Example objects so per-example token memos start cold."""
    return [
        Example(
            example_id=e.example_id,
            fields=dict(e.fields),
            servable=dict(e.servable),
            non_servable=dict(e.non_servable),
            label=e.label,
        )
        for e in examples
    ]


def run_batch_throughput(
    scale: str | None = None,
    seed: int = DEFAULT_SEED,
    n_examples: int = 20_000,
    rounds: int = 2,
    workers: int = 1,
) -> ExperimentResult:
    """Batched vs per-example in-memory labeling throughput.

    Runs the product application's LF suite over ``n_examples`` pool
    examples through both execution paths, asserts the label matrices
    are identical, and reports examples/second (best of ``rounds``, on
    freshly cloned examples each round so tokenization memos never
    carry over) plus the generative-model fit time.

    ``workers > 1`` additionally measures the process-pool parallel
    path (one warmed :class:`repro.parallel.ParallelLabelExecutor`
    reused across rounds), asserts its matrix is byte-identical to the
    serial batched run, and reports the parallel/serial speedup — the
    number the parallel bench gate enforces.
    """
    exp = get_content_experiment("product", scale, seed)
    pool = exp.dataset.unlabeled
    n = min(n_examples, len(pool))
    lfs = exp.lfs

    # Warm run-scoped state that is not what we measure: KG translation
    # closures, lazily built matchers, allocator pools.
    apply_lfs_in_memory(lfs, _clone_examples(pool[:256]), batched=True)
    apply_lfs_in_memory(lfs, _clone_examples(pool[:256]), batched=False)

    def best_rate(**kwargs) -> tuple[float, "np.ndarray"]:
        best = 0.0
        matrix = None
        for _ in range(max(1, rounds)):
            examples = _clone_examples(pool[:n])
            start = time.perf_counter()
            L = apply_lfs_in_memory(lfs, examples, **kwargs)
            wall = time.perf_counter() - start
            best = max(best, n / wall)
            matrix = L.matrix
        return best, matrix

    batched_eps, L_batched = best_rate(batched=True)
    per_example_eps, L_per = best_rate(batched=False)
    if not np.array_equal(L_batched, L_per):
        raise AssertionError(
            "batched and per-example labeling disagree; the batch engine "
            "must be vote-for-vote identical to the per-example path"
        )
    speedup = batched_eps / max(per_example_eps, 1e-9)

    parallel_eps = None
    parallel_speedup = None
    parallel_identical = None
    if workers > 1:
        from repro.experiments.harness import content_lf_suite_spec
        from repro.parallel import ParallelLabelExecutor

        spec = content_lf_suite_spec("product", scale, seed)
        with ParallelLabelExecutor(spec, workers) as executor:
            # Pool construction pre-warms every worker's suite; one
            # labeled block on top settles allocator/token-memo state
            # before timing.
            apply_lfs_in_memory(
                lfs, _clone_examples(pool[:256]), executor=executor
            )
            parallel_eps, L_parallel = best_rate(executor=executor)
        # Report the measured truth and let the bench gate enforce it —
        # a hardcoded True here would make that assertion tautological.
        parallel_identical = bool(np.array_equal(L_parallel, L_batched))
        parallel_speedup = parallel_eps / max(batched_eps, 1e-9)

    start = time.perf_counter()
    model = SamplingFreeLabelModel(LabelModelConfig(seed=seed))
    model.fit(L_batched)
    fit_seconds = time.perf_counter() - start

    lines = [
        "Batched LF execution engine: in-memory labeling throughput "
        f"({n:,} examples, {len(lfs)} LFs, best of {rounds})",
        "",
        f"{'batched path':<32} {batched_eps:>12,.0f} examples/s",
        f"{'per-example path':<32} {per_example_eps:>12,.0f} examples/s",
        f"{'speedup':<32} {speedup:>12.2f}x",
    ]
    if parallel_eps is not None:
        lines += [
            f"{'parallel path (%d workers)' % workers:<32} "
            f"{parallel_eps:>12,.0f} examples/s",
            f"{'parallel / serial batched':<32} "
            f"{parallel_speedup:>12.2f}x (votes byte-identical: "
            f"{parallel_identical}, {os.cpu_count()} CPUs visible)",
        ]
    lines.append(
        f"{'label model fit':<32} {fit_seconds:>11.2f}s "
        f"({L_batched.shape[0]:,} x {L_batched.shape[1]})"
    )
    row = {
        "examples": n,
        "lfs": len(lfs),
        "rounds": rounds,
        "batched_examples_per_second": batched_eps,
        "per_example_examples_per_second": per_example_eps,
        "speedup": speedup,
        "label_model_fit_seconds": fit_seconds,
    }
    if parallel_eps is not None:
        row.update(
            workers=workers,
            cpu_count=os.cpu_count(),
            parallel_examples_per_second=parallel_eps,
            parallel_speedup=parallel_speedup,
            parallel_votes_identical=parallel_identical,
        )
    return ExperimentResult("perf_batch_throughput", "\n".join(lines), [row])
