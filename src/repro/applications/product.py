"""Product classification: the Section 3.2 labeling-function suite.

Eight labeling functions matching the paper's inventory: "Keyword-based"
(products and accessories of interest, and accessories *not* of
interest), "Knowledge Graph-based" (translations of keywords in ten
languages), and "Model-based" (the coarse semantic topic model as a
negative signal). The category of interest is cycling, *expanded to
include accessories and parts* — the strategic change that invalidated
the team's previous labels.
"""

from __future__ import annotations

from repro.datasets import vocab
from repro.datasets.content import ContentWorld
from repro.features.extractors import HashedTextFeaturizer
from repro.lf.base import AbstractLabelingFunction
from repro.lf.registry import LFRegistry
from repro.lf.templates import (
    keyword_lf,
    kg_category_lf,
    kg_translation_lf,
    topic_model_lf,
)
from repro.types import NEGATIVE, POSITIVE

__all__ = ["build_product_lfs", "product_featurizer", "PRODUCT_VETO_CATEGORIES"]

#: Coarse categories that veto cycling-product content. Includes the
#: accessory-confuser home categories (automotive, technology): a
#: dashcam listing reads as automotive to the coarse model, and cycling
#: content essentially never does.
PRODUCT_VETO_CATEGORIES = [
    "finance", "food", "travel", "health", "politics", "science",
    "education", "realestate", "automotive", "technology", "fashion",
    "gaming", "outdoors",
]


def build_product_lfs(
    world: ContentWorld,
) -> tuple[list[AbstractLabelingFunction], LFRegistry]:
    """The eight product-classification labeling functions."""
    lfs: list[AbstractLabelingFunction] = []

    # -- keyword-based (servable): products/accessories of interest...
    lfs.append(
        keyword_lf(
            "keyword_bike_products",
            vocab.BIKE_PRODUCTS,
            POSITIVE,
            description="English cycling product terms",
        )
    )
    lfs.append(
        keyword_lf(
            "keyword_bike_accessories",
            vocab.BIKE_ACCESSORIES,
            POSITIVE,
            description="English cycling accessory/part terms "
            "(the newly in-scope category expansion)",
        )
    )
    # ... and accessories NOT of interest (Section 3.2: "other
    # accessories not of interest").
    lfs.append(
        keyword_lf(
            "keyword_other_accessories",
            vocab.CAR_ACCESSORIES + vocab.PHONE_ACCESSORIES,
            NEGATIVE,
            description="car/phone accessory terms => other category",
        )
    )
    lfs.append(
        keyword_lf(
            "title_commercial_cycling",
            vocab.BIKE_PRODUCTS + vocab.BIKE_ACCESSORIES,
            POSITIVE,
            fields=("title",),
            description="cycling term in a commercial title",
        )
    )

    # -- Knowledge-Graph-based (non-servable): translation closure over
    # ten languages, and brand->product expansion.
    lfs.append(
        kg_translation_lf(
            "kg_translations_10_languages",
            world.knowledge_graph,
            vocab.BIKE_PRODUCTS + vocab.BIKE_ACCESSORIES,
            vocab.LANGUAGES,
            POSITIVE,
            description="KG translations of category keywords "
            "(coverage across ten languages)",
        )
    )
    lfs.append(
        kg_category_lf(
            "kg_cycling_category",
            world.knowledge_graph,
            "cycling",
            POSITIVE,
            include_accessories=True,
            description="KG files a mentioned product under cycling "
            "(incl. accessories and parts)",
        )
    )

    # -- model-based (non-servable): coarse topic model as negative signal.
    lfs.append(
        topic_model_lf(
            "topic_model_unrelated",
            world.topic_model,
            PRODUCT_VETO_CATEGORIES,
            NEGATIVE,
            description="semantic category obviously unrelated to "
            "the product category of interest",
        )
    )
    lfs.append(
        keyword_lf(
            "keyword_unrelated_commerce",
            ["mortgage", "tuition", "vaccine", "earnings", "legislation",
             "itinerary", "curriculum", "horsepower", "couture", "gameplay",
             "telescope", "recipe", "summit"],
            NEGATIVE,
            description="commerce content about clearly unrelated verticals "
            "(one blunt signature term per vertical)",
        )
    )

    registry = LFRegistry("product_classification")
    for lf in lfs:
        registry.register(lf.info)
    return lfs, registry


def product_featurizer(num_buckets: int = 2 ** 13) -> HashedTextFeaturizer:
    """Servable features for the product deployment model.

    An order of magnitude fewer features than the topic task
    (Section 6.1), hence the smaller hash space.
    """
    return HashedTextFeaturizer(
        num_buckets=num_buckets,
        fields=("title", "body"),
        use_bigrams=False,
        include_url_domain=True,
        name="product_servable_text",
    )
