"""Real-time events: the Section 3.3 weak-source suite (n = 140).

"we used Snorkel DryBell to train models over the event-level features
using weak supervision sources (n=140) defined over the non-servable
features, spanning three broad categories": model-based (pre-existing
smaller models), graph-based (entity/destination relationship graphs —
"higher recall but generally lower-precision"), and other heuristics
(a large set of existing heuristic classifiers).

The 140 sources are generated programmatically the way a large
organization accretes them: families of threshold rules over the
aggregate statistics, the offline model scores, and the relationship
graph, with per-rule thresholds spread across a range so quality varies.
A handful are deliberately weak (volume-only rules) — the "previously
unknown low-quality sources" that the generative model's learned
accuracies expose (Section 3.3).

Every source reads only non-servable features; none can run in the
serving path. The deployment model is a DNN over the real-time servable
signals (:func:`event_featurizer`).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.events import (
    N_GRAPH_VIEWS,
    N_MODEL_VARIANTS,
    N_OFFLINE_MODELS,
    SERVABLE_SIGNALS,
    EventsWorld,
)
from repro.features.extractors import EventFeaturizer
from repro.lf.base import AbstractLabelingFunction
from repro.lf.registry import LFCategory, LFRegistry
from repro.lf.templates import pattern_lf
from repro.types import Example

__all__ = ["build_event_lfs", "event_featurizer", "N_EVENT_LFS"]

#: The paper's source count for this application.
N_EVENT_LFS = 140


def _stat(example: Example, name: str) -> float | None:
    value = example.non_servable.get(name)
    if value is None:
        return None
    value = float(value)
    return value if not np.isnan(value) else None


def _threshold_rule(
    stat: str, threshold: float, above: bool
) -> "callable[[Example], bool]":
    def predicate(example: Example) -> bool:
        value = _stat(example, stat)
        if value is None:
            return False
        return value >= threshold if above else value <= threshold

    return predicate


def _conjunction_rule(
    stat_a: str, thr_a: float, stat_b: str, thr_b: float
) -> "callable[[Example], bool]":
    def predicate(example: Example) -> bool:
        a = _stat(example, stat_a)
        b = _stat(example, stat_b)
        if a is None or b is None:
            return False
        return a >= thr_a and b >= thr_b

    return predicate


def build_event_lfs(
    world: EventsWorld,
    n_lfs: int = N_EVENT_LFS,
    seed: int = 7,
) -> tuple[list[AbstractLabelingFunction], LFRegistry]:
    """Generate the 140 weak sources over non-servable event features.

    Mix (for the Figure 2 census): 50 model-based, 30 graph-based,
    60 other heuristics (with ``n_lfs`` scaled proportionally if
    overridden).
    """
    rng = np.random.default_rng(seed)
    n_model = round(n_lfs * 50 / 140)
    n_graph = round(n_lfs * 30 / 140)
    n_heur = n_lfs - n_model - n_graph
    lfs: list[AbstractLabelingFunction] = []

    # ------------------------------------------------------------------
    # model-based: each rule thresholds its own model variant (distinct
    # artifacts accreted across teams, not copies of one score)
    # ------------------------------------------------------------------
    n_scores = N_OFFLINE_MODELS * N_MODEL_VARIANTS
    for i in range(n_model):
        score_index = i % n_scores
        stat = f"offline_model_{score_index}"
        if i % 5 == 4:
            # Confident-negative rules: very low offline score.
            threshold = float(rng.uniform(0.08, 0.2))
            lfs.append(
                pattern_lf(
                    f"model_{score_index:02d}_low_{i:03d}",
                    _threshold_rule(stat, threshold, above=False),
                    vote=-1,
                    category=LFCategory.MODEL_BASED,
                    servable=False,
                    description=f"offline model variant {score_index} score "
                    f"<= {threshold:.2f}",
                )
            )
        else:
            threshold = float(rng.uniform(0.72, 0.93))
            lfs.append(
                pattern_lf(
                    f"model_{score_index:02d}_high_{i:03d}",
                    _threshold_rule(stat, threshold, above=True),
                    vote=1,
                    category=LFCategory.MODEL_BASED,
                    servable=False,
                    description=f"offline model variant {score_index} score "
                    f">= {threshold:.2f}",
                )
            )

    # ------------------------------------------------------------------
    # graph-based: neighborhood bad-rate rules — higher recall, lower
    # precision (thresholds deliberately permissive, per Section 3.3)
    # ------------------------------------------------------------------
    for i in range(n_graph):
        signal = f"graph_view_{i % N_GRAPH_VIEWS}"
        threshold = float(rng.uniform(0.25, 0.55))
        lfs.append(
            pattern_lf(
                f"graph_{i % N_GRAPH_VIEWS:02d}_badrate_{i:03d}",
                _threshold_rule(signal, threshold, above=True),
                vote=1,
                category=LFCategory.GRAPH_BASED,
                servable=False,
                description=f"{signal} >= {threshold:.2f} "
                f"(relationship-graph signal)",
            )
        )

    # ------------------------------------------------------------------
    # other heuristics: rules over raw aggregates, including a weak tail
    # ------------------------------------------------------------------
    heuristic_specs = []
    for i in range(n_heur):
        kind = i % 6
        if kind == 0:
            thr = float(rng.uniform(0.45, 0.8))
            heuristic_specs.append(
                (f"heur_badrate_{i:03d}",
                 _threshold_rule("bad_rate_30d", thr, above=True), 1,
                 f"historical bad rate >= {thr:.2f}")
            )
        elif kind == 1:
            thr = float(rng.uniform(0.55, 0.85))
            heuristic_specs.append(
                (f"heur_burst_{i:03d}",
                 _threshold_rule("burst_score", thr, above=True), 1,
                 f"burst score >= {thr:.2f}")
            )
        elif kind == 2:
            thr = float(rng.uniform(20.0, 90.0))
            heuristic_specs.append(
                (f"heur_new_account_{i:03d}",
                 _conjunction_rule("burst_score", 0.3, "bad_rate_30d", 0.1)
                 if rng.random() < 0.3
                 else _threshold_rule("age_days", thr, above=False), 1,
                 f"account younger than {thr:.0f} days")
            )
        elif kind == 3:
            thr = float(rng.uniform(40.0, 120.0))
            heuristic_specs.append(
                (f"heur_many_targets_{i:03d}",
                 _threshold_rule("distinct_targets", thr, above=True), 1,
                 f"distinct targets >= {thr:.0f}")
            )
        elif kind == 4:
            # Trusted-source negative rules: old account, clean history.
            age_thr = float(rng.uniform(700.0, 1500.0))
            heuristic_specs.append(
                (f"heur_trusted_{i:03d}",
                 _conjunction_rule("age_days", age_thr, "volume_30d", 5.0), -1,
                 f"account older than {age_thr:.0f} days with volume")
            )
        else:
            # The deliberately weak tail: volume alone barely correlates
            # with badness (these are the low-quality sources the learned
            # accuracies should expose).
            thr = float(rng.uniform(100.0, 400.0))
            heuristic_specs.append(
                (f"heur_volume_only_{i:03d}",
                 _threshold_rule("volume_30d", thr, above=True), 1,
                 f"30-day volume >= {thr:.0f} (weak heuristic)")
            )

    for name, predicate, vote, description in heuristic_specs:
        lfs.append(
            pattern_lf(
                name,
                predicate,
                vote=vote,
                category=LFCategory.OTHER_HEURISTIC,
                servable=False,
                description=description,
            )
        )

    registry = LFRegistry("realtime_events")
    for lf in lfs:
        registry.register(lf.info)
    return lfs, registry


def event_featurizer() -> EventFeaturizer:
    """Servable real-time features for the events DNN (Section 6.4)."""
    return EventFeaturizer(
        signals=[*SERVABLE_SIGNALS, "platform_a"],
        name="event_realtime_signals",
    )
