"""Topic classification: the Section 3.1 labeling-function suite.

Ten labeling functions, matching Table 1's count and the source types the
paper lists ("URL-based", "NER tagger-based", "Topic model-based"), plus
the crawler- and internal-model-based signals Section 4 describes as
non-servable. Servability and category metadata drive the Figure 2 census
and the Table 3 ablation.

The servable LFs are deliberately the blunt ones (the pool is
keyword-filtered, so keyword matches are high-recall/low-precision); the
non-servable organizational resources carry the precision.
"""

from __future__ import annotations

from repro.datasets import vocab
from repro.datasets.content import ContentWorld
from repro.features.extractors import HashedTextFeaturizer
from repro.lf.base import AbstractLabelingFunction
from repro.lf.nlp import NLPLabelingFunction
from repro.lf.registry import LFCategory, LFInfo, LFRegistry
from repro.lf.templates import (
    crawler_lf,
    keyword_lf,
    model_score_lf,
    topic_model_lf,
    url_domain_lf,
)
from repro.services.nlp_server import NLPResult
from repro.types import ABSTAIN, NEGATIVE, POSITIVE, Example

__all__ = ["build_topic_lfs", "topic_featurizer", "TOPIC_VETO_CATEGORIES"]

#: Coarse topic-model categories that veto celebrity content. The topic
#: model cannot say "celebrity" (too coarse) but it can say "finance".
TOPIC_VETO_CATEGORIES = [
    "finance", "automotive", "technology", "sports", "travel", "food",
    "health", "politics", "science", "realestate", "education",
]


def build_topic_lfs(
    world: ContentWorld,
) -> tuple[list[AbstractLabelingFunction], LFRegistry]:
    """The ten topic-classification labeling functions."""
    lfs: list[AbstractLabelingFunction] = []

    # -- servable heuristics (pattern-based rules; the Table 3 ablation arm)
    lfs.append(
        url_domain_lf(
            "url_entertainment",
            vocab.ENTERTAINMENT_DOMAINS,
            POSITIVE,
            description="linked URL on an entertainment/gossip domain",
        )
    )
    lfs.append(
        url_domain_lf(
            "url_spam_blocklist",
            vocab.SPAM_DOMAINS,
            NEGATIVE,
            description="linked URL on the spam blocklist",
        )
    )
    lfs.append(
        keyword_lf(
            "keyword_celebrity",
            vocab.CELEB_KEYWORDS,
            POSITIVE,
            description="celebrity/gossip keywords in content "
            "(high recall, modest precision: the pool is keyword-"
            "filtered, so gossip terms leak into negatives too)",
        )
    )
    lfs.append(
        keyword_lf(
            "keyword_offtopic",
            vocab.OFFTOPIC_KEYWORDS,
            NEGATIVE,
            description="strongly off-topic keywords (finance, auto, ...)",
        )
    )
    lfs.append(
        keyword_lf(
            "title_celebrity_pattern",
            vocab.CELEB_KEYWORDS,
            POSITIVE,
            fields=("title",),
            description="celebrity keyword in the title",
        )
    )

    # -- NER-tagger-based (the paper's NLPLabelingFunction example)
    def get_text(x: Example) -> str:
        return f"{x.fields.get('title', '')} {x.fields.get('body', '')}"

    def no_person_negative(x: Example, nlp: NLPResult) -> int:
        if len(nlp.people) == 0:
            return NEGATIVE
        return ABSTAIN

    lfs.append(
        NLPLabelingFunction(
            LFInfo(
                name="nlp_no_person",
                category=LFCategory.MODEL_BASED,
                servable=False,
                description="NER finds no people => not celebrity content "
                "(the paper's worked example)",
                resources=("nlp-server",),
            ),
            get_text,
            no_person_negative,
            world.make_nlp_server,
        )
    )

    def person_density_positive(x: Example, nlp: NLPResult) -> int:
        if len(set(nlp.people)) >= 2:
            return POSITIVE
        return ABSTAIN

    lfs.append(
        NLPLabelingFunction(
            LFInfo(
                name="nlp_person_density",
                category=LFCategory.MODEL_BASED,
                servable=False,
                description="two or more distinct people tagged by NER",
                resources=("nlp-server",),
            ),
            get_text,
            person_density_positive,
            world.make_nlp_server,
        )
    )

    # -- topic-model-based negative heuristic (Section 3.1)
    lfs.append(
        topic_model_lf(
            "topic_model_negative",
            world.topic_model,
            TOPIC_VETO_CATEGORIES,
            NEGATIVE,
            description="coarse semantic category clearly unrelated",
        )
    )

    # -- crawler-based source heuristic (non-servable, high latency)
    lfs.append(
        crawler_lf(
            "crawler_entertainment_site",
            world.crawler,
            ["entertainment"],
            POSITIVE,
            min_quality=0.7,
            description="crawled site profile is a quality entertainment site",
        )
    )

    # -- existing internal model (expensive offline inference)
    lfs.append(
        model_score_lf(
            "related_model_high",
            field="related_model_score",
            threshold=0.75,
            vote=POSITIVE,
            description="existing related classifier scores high",
        )
    )

    registry = LFRegistry("topic_classification")
    for lf in lfs:
        registry.register(lf.info)
    return lfs, registry


def topic_featurizer(num_buckets: int = 2 ** 16) -> HashedTextFeaturizer:
    """Servable features for the topic deployment model.

    The topic task "has an order-of-magnitude more features than the
    product classification task" (Section 6.1) — reproduced via a 16-bit
    hash space here vs 12-bit for product.
    """
    return HashedTextFeaturizer(
        num_buckets=num_buckets,
        fields=("title", "body"),
        use_bigrams=True,
        include_url_domain=True,
        name="topic_servable_text",
    )
