"""The paper's three case-study applications (Section 3).

Each module wires a dataset world to a concrete labeling-function suite
with the paper's inventory:

* :mod:`repro.applications.topic` — topic classification, 10 LFs
  (URL-based, NER-tagger-based, topic-model-based, ...);
* :mod:`repro.applications.product` — product classification, 8 LFs
  (keyword-based, Knowledge-Graph-translation-based, topic-model-based);
* :mod:`repro.applications.events` — real-time events, 140 weak sources
  (model-based, graph-based, other heuristics).

Each module exposes ``build_lfs(...) -> (lfs, registry)`` plus the
featurizer used by its deployment model.
"""

from repro.applications.topic import build_topic_lfs, topic_featurizer
from repro.applications.product import build_product_lfs, product_featurizer
from repro.applications.events import build_event_lfs, event_featurizer

__all__ = [
    "build_topic_lfs",
    "topic_featurizer",
    "build_product_lfs",
    "product_featurizer",
    "build_event_lfs",
    "event_featurizer",
]
