"""Feature views and extractors.

Section 4's cross-feature serving hinges on keeping two feature views of
the same example rigorously separate: the *non-servable* view feeds
labeling functions at development time, the *servable* view feeds the
deployed discriminative model. :class:`FeatureView` names the views,
featurizers declare which one they read, and the serving layer refuses to
load a non-servable featurizer.
"""

from repro.features.spec import FeatureView, NonServableAccessError, FeaturizerSpec
from repro.features.extractors import (
    HashedTextFeaturizer,
    EventFeaturizer,
    DictVectorFeaturizer,
)

__all__ = [
    "FeatureView",
    "NonServableAccessError",
    "FeaturizerSpec",
    "HashedTextFeaturizer",
    "EventFeaturizer",
    "DictVectorFeaturizer",
]
