"""Feature-view declarations and the servability boundary.

"Organizational knowledge is often present in non-servable form factors,
i.e., too slow, expensive, or private to be used in production"
(Section 1). The discriminative model must therefore be trained over a
*servable* feature set. We enforce the boundary in code: every featurizer
carries a :class:`FeaturizerSpec`, and anything marked non-servable is
rejected by :class:`repro.serving.server.ProductionServer`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["FeatureView", "FeaturizerSpec", "NonServableAccessError"]


class FeatureView(enum.Enum):
    """Which side of the servability boundary a featurizer reads."""

    SERVABLE = "servable"
    NON_SERVABLE = "non_servable"
    RAW_CONTENT = "raw_content"
    """Raw content (title/body text) — available at serving time; the
    paper's TFX models may operate "on the 'raw' content" (Section 5.3)."""


@dataclass(frozen=True)
class FeaturizerSpec:
    """Identity and servability contract for a featurizer."""

    name: str
    view: FeatureView
    dimension: int
    latency_ms_per_example: float = 0.05

    @property
    def servable(self) -> bool:
        return self.view in (FeatureView.SERVABLE, FeatureView.RAW_CONTENT)


class NonServableAccessError(RuntimeError):
    """Raised when the serving path touches a non-servable resource."""
