"""Feature extractors for the discriminative models.

Two regimes from the paper:

* **content applications** (Sections 3.1/3.2): logistic regression "with
  servable features similar to those used in production" — reproduced as
  hashed token n-grams over the raw title/body plus cheap URL signals
  (:class:`HashedTextFeaturizer`);
* **real-time events** (Section 3.3): a DNN "over real-time event-level
  features" — reproduced as a dense vector of the event's servable
  signals (:class:`EventFeaturizer`).

Hashing uses a stable MD5-based bucket assignment so models serialize
and serve reproducibly across processes (Python's builtin ``hash`` is
salted per process and would silently break staged models).
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np
from scipy import sparse

from repro.features.spec import FeatureView, FeaturizerSpec, NonServableAccessError
from repro.services.nlp_server import tokenize
from repro.types import Example

__all__ = ["HashedTextFeaturizer", "EventFeaturizer", "DictVectorFeaturizer"]


def _bucket(token: str, num_buckets: int) -> int:
    digest = hashlib.md5(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_buckets


class HashedTextFeaturizer:
    """Hashed unigram+bigram bag-of-words over raw content fields.

    Produces L2-normalized sparse rows. The topic-classification task has
    "an order-of-magnitude more features than the product classification
    task" (Section 6.1); the per-application dimension is configured in
    :mod:`repro.applications` to preserve that ratio.
    """

    def __init__(
        self,
        num_buckets: int = 2 ** 18,
        fields: Sequence[str] = ("title", "body"),
        use_bigrams: bool = True,
        include_url_domain: bool = True,
        name: str = "hashed_text",
    ) -> None:
        self.num_buckets = num_buckets
        self.fields = tuple(fields)
        self.use_bigrams = use_bigrams
        self.include_url_domain = include_url_domain
        self.spec = FeaturizerSpec(
            name=name,
            view=FeatureView.RAW_CONTENT,
            dimension=num_buckets,
            latency_ms_per_example=0.2,
        )

    # ------------------------------------------------------------------
    def _tokens(self, example: Example) -> list[str]:
        tokens: list[str] = []
        for field in self.fields:
            tokens.extend(
                t.lower() for t in tokenize(str(example.fields.get(field, "")))
            )
        return tokens

    def transform_one(self, example: Example) -> dict[int, float]:
        """Sparse feature dict for one example."""
        tokens = self._tokens(example)
        counts: dict[int, float] = {}
        for token in tokens:
            key = _bucket("u:" + token, self.num_buckets)
            counts[key] = counts.get(key, 0.0) + 1.0
        if self.use_bigrams:
            for first, second in zip(tokens, tokens[1:]):
                key = _bucket(f"b:{first}_{second}", self.num_buckets)
                counts[key] = counts.get(key, 0.0) + 1.0
        if self.include_url_domain:
            url = str(example.fields.get("url", ""))
            if url:
                from repro.services.web_crawler import domain_of

                key = _bucket("d:" + domain_of(url), self.num_buckets)
                counts[key] = counts.get(key, 0.0) + 2.0
        norm = float(np.sqrt(sum(v * v for v in counts.values())))
        if norm > 0:
            counts = {k: v / norm for k, v in counts.items()}
        return counts

    def transform(self, examples: Sequence[Example]) -> sparse.csr_matrix:
        """CSR matrix of shape (n_examples, num_buckets)."""
        indptr = [0]
        indices: list[int] = []
        data: list[float] = []
        for example in examples:
            row = self.transform_one(example)
            for key in sorted(row):
                indices.append(key)
                data.append(row[key])
            indptr.append(len(indices))
        return sparse.csr_matrix(
            (np.array(data), np.array(indices, dtype=np.int64), np.array(indptr)),
            shape=(len(examples), self.num_buckets),
        )


class EventFeaturizer:
    """Dense real-time event-level features (the servable view).

    Reads ``example.servable[signal]`` for a fixed signal list; refuses to
    read anything from the non-servable view by construction.
    """

    def __init__(self, signals: Sequence[str], name: str = "event_signals") -> None:
        if not signals:
            raise ValueError("event featurizer needs at least one signal")
        self.signals = tuple(signals)
        self.spec = FeaturizerSpec(
            name=name,
            view=FeatureView.SERVABLE,
            dimension=len(self.signals),
            latency_ms_per_example=0.02,
        )

    def transform(self, examples: Sequence[Example]) -> np.ndarray:
        out = np.zeros((len(examples), len(self.signals)))
        for i, example in enumerate(examples):
            for j, signal in enumerate(self.signals):
                out[i, j] = float(example.servable.get(signal, 0.0))
        return out

    def transform_one(self, example: Example) -> np.ndarray:
        return self.transform([example])[0]


class DictVectorFeaturizer:
    """Dense features from an explicit field list on a chosen view.

    The *non-servable* configuration exists so experiments can quantify
    the offline/online gap; attempting to use it at serving time raises
    :class:`NonServableAccessError` (enforced by the production server).
    """

    def __init__(
        self,
        fields: Sequence[str],
        view: FeatureView = FeatureView.SERVABLE,
        name: str = "dict_vector",
    ) -> None:
        self.fields = tuple(fields)
        self.view = view
        self.spec = FeaturizerSpec(
            name=name,
            view=view,
            dimension=len(self.fields),
            latency_ms_per_example=5.0
            if view is FeatureView.NON_SERVABLE
            else 0.02,
        )

    def transform(self, examples: Sequence[Example]) -> np.ndarray:
        out = np.zeros((len(examples), len(self.fields)))
        for i, example in enumerate(examples):
            if self.view is FeatureView.SERVABLE:
                source = example.servable
            elif self.view is FeatureView.NON_SERVABLE:
                source = example.non_servable
            else:
                raise NonServableAccessError(
                    "DictVectorFeaturizer only supports servable/non-servable views"
                )
            for j, field in enumerate(self.fields):
                out[i, j] = float(source.get(field, 0.0))
        return out

    def transform_one(self, example: Example) -> np.ndarray:
        return self.transform([example])[0]
