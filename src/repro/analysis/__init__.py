"""AST-based invariant checkers for the repro codebase.

The runtime test suite proves behavior on the inputs it runs; the rules
in this package prove *structural* invariants over every file that
parses — properties that are cheap to state, expensive to regress, and
invisible to example-based tests:

``determinism``
    Modules on the byte-identity surface (kernels, the LF applier, DFS,
    sinks, checkpoints, serving) must not reach for wall clocks,
    unseeded randomness, or bare-set iteration orders.
``contract-closure``
    Every namespaced counter/gauge/histogram key emitted anywhere in
    ``src/`` appears in a pinned contract tuple, and every contracted
    key is still emitted — both directions, statically.
``lock-discipline``
    In thread-starting classes, attributes mutated from both the thread
    target and public methods are only touched under ``self._lock``.
``lock-order`` / ``blocking-under-lock``
    The static half of the concurrency sanitizer: the per-class/module
    acquires-while-holding graph is cycle-free, and nothing blocking
    (joins, foreign waits, ``time.sleep``, DFS writes) runs under a
    held lock. The runtime half lives in :mod:`repro.sanitizer`.
``resource-safety``
    Record writers, DFS read handles, pools, and threads are released
    on all paths or explicitly change owners.
``unused-import`` / ``docstring`` / ``syntax`` / ``suppression``
    The long-standing lint gates, ported onto the same framework.

Entry point is :func:`repro.analysis.run_analysis` (used by
``scripts/lint.py``); intentional violations carry inline
``# repro: allow[rule-id] reason`` suppressions, and pre-existing
findings can be grandfathered in ``scripts/analysis_baseline.json``.
"""

from __future__ import annotations

from repro.analysis.contracts import ContractClosureRule
from repro.analysis.determinism import DeterminismRule
from repro.analysis.docstrings import DOCSTRING_ENFORCED, DocstringRule
from repro.analysis.framework import (
    BASELINE_PATH,
    DEFAULT_TARGETS,
    AnalysisReport,
    Finding,
    ParsedModule,
    Rule,
    SuppressionIndex,
    collect_modules,
    format_human,
    format_json,
    load_baseline,
    run_analysis,
)
from repro.analysis.imports import UnusedImportRule
from repro.analysis.lockorder import BlockingUnderLockRule, LockOrderRule
from repro.analysis.locks import LockDisciplineRule
from repro.analysis.resources import ResourceSafetyRule

__all__ = [
    "AnalysisReport",
    "BASELINE_PATH",
    "BlockingUnderLockRule",
    "ContractClosureRule",
    "DEFAULT_TARGETS",
    "DOCSTRING_ENFORCED",
    "DeterminismRule",
    "DocstringRule",
    "Finding",
    "LockDisciplineRule",
    "LockOrderRule",
    "ParsedModule",
    "ResourceSafetyRule",
    "Rule",
    "SuppressionIndex",
    "UnusedImportRule",
    "collect_modules",
    "default_rules",
    "format_human",
    "format_json",
    "load_baseline",
    "run_analysis",
]


def default_rules() -> list[Rule]:
    """The full checker suite in rule-id order, freshly instantiated."""
    rules = [
        BlockingUnderLockRule(),
        ContractClosureRule(),
        DeterminismRule(),
        DocstringRule(),
        LockDisciplineRule(),
        LockOrderRule(),
        ResourceSafetyRule(),
        UnusedImportRule(),
    ]
    return sorted(rules, key=lambda rule: rule.id)
