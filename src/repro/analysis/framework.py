"""Core machinery of the invariant-checker suite.

Everything rule-agnostic lives here: the :class:`Finding` record, the
``# repro: allow[rule] reason`` suppression grammar, the committed
baseline of grandfathered findings, the :class:`Rule` registry, and the
:func:`run_analysis` driver that parses the repo once and fans the
parsed modules out to every rule. Individual checkers (determinism,
contract closure, lock discipline, resource safety, unused imports,
docstrings) subclass :class:`Rule` in their own modules and register
through :func:`default_rules`.

Design constraints the framework enforces uniformly:

* every finding carries an exact ``path:line`` anchor, so editors and
  CI annotations can jump to it;
* a suppression comment **must** carry a non-empty reason — an empty
  one is itself a finding (rule id ``suppression``);
* suppressions are per-rule and lexically scoped to the flagged line or
  the line directly above it, never file- or block-wide;
* the baseline (``scripts/analysis_baseline.json``) matches findings by
  ``(rule, path, message)`` — deliberately line-free, so unrelated
  edits shifting line numbers cannot resurrect a grandfathered finding.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "Suppression",
    "SuppressionIndex",
    "ParsedModule",
    "Rule",
    "AnalysisReport",
    "collect_modules",
    "run_analysis",
    "load_baseline",
    "format_human",
    "format_json",
    "DEFAULT_TARGETS",
    "BASELINE_PATH",
]

#: Trees the broad hygiene rules (unused imports, syntax) sweep; the
#: project-invariant checkers narrow this to ``("src",)`` themselves.
DEFAULT_TARGETS = ("src", "tests", "benchmarks", "examples", "scripts")

#: Repo-relative path of the committed grandfathered-findings baseline.
BASELINE_PATH = "scripts/analysis_baseline.json"

#: Suppression grammar: ``# repro: allow[rule-id] reason text``. The
#: reason is everything after the closing bracket; the ``suppression``
#: meta-rule rejects empty reasons.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([a-z0-9_-]+)\]\s*(.*?)\s*$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to an exact source location."""

    path: str
    """Repo-relative posix path of the offending file."""
    line: int
    """1-based line number of the violation."""
    rule: str
    """Id of the rule that produced the finding."""
    message: str
    """Human-readable statement of what is wrong and why it matters."""

    def format(self) -> str:
        """The one-line human rendering: ``path:line: [rule] message``."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict:
        """JSON-ready dict (the ``--json`` artifact's row format)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }

    def baseline_key(self) -> tuple[str, str, str]:
        """Line-free identity used to match committed baseline entries."""
        return (self.rule, self.path, self.message)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[rule] reason`` comment."""

    rule: str
    """Rule id the comment suppresses."""
    line: int
    """1-based line the comment sits on."""
    reason: str
    """Written justification (the framework rejects empty ones)."""


class SuppressionIndex:
    """Per-file lookup of suppression comments.

    A suppression covers findings of its rule on the comment's own line
    and on the line directly below it (the comment-above idiom), and
    nothing else — suppressions never blanket a whole file.
    """

    def __init__(self, source: str) -> None:
        """Parse every suppression comment out of ``source``."""
        self.suppressions: list[Suppression] = []
        self._by_rule_line: set[tuple[str, int]] = set()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                self.suppressions.append(
                    Suppression(match.group(1), lineno, match.group(2))
                )
                self._by_rule_line.add((match.group(1), lineno))

    def covers(self, rule: str, line: int) -> bool:
        """Whether a suppression for ``rule`` covers ``line``."""
        return (rule, line) in self._by_rule_line or (
            rule,
            line - 1,
        ) in self._by_rule_line

    def empty_reasons(self) -> list[Suppression]:
        """Suppressions whose justification text is missing."""
        return [s for s in self.suppressions if not s.reason]


class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    def __init__(self, repo: Path, path: Path) -> None:
        """Read and parse ``path``; a syntax error leaves ``tree`` None.

        Args:
            repo: Repository root (anchors the relative path).
            path: Absolute path of the ``.py`` file.
        """
        self.path = path
        self.relpath = path.relative_to(repo).as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.suppressions = SuppressionIndex(self.source)
        self.tree: ast.Module | None = None
        self.syntax_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(self.source, filename=str(path))
        except SyntaxError as error:
            self.syntax_error = error

    def finding(self, rule: str, line: int, message: str) -> Finding:
        """Convenience constructor anchored to this module."""
        return Finding(self.relpath, line, rule, message)


class Rule:
    """Base class every checker implements.

    Subclasses set :attr:`id`, :attr:`description`, and (optionally)
    :attr:`targets`, then override either :meth:`check_module` (local
    rules) or :meth:`check_repo` (rules needing the whole module set,
    like contract closure).
    """

    id: str = ""
    description: str = ""
    #: Repo-relative trees this rule wants parsed.
    targets: tuple[str, ...] = ("src",)

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        """Findings local to one module (default: none)."""
        return ()

    def check_repo(
        self, modules: Sequence[ParsedModule]
    ) -> Iterable[Finding]:
        """Findings across the module set; defaults to the per-module sweep."""
        for module in modules:
            if module.tree is not None:
                yield from self.check_module(module)


class _SyntaxRule(Rule):
    """Parse failures — every other rule needs a tree, so this gates."""

    id = "syntax"
    description = "every target file must parse (rules need an AST)"
    targets = DEFAULT_TARGETS

    def check_repo(self, modules: Sequence[ParsedModule]) -> Iterator[Finding]:
        """One finding per unparseable file."""
        for module in modules:
            if module.syntax_error is not None:
                error = module.syntax_error
                yield module.finding(
                    self.id,
                    error.lineno or 1,
                    f"syntax error: {error.msg}",
                )


class _SuppressionRule(Rule):
    """The suppression grammar itself: reasons are mandatory."""

    id = "suppression"
    description = (
        "# repro: allow[rule] comments must carry a non-empty reason"
    )
    targets = DEFAULT_TARGETS

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        """Flag every suppression comment with an empty reason."""
        for suppression in module.suppressions.empty_reasons():
            yield module.finding(
                self.id,
                suppression.line,
                f"suppression of [{suppression.rule}] has no reason; "
                "write the justification after the bracket",
            )


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    """Unsuppressed, non-baseline findings — the gating set."""
    suppressed: list[Finding] = field(default_factory=list)
    """Findings silenced by an in-source suppression comment."""
    grandfathered: list[Finding] = field(default_factory=list)
    """Findings silenced by the committed baseline."""
    rules: list[Rule] = field(default_factory=list)
    """Rules that ran (in execution order)."""
    files_checked: int = 0
    """Distinct files parsed for this run."""

    @property
    def ok(self) -> bool:
        """True when nothing gating was found."""
        return not self.findings


def _meta_rules() -> list[Rule]:
    return [_SyntaxRule(), _SuppressionRule()]


def builtin_rules() -> list[Rule]:
    """The framework's own meta-rules (syntax, suppression grammar)."""
    return _meta_rules()


def collect_modules(
    repo: Path, targets: Iterable[str]
) -> dict[str, ParsedModule]:
    """Parse every ``.py`` file under ``targets``, keyed by relpath."""
    modules: dict[str, ParsedModule] = {}
    for target in targets:
        root = repo / target
        if root.is_file() and root.suffix == ".py":
            module = ParsedModule(repo, root)
            modules[module.relpath] = module
        elif root.is_dir():
            for path in sorted(root.rglob("*.py")):
                module = ParsedModule(repo, path)
                modules[module.relpath] = module
    return modules


def load_baseline(repo: Path) -> set[tuple[str, str, str]]:
    """The committed grandfathered-finding keys (empty set when absent)."""
    path = repo / BASELINE_PATH
    if not path.exists():
        return set()
    entries = json.loads(path.read_text(encoding="utf-8"))
    return {
        (entry["rule"], entry["path"], entry["message"]) for entry in entries
    }


def run_analysis(
    repo: Path,
    rules: Sequence[Rule],
    rule_ids: Sequence[str] | None = None,
) -> AnalysisReport:
    """Run ``rules`` (optionally filtered to ``rule_ids``) over ``repo``.

    Parses each target tree once, hands every rule the modules matching
    its own ``targets``, then routes raw findings through suppression
    comments and the baseline.

    Args:
        repo: Repository root.
        rules: Rule instances to run (meta-rules are always included).
        rule_ids: When given, only rules with these ids run (the meta
            ``syntax``/``suppression`` rules still run — a rule filter
            must not hide broken files or broken suppressions).

    Returns:
        The :class:`AnalysisReport`, findings sorted by location.

    Raises:
        ValueError: If ``rule_ids`` names an unknown rule.
    """
    selected = list(_meta_rules())
    known = {rule.id for rule in rules} | {rule.id for rule in selected}
    if rule_ids:
        unknown = set(rule_ids) - known
        if unknown:
            raise ValueError(
                f"unknown rule ids: {sorted(unknown)}; known: {sorted(known)}"
            )
    for rule in rules:
        if rule.id in {r.id for r in selected}:
            continue
        if rule_ids is None or rule.id in rule_ids:
            selected.append(rule)

    all_targets: list[str] = []
    for rule in selected:
        for target in rule.targets:
            if target not in all_targets:
                all_targets.append(target)
    modules = collect_modules(repo, all_targets)

    baseline = load_baseline(repo)
    report = AnalysisReport(rules=selected, files_checked=len(modules))

    def module_set(rule: Rule) -> list[ParsedModule]:
        selected_modules = []
        for module in modules.values():
            for target in rule.targets:
                prefix = target if target.endswith(".py") else target + "/"
                if module.relpath == target or module.relpath.startswith(
                    prefix
                ):
                    selected_modules.append(module)
                    break
        return selected_modules

    for rule in selected:
        for finding in rule.check_repo(module_set(rule)):
            owner = modules.get(finding.path)
            if owner is not None and owner.suppressions.covers(
                finding.rule, finding.line
            ):
                report.suppressed.append(finding)
            elif finding.baseline_key() in baseline:
                report.grandfathered.append(finding)
            else:
                report.findings.append(finding)

    report.findings.sort()
    report.suppressed.sort()
    report.grandfathered.sort()
    return report


def format_human(report: AnalysisReport) -> str:
    """Multi-line human rendering: findings first, then the tally."""
    lines = [finding.format() for finding in report.findings]
    lines.append(
        f"[analysis] {len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.grandfathered)} baselined, "
        f"{report.files_checked} file(s), "
        f"{len(report.rules)} rule(s)"
    )
    return "\n".join(lines)


def format_json(report: AnalysisReport) -> str:
    """Deterministic JSON rendering (the CI artifact payload)."""
    payload = {
        "ok": report.ok,
        "files_checked": report.files_checked,
        "rules": [
            {"id": rule.id, "description": rule.description}
            for rule in report.rules
        ],
        "findings": [finding.as_dict() for finding in report.findings],
        "suppressed": [finding.as_dict() for finding in report.suppressed],
        "grandfathered": [
            finding.as_dict() for finding in report.grandfathered
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
