"""Unused-import checker (the offline stand-in for Pyflakes F401).

Historic bug this module fixes: the old ``scripts/lint.py`` sweep
treated **any** string constant in a module as a potential re-export,
so a docstring that merely mentioned an imported name masked the unused
import entirely. The exemption is now restricted to strings inside an
``__all__`` assignment (including ``__all__ +=`` extensions), which is
the only construct that actually re-exports by name.

Quoted forward-reference annotations (``x: "LabelServer"``) are still
honored: annotation strings are parsed and the names inside them count
as uses, so the stricter rule does not flag imports used only in type
positions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import (
    DEFAULT_TARGETS,
    Finding,
    ParsedModule,
    Rule,
)

__all__ = ["UnusedImportRule", "module_import_findings"]


def _imported_names(tree: ast.Module) -> dict[str, int]:
    """Module-level imported bindings: ``name -> lineno``."""
    imported: dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = (alias.asname or alias.name).split(".")[0]
                imported[name] = node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imported[alias.asname or alias.name] = node.lineno
    return imported


def _all_exports(tree: ast.Module) -> set[str]:
    """String constants inside ``__all__`` assignments only."""
    names: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in targets
        ):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                names.add(sub.value)
    return names


def _annotation_names(tree: ast.Module) -> set[str]:
    """Names referenced inside *string* (forward-ref) annotations."""
    names: set[str] = set()
    annotations: list[ast.expr] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            annotations.append(node.annotation)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.returns is not None:
                annotations.append(node.returns)
            for arg in (
                node.args.args
                + node.args.posonlyargs
                + node.args.kwonlyargs
                + [node.args.vararg, node.args.kwarg]
            ):
                if arg is not None and arg.annotation is not None:
                    annotations.append(arg.annotation)
    for annotation in annotations:
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                try:
                    parsed = ast.parse(sub.value, mode="eval")
                except SyntaxError:
                    continue
                for name in ast.walk(parsed):
                    if isinstance(name, ast.Name):
                        names.add(name.id)
    return names


def _used_names(tree: ast.Module) -> set[str]:
    """Every Name referenced anywhere (attribute chains count the root)."""
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            root: ast.expr = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
    return used


def module_import_findings(tree: ast.Module) -> list[tuple[int, str]]:
    """``(lineno, name)`` for each unused module-level import."""
    imported = _imported_names(tree)
    if not imported:
        return []
    used = _used_names(tree) | _all_exports(tree) | _annotation_names(tree)
    return [
        (lineno, name)
        for name, lineno in sorted(imported.items(), key=lambda kv: kv[1])
        if name not in used
    ]


class UnusedImportRule(Rule):
    """Module-level imports must be referenced, re-exported, or removed."""

    id = "unused-import"
    description = (
        "imports must be used, listed in __all__, or referenced by a "
        "forward-ref annotation"
    )
    targets = DEFAULT_TARGETS

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        """Flag each unused module-level import in one file."""
        if module.tree is None:
            return
        for lineno, name in module_import_findings(module.tree):
            yield module.finding(
                self.id,
                lineno,
                f"import {name!r} is never used in this module",
            )
