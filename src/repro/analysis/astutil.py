"""Small AST helpers shared by the invariant checkers.

The checkers reason about *qualified call names* (``time.perf_counter``,
``numpy.random.rand``) rather than surface spellings, so an aliased
import (``import numpy as np``, ``from time import perf_counter``)
cannot dodge a rule. These helpers build the per-module alias map and
resolve call expressions through it.
"""

from __future__ import annotations

import ast

__all__ = ["import_aliases", "dotted_name", "resolve_call"]


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map each locally bound import name to its fully qualified origin.

    ``import numpy as np`` yields ``{"np": "numpy"}``;
    ``from time import perf_counter as pc`` yields
    ``{"pc": "time.perf_counter"}``. Star imports contribute nothing.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return aliases


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """The fully qualified name a call resolves to, via the alias map.

    ``np.random.rand(...)`` with ``{"np": "numpy"}`` resolves to
    ``numpy.random.rand``; a call through a non-name expression (e.g.
    a subscript or another call's result) resolves to ``None``.
    """
    name = dotted_name(node.func)
    if name is None:
        return None
    root, _, rest = name.partition(".")
    origin = aliases.get(root, root)
    return f"{origin}.{rest}" if rest else origin
