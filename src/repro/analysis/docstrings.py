"""Public-docstring checker for the documented API surfaces.

``docs/ARCHITECTURE.md`` and ``docs/OPERATIONS.md`` link into the
packages listed in :data:`DOCSTRING_ENFORCED`; an undocumented export
there is a documentation regression, not a style nit. The rule requires
a docstring on every public module, class, function, and method in
those trees (underscore-prefixed names and dunder methods other than
the module itself are exempt — the class docstring covers
construction).

This rule previously lived inline in ``scripts/lint.py``; it now rides
the shared framework so suppressions, JSON output, and the rule-table
documentation cover it like every other checker.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, ParsedModule, Rule

__all__ = [
    "DocstringRule",
    "DOCSTRING_ENFORCED",
    "missing_public_docstrings",
]

#: Paths (files or package directories, repo-relative) whose public API
#: must be fully docstringed — the surfaces docs/ links into, including
#: this analysis package itself (it polices the bar, so it meets it).
DOCSTRING_ENFORCED = (
    "src/repro/streaming",
    "src/repro/parallel",
    "src/repro/serving",
    "src/repro/obs",
    "src/repro/analysis",
    "src/repro/sanitizer",
    "src/repro/core/online_label_model.py",
    "src/repro/core/drift.py",
)


def missing_public_docstrings(tree: ast.Module) -> list[tuple[int, str]]:
    """Public defs without a docstring: ``(lineno, qualified name)``.

    Public means not underscore-prefixed; dunder methods are exempt
    (the class docstring covers construction). The module itself must
    also carry a docstring.
    """
    findings: list[tuple[int, str]] = []
    if not ast.get_docstring(tree):
        findings.append((1, "<module>"))

    def is_public(name: str) -> bool:
        return not name.startswith("_")

    def check_def(node, prefix: str) -> None:
        name = f"{prefix}{node.name}"
        if not ast.get_docstring(node):
            findings.append((node.lineno, name))
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ) and is_public(child.name):
                    check_def(child, f"{name}.")

    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ) and is_public(node.name):
            check_def(node, "")
    return findings


class DocstringRule(Rule):
    """Documented packages must docstring their whole public API."""

    id = "docstring"
    description = (
        "public modules/classes/functions in the documented packages "
        "must carry docstrings"
    )
    targets = ("src",)

    def __init__(self, enforced: tuple[str, ...] = DOCSTRING_ENFORCED) -> None:
        """Optionally substitute the enforced path list (tests do)."""
        self.enforced = enforced

    def _enforced(self, relpath: str) -> bool:
        return any(
            relpath == entry or relpath.startswith(entry.rstrip("/") + "/")
            for entry in self.enforced
        )

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        """Flag every missing public docstring in one enforced file."""
        if module.tree is None or not self._enforced(module.relpath):
            return
        for lineno, name in missing_public_docstrings(module.tree):
            yield module.finding(
                self.id,
                lineno,
                f"missing public docstring for {name!r}",
            )
