"""Static lock-order and blocking-under-lock checkers.

The runtime sanitizer (``repro.sanitizer``) observes the lock orders a
particular test run happens to exercise; the two rules here prove the
same properties lexically, over every path in the source:

``lock-order``
    Builds an "acquires B while holding A" graph per *lock scope* — a
    class (locks are ``self.X`` attributes) or a module (locks are
    module-level names) — from ``with`` nesting, bare ``.acquire()``
    calls, and the self-call graph (a method called under a lock
    contributes every lock it transitively acquires). Any cycle in the
    graph means two threads can take the same locks in opposite orders
    and deadlock; the finding lists every edge of the cycle with its
    acquisition site.
``blocking-under-lock``
    Flags calls that can block indefinitely (or do I/O) while a lock is
    lexically held: ``join``/``acquire``/``wait`` on foreign objects,
    ``time.sleep``, and DFS writes (``write_records``, ``write_file``,
    ``finalize_as``). Waiting on the lock you hold is the Condition
    idiom and is exempt, as is a non-blocking ``acquire(blocking=
    False)``; a held lock turns every other blocking call into a
    latency cliff for all contending threads — and a deadlock when the
    thing waited on needs that lock to make progress.

Both analyses are lexical: the held set is the stack of enclosing
``with`` guards, nested ``def``/``lambda`` bodies run with an *empty*
held set (they usually execute later, on another thread), and thread
target closures are promoted to scope members exactly the way
``locks.py`` promotes them. Intentional exceptions carry
``# repro: allow[lock-order]`` / ``# repro: allow[blocking-under-lock]``
suppressions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.astutil import dotted_name, import_aliases, resolve_call
from repro.analysis.framework import Finding, ParsedModule, Rule

__all__ = ["BlockingUnderLockRule", "LockOrderRule"]

#: Constructors whose instances act as ``with``-able guards for the
#: purposes of the acquisition-order graph.
GUARD_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Attribute calls that block the calling thread until another thread
#: acts (thread join, lock/semaphore acquire, condition/event wait).
BLOCKING_ATTRS = frozenset({"acquire", "join", "wait"})

#: DFS write entry points: durable I/O that should never sit under a
#: lock shared with a latency-sensitive path.
DFS_WRITE_CALLS = frozenset({"write_records", "write_file", "finalize_as"})


@dataclass
class _Event:
    """One lock acquisition event inside a function body."""

    lock: str
    line: int
    held: tuple[str, ...]


@dataclass
class _CallSite:
    """One intra-scope call (``self.m()`` / local ``f()``) with context."""

    callee: str
    line: int
    held: tuple[str, ...]


@dataclass
class _Blocking:
    """One potentially blocking call made while locks were held."""

    line: int
    what: str
    held: tuple[str, ...]


@dataclass
class _FnFacts:
    """Everything the scope-level analyses need from one function."""

    name: str
    events: list[_Event] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)
    blocking: list[_Blocking] = field(default_factory=list)
    thread_targets: set[str] = field(default_factory=set)


@dataclass
class _Scope:
    """One lock namespace: a class (``self.X``) or the module itself."""

    label: str
    functions: dict[str, list[ast.stmt]]
    guards: set[str]
    is_class: bool


def _guard_ctor_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """The guard constructor a value expression calls, if any."""
    if not isinstance(node, ast.Call):
        return None
    qualified = resolve_call(node, aliases)
    if qualified is None:
        return None
    ctor = qualified.rsplit(".", 1)[-1]
    return ctor if ctor in GUARD_CONSTRUCTORS else None


def _class_guards(cls: ast.ClassDef, aliases: dict[str, str]) -> set[str]:
    """``self.X`` attributes assigned a guard constructor in any method."""
    guards: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if _guard_ctor_name(node.value, aliases) is None:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                guards.add(target.attr)
    return guards


def _module_guards(tree: ast.Module, aliases: dict[str, str]) -> set[str]:
    """Module-level names assigned a guard constructor."""
    guards: set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if _guard_ctor_name(node.value, aliases) is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                guards.add(target.id)
    return guards


def _build_scopes(module: ParsedModule) -> list[_Scope]:
    """The lock scopes of one module: ``<module>`` plus every class."""
    tree = module.tree
    assert tree is not None
    aliases = import_aliases(tree)
    scopes = [
        _Scope(
            label="<module>",
            functions={
                node.name: list(node.body)
                for node in tree.body
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            },
            guards=_module_guards(tree, aliases),
            is_class=False,
        )
    ]
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            scopes.append(
                _Scope(
                    label=node.name,
                    functions={
                        item.name: list(item.body)
                        for item in node.body
                        if isinstance(
                            item, (ast.FunctionDef, ast.AsyncFunctionDef)
                        )
                    },
                    guards=_class_guards(node, aliases),
                    is_class=True,
                )
            )
    return scopes


class _HeldScanner(ast.NodeVisitor):
    """Walk one function body tracking the lexical held-guard stack.

    Collects acquisition events (``with`` guards and bare ``.acquire()``
    calls), intra-scope calls, blocking calls made under a lock, and
    ``Thread(target=...)`` closure names (for the same pseudo-method
    promotion ``locks.py`` performs). Nested function and lambda bodies
    are scanned with an *empty* held stack: they typically execute
    later, on a different thread, so the enclosing guards say nothing
    about the locks held when they run.
    """

    def __init__(
        self,
        scope: _Scope,
        aliases: dict[str, str],
        skip_functions: set[str],
    ) -> None:
        self.scope = scope
        self.aliases = aliases
        self.skip_functions = skip_functions
        self.facts = _FnFacts(name="")
        self._stack: list[str] = []

    # -- guard resolution ----------------------------------------------
    def _guard_id(self, expr: ast.expr) -> str | None:
        """The scope-local guard id an expression names, if any."""
        if self.scope.is_class:
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                attr = expr.attr
                if attr in self.scope.guards or "lock" in attr:
                    return attr
            return None
        if isinstance(expr, ast.Name) and expr.id in self.scope.guards:
            return expr.id
        return None

    def _held_for_blocking(self, expr: ast.expr) -> bool:
        """Looser guard test for the blocking rule's held check only."""
        if self._guard_id(expr) is not None:
            return True
        name = dotted_name(expr)
        return name is not None and "lock" in name.rsplit(".", 1)[-1]

    # -- with nesting ---------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        """Push each guard item for the duration of the block body."""
        pushed = 0
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
            guard = self._guard_id(item.context_expr)
            if guard is None and self._held_for_blocking(item.context_expr):
                guard = self._blocking_only_id(item.context_expr)
            if guard is not None:
                self.facts.events.append(
                    _Event(guard, node.lineno, tuple(self._stack))
                )
                self._stack.append(guard)
                pushed += 1
        for statement in node.body:
            self.visit(statement)
        for _ in range(pushed):
            self._stack.pop()

    visit_AsyncWith = visit_With

    def _blocking_only_id(self, expr: ast.expr) -> str | None:
        """A stack id for lock-named guards outside the scope namespace.

        ``with issued_lock:`` on a function-local lock still means code
        below runs under *a* lock; prefix the id so it can never alias
        a scope guard in the order graph (events on these ids are
        dropped from the graph — identity across functions is unknown).
        """
        name = dotted_name(expr)
        if name is None:
            return None
        return f"?{name}"

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        """Record acquire events, scope calls, and blocking calls."""
        func = node.func
        held = tuple(self._stack)
        dfs_attr_call = (
            isinstance(func, ast.Attribute) and func.attr in DFS_WRITE_CALLS
        )
        if isinstance(func, ast.Attribute):
            receiver_guard = self._guard_id(func.value)
            if func.attr == "acquire" and receiver_guard is not None:
                if (
                    receiver_guard not in self._stack
                    and not _nonblocking_acquire(node)
                ):
                    self.facts.events.append(
                        _Event(receiver_guard, node.lineno, held)
                    )
            if held and func.attr in BLOCKING_ATTRS:
                self._check_blocking_attr(node, func, held)
            if held and func.attr in DFS_WRITE_CALLS:
                self.facts.blocking.append(
                    _Blocking(node.lineno, f"DFS {func.attr}()", held)
                )
            if self.scope.is_class:
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                ):
                    self.facts.calls.append(
                        _CallSite(func.attr, node.lineno, held)
                    )
        elif isinstance(func, ast.Name):
            if not self.scope.is_class and func.id in self.scope.functions:
                self.facts.calls.append(_CallSite(func.id, node.lineno, held))
        if held:
            qualified = resolve_call(node, self.aliases)
            if qualified == "time.sleep":
                self.facts.blocking.append(
                    _Blocking(node.lineno, "time.sleep()", held)
                )
            elif (
                not dfs_attr_call
                and qualified is not None
                and qualified.rsplit(".", 1)[-1] in DFS_WRITE_CALLS
            ):
                self.facts.blocking.append(
                    _Blocking(
                        node.lineno,
                        f"DFS {qualified.rsplit('.', 1)[-1]}()",
                        held,
                    )
                )
        if resolve_call(node, self.aliases) == "threading.Thread":
            for keyword in node.keywords:
                if keyword.arg == "target" and isinstance(
                    keyword.value, ast.Name
                ):
                    self.facts.thread_targets.add(keyword.value.id)
        self.generic_visit(node)

    def _check_blocking_attr(
        self, node: ast.Call, func: ast.Attribute, held: tuple[str, ...]
    ) -> None:
        """Flag join/acquire/wait under a lock, minus the safe idioms."""
        receiver = dotted_name(func.value)
        receiver_guard = self._guard_id(func.value)
        if func.attr in {"wait", "acquire"}:
            # Waiting on (or re-entering) the lock you hold is the
            # Condition idiom, not a hazard.
            if receiver_guard is not None and receiver_guard in held:
                return
            if func.attr == "acquire" and _nonblocking_acquire(node):
                return
            what = f"{receiver or '<expr>'}.{func.attr}()"
            self.facts.blocking.append(_Blocking(node.lineno, what, held))
        elif func.attr == "join" and _is_thread_join(node):
            what = f"{receiver or '<expr>'}.join()"
            self.facts.blocking.append(_Blocking(node.lineno, what, held))

    # -- nested scopes --------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Scan nested bodies with an empty held stack (deferred code)."""
        if node.name in self.skip_functions:
            return
        saved, self._stack = self._stack, []
        for statement in node.body:
            self.visit(statement)
        self._stack = saved

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        """Lambdas are deferred code too: empty held stack."""
        saved, self._stack = self._stack, []
        self.visit(node.body)
        self._stack = saved


def _nonblocking_acquire(node: ast.Call) -> bool:
    """Whether an ``.acquire(...)`` call cannot block (blocking=False)."""
    if node.args:
        first = node.args[0]
        if isinstance(first, ast.Constant) and first.value is False:
            return True
    for keyword in node.keywords:
        if keyword.arg == "blocking" and (
            isinstance(keyword.value, ast.Constant)
            and keyword.value.value is False
        ):
            return True
    return False


def _is_thread_join(node: ast.Call) -> bool:
    """Whether a ``.join(...)`` call looks like a thread join.

    ``thread.join()`` takes no argument or a numeric timeout;
    ``", ".join(parts)`` takes exactly one iterable. Anything with a
    single non-numeric positional argument is the string method.
    """
    if any(keyword.arg == "timeout" for keyword in node.keywords):
        return True
    if not node.args:
        return True
    if len(node.args) == 1:
        arg = node.args[0]
        return isinstance(arg, ast.Constant) and isinstance(
            arg.value, (int, float)
        )
    return False


def _scan_scope(
    scope: _Scope, aliases: dict[str, str]
) -> dict[str, _FnFacts]:
    """Scan every function of a scope, promoting thread-target closures.

    Mirrors ``locks.py``: pass 1 finds ``Thread(target=closure)`` names,
    pass 2 carves those closure bodies out of their enclosing functions
    and scans them as first-class scope members (they run on their own
    thread, so their acquisition events stand alone).
    """
    closure_targets: set[str] = set()
    for name, body in scope.functions.items():
        scan = _HeldScanner(scope, aliases, set())
        scan.facts = _FnFacts(name=name)
        for statement in body:
            scan.visit(statement)
        closure_targets |= scan.facts.thread_targets

    facts: dict[str, _FnFacts] = {}
    for name, body in scope.functions.items():
        scan = _HeldScanner(scope, aliases, closure_targets)
        scan.facts = _FnFacts(name=name)
        for statement in body:
            scan.visit(statement)
        facts[name] = scan.facts
        for statement in body:
            for nested in ast.walk(statement):
                if (
                    isinstance(nested, ast.FunctionDef)
                    and nested.name in closure_targets
                    and nested.name not in facts
                ):
                    inner = _HeldScanner(scope, aliases, set())
                    inner.facts = _FnFacts(name=nested.name)
                    for inner_statement in nested.body:
                        inner.visit(inner_statement)
                    facts[nested.name] = inner.facts
    return facts


def _transitive_acquires(
    facts: dict[str, _FnFacts],
) -> dict[str, dict[str, int]]:
    """Per function: every scope guard it (transitively) acquires.

    Maps function name to ``{guard: representative line}`` where the
    line is the shallowest acquisition site found — the anchor used
    when a call edge contributes that guard to the graph.
    """
    acquires: dict[str, dict[str, int]] = {
        name: {} for name in facts
    }
    for name, fn in facts.items():
        for event in fn.events:
            if event.lock.startswith("?"):
                continue
            acquires[name].setdefault(event.lock, event.line)
    changed = True
    while changed:
        changed = False
        for name, fn in facts.items():
            for call in fn.calls:
                for lock, line in acquires.get(call.callee, {}).items():
                    if lock not in acquires[name]:
                        acquires[name][lock] = line
                        changed = True
    return acquires


def _scope_edges(
    facts: dict[str, _FnFacts],
) -> dict[tuple[str, str], tuple[int, str]]:
    """The "acquires ``b`` while holding ``a``" edges of one scope.

    Each edge keeps its first acquisition site: the line where ``b``
    was taken and a short description of how (directly, or via a call
    into a function that takes it).
    """
    acquires = _transitive_acquires(facts)
    edges: dict[tuple[str, str], tuple[int, str]] = {}

    def add(a: str, b: str, line: int, how: str) -> None:
        if a == b or a.startswith("?") or b.startswith("?"):
            return
        key = (a, b)
        if key not in edges or line < edges[key][0]:
            edges[key] = (line, how)

    for fn in facts.values():
        for event in fn.events:
            for held in event.held:
                add(held, event.lock, event.line, f"in {fn.name}")
        for call in fn.calls:
            if not call.held:
                continue
            for lock in acquires.get(call.callee, {}):
                for held in call.held:
                    add(
                        held,
                        lock,
                        call.line,
                        f"in {fn.name} via {call.callee}()",
                    )
    return edges


def _strongly_connected(
    nodes: set[str], edges: dict[tuple[str, str], tuple[int, str]]
) -> list[list[str]]:
    """Tarjan SCCs of the acquisition graph (deterministic order)."""
    adjacency: dict[str, list[str]] = {node: [] for node in nodes}
    for a, b in sorted(edges):
        adjacency[a].append(b)
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(node: str) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for neighbor in adjacency[node]:
            if neighbor not in index:
                strongconnect(neighbor)
                low[node] = min(low[node], low[neighbor])
            elif neighbor in on_stack:
                low[node] = min(low[node], index[neighbor])
        if low[node] == index[node]:
            component: list[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            sccs.append(sorted(component))

    for node in sorted(nodes):
        if node not in index:
            strongconnect(node)
    return [scc for scc in sccs if len(scc) > 1]


class LockOrderRule(Rule):
    """The per-scope lock acquisition graph must be cycle-free."""

    id = "lock-order"
    description = (
        "the acquires-while-holding graph of every class/module must be "
        "acyclic, or two threads can deadlock"
    )
    targets = ("src",)

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        """Report every acquisition-order cycle in one module."""
        if module.tree is None:
            return
        aliases = import_aliases(module.tree)
        for scope in _build_scopes(module):
            facts = _scan_scope(scope, aliases)
            edges = _scope_edges(facts)
            if not edges:
                continue
            nodes = {a for a, _ in edges} | {b for _, b in edges}
            for component in _strongly_connected(nodes, edges):
                members = set(component)
                cycle_edges = sorted(
                    (line, a, b, how)
                    for (a, b), (line, how) in edges.items()
                    if a in members and b in members
                )
                sites = ", ".join(
                    f"{b} while holding {a} (line {line}, {how})"
                    for line, a, b, how in cycle_edges
                )
                yield module.finding(
                    self.id,
                    cycle_edges[0][0],
                    f"lock-order cycle in {scope.label} over "
                    f"{{{', '.join(component)}}}: acquires {sites}; "
                    "threads taking these locks in different orders can "
                    "deadlock",
                )


class BlockingUnderLockRule(Rule):
    """No call that can block indefinitely while a lock is held."""

    id = "blocking-under-lock"
    description = (
        "no blocking call (join/acquire/wait on another object, "
        "time.sleep, DFS writes) while holding a lock"
    )
    targets = ("src",)

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        """Report every blocking-under-lock site in one module."""
        if module.tree is None:
            return
        aliases = import_aliases(module.tree)
        for scope in _build_scopes(module):
            facts = _scan_scope(scope, aliases)
            for name in sorted(facts):
                for blocked in facts[name].blocking:
                    held = ", ".join(
                        guard.lstrip("?") for guard in blocked.held
                    )
                    where = (
                        f"{scope.label}.{name}"
                        if scope.is_class
                        else name
                    )
                    yield module.finding(
                        self.id,
                        blocked.line,
                        f"{where} calls {blocked.what} while holding "
                        f"{{{held}}}; blocking under a lock stalls every "
                        "contending thread",
                    )
