"""Resource-safety checker: handles, writers, and pools must be released.

A ``RecordWriter`` left open holds a staged (never-finalized) shard; a
``DFSReadHandle`` left open pins read-side accounting; an unreleased
pool or unjoined thread leaks processes. The repo's idiom is release on
**all** paths: a ``with`` block, a ``try/finally``, an ``except``
handler that ``abandon``s before re-raising, or handing the object to
an owner that manages its lifecycle.

Per function, the rule records every local name bound directly to a
resource constructor — :data:`RESOURCE_CONSTRUCTORS` maps the callable
(matched by its final name segment, alias-resolved) to its release
methods — and flags the binding unless one of these holds:

* the value is consumed by a ``with`` statement (either constructed in
  the ``with`` item or the bound name is later used as one);
* a release method is called on the name inside a ``finally`` block or
  an ``except`` handler somewhere in the function;
* the name *escapes* the function — returned, yielded, passed to
  another call, stored into an attribute/subscript/container literal —
  transferring ownership to code the rule cannot see.

The escape clause keeps the rule honest rather than exhaustive: a
callee that leaks is flagged where *it* binds the resource, not at
every caller. Deliberately open-ended lifetimes (e.g. a long-lived
daemon registered elsewhere) take a
``# repro: allow[resource-safety] reason`` suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import import_aliases, resolve_call
from repro.analysis.framework import Finding, ParsedModule, Rule

__all__ = ["ResourceSafetyRule", "RESOURCE_CONSTRUCTORS"]

#: ``constructor-final-segment -> (kind, release method names)``.
RESOURCE_CONSTRUCTORS: dict[str, tuple[str, frozenset[str]]] = {
    "open_read": ("DFS read handle", frozenset({"close"})),
    "RecordWriter": (
        "record writer",
        frozenset({"close", "abandon"}),
    ),
    "NodeServicePool": ("service pool", frozenset({"shutdown"})),
    "ProcessPoolExecutor": ("process pool", frozenset({"shutdown"})),
    "ThreadPoolExecutor": ("thread pool", frozenset({"shutdown"})),
    "Pool": ("process pool", frozenset({"close", "terminate", "join"})),
    "Thread": ("thread", frozenset({"join"})),
    "open": ("file handle", frozenset({"close"})),
}


def _constructor_of(
    node: ast.Call, aliases: dict[str, str]
) -> tuple[str, tuple[str, frozenset[str]]] | None:
    """The resource entry a call constructs, or ``None``."""
    qualified = resolve_call(node, aliases)
    if qualified is None:
        return None
    segment = qualified.rsplit(".", 1)[-1]
    entry = RESOURCE_CONSTRUCTORS.get(segment)
    return (segment, entry) if entry else None


class _FunctionAuditor:
    """Audit one function body for resource bindings and their fates."""

    def __init__(self, func: ast.AST, aliases: dict[str, str]) -> None:
        self.func = func
        self.aliases = aliases
        #: name -> (line, ctor segment, kind, release methods)
        self.bindings: dict[str, tuple[int, str, str, frozenset[str]]] = {}
        self.safe: set[str] = set()
        self._collect_bindings()
        self._scan_fates()

    def _body_walk(self) -> Iterator[ast.AST]:
        """Walk the function body, not entering nested function scopes."""
        stack: list[ast.AST] = list(
            ast.iter_child_nodes(self.func)
        )
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _collect_bindings(self) -> None:
        for node in self._body_walk():
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            found = _constructor_of(node.value, self.aliases)
            if found is None:
                continue
            segment, (kind, releases) = found
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.bindings[target.id] = (
                        node.lineno,
                        segment,
                        kind,
                        releases,
                    )

    def _scan_fates(self) -> None:
        if not self.bindings:
            return
        for node in self._body_walk():
            if isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id in self.bindings:
                        self.safe.add(expr.id)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None:
                    self._mark_escapes(value)
            elif isinstance(node, ast.Try):
                for body in [node.finalbody] + [
                    handler.body for handler in node.handlers
                ]:
                    for statement in body:
                        for sub in ast.walk(statement):
                            self._check_release(sub)
            elif isinstance(node, ast.Call):
                self._check_call_escapes(node)
            elif isinstance(node, ast.Assign):
                if isinstance(node.value, (ast.Name, ast.Tuple, ast.List)):
                    for target in node.targets:
                        if isinstance(
                            target, (ast.Attribute, ast.Subscript)
                        ):
                            self._mark_escapes(node.value)
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
                self._mark_escapes(node)

    def _check_release(self, node: ast.AST) -> None:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
        ):
            name = node.func.value.id
            binding = self.bindings.get(name)
            if binding is not None and node.func.attr in binding[3]:
                self.safe.add(name)

    def _check_call_escapes(self, node: ast.Call) -> None:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._mark_escapes(arg)

    def _mark_escapes(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in self.bindings:
                self.safe.add(sub.id)

    def leaks(self) -> Iterator[tuple[str, int, str, str]]:
        """``(name, line, ctor, kind)`` for every unsafe binding."""
        for name, (line, segment, kind, _) in self.bindings.items():
            if name not in self.safe:
                yield name, line, segment, kind


class ResourceSafetyRule(Rule):
    """Resources must be released on all paths or change owners."""

    id = "resource-safety"
    description = (
        "record writers, DFS read handles, pools, and threads must be "
        "closed via with/try-finally on every path (or escape to an "
        "owner)"
    )
    targets = ("src",)

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        """Audit every function (and method) in one module."""
        if module.tree is None:
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                auditor = _FunctionAuditor(node, aliases)
                for name, line, segment, kind in auditor.leaks():
                    yield module.finding(
                        self.id,
                        line,
                        f"{kind} '{name}' (from {segment}(...)) may leak: "
                        "no with-block, no release in a finally/except, "
                        "and the name never escapes this function",
                    )
