"""Determinism checker for the byte-identity-critical surface.

The repo's central invariant — serial, parallel, resumed, and served
paths produce byte-identical artifacts — only holds if the modules on
that surface never consult wall clocks, unseeded RNGs, or unordered
containers while producing output. Runtime tests verify the paths they
exercise; this rule verifies **every** path at lint time.

Flagged inside :data:`DETERMINISM_SURFACE` modules:

* wall-clock reads — ``time.time``/``perf_counter``/``monotonic`` (and
  ``_ns`` variants), ``datetime.now``/``utcnow``/``today``;
* nondeterministic entropy — ``random.*`` module functions, the legacy
  ``numpy.random.*`` global-state functions (seeded constructions like
  ``numpy.random.default_rng`` / ``Generator`` / ``SeedSequence`` are
  fine), ``os.urandom``, ``uuid.uuid1``/``uuid.uuid4``;
* iteration directly over a ``set`` literal / ``set()`` call / set
  comprehension — hash order leaks into output order (wrap in
  ``sorted`` or use ``dict.fromkeys`` to deduplicate stably).

Telemetry and deadline code on the surface that legitimately reads the
clock (latency histograms, flush windows — metadata that never enters
output bytes) carries per-line ``# repro: allow[determinism] reason``
suppressions; the justification requirement keeps each exception
audited.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import import_aliases, resolve_call
from repro.analysis.framework import Finding, ParsedModule, Rule

__all__ = ["DeterminismRule", "DETERMINISM_SURFACE"]

#: Modules whose outputs must be bit-reproducible: the generative-model
#: kernels, the batched LF executor, the record/filesystem codecs, the
#: durable sinks + checkpoints, and the serving tier's scoring path.
DETERMINISM_SURFACE = (
    "src/repro/core/",
    "src/repro/lf/applier.py",
    "src/repro/dfs/",
    "src/repro/streaming/sinks.py",
    "src/repro/streaming/checkpoint.py",
    "src/repro/serving/registry.py",
    "src/repro/serving/service.py",
)

#: Exact qualified names that read wall clocks or entropy.
FORBIDDEN_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbelow",
    }
)

#: ``numpy.random`` members that are *seeded constructions* rather than
#: draws from the hidden global generator.
SEEDED_NUMPY_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)


class DeterminismRule(Rule):
    """No clocks, hidden RNG state, or set-order leaks on the surface."""

    id = "determinism"
    description = (
        "byte-identity-critical modules must not read wall clocks, "
        "unseeded RNGs, or iterate bare sets"
    )
    targets = ("src",)

    def __init__(self, surface: tuple[str, ...] = DETERMINISM_SURFACE) -> None:
        """Optionally narrow/replace the checked surface (tests do)."""
        self.surface = surface

    def _on_surface(self, relpath: str) -> bool:
        return any(
            relpath == entry or relpath.startswith(entry)
            for entry in self.surface
        )

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        """Scan one surface module for forbidden calls and set iteration."""
        if not self._on_surface(module.relpath) or module.tree is None:
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, aliases)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iterable(module, node.iter)
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                for generator in node.generators:
                    yield from self._check_iterable(module, generator.iter)

    def _check_call(
        self, module: ParsedModule, node: ast.Call, aliases: dict[str, str]
    ) -> Iterator[Finding]:
        qualified = resolve_call(node, aliases)
        if qualified is None:
            return
        if qualified in FORBIDDEN_CALLS:
            yield module.finding(
                self.id,
                node.lineno,
                f"call to {qualified} on the byte-identity surface "
                "(wall clocks and entropy sources are nondeterministic)",
            )
        elif qualified.startswith("random."):
            yield module.finding(
                self.id,
                node.lineno,
                f"call to {qualified}: the random module's hidden global "
                "state is nondeterministic; thread a seeded generator "
                "instead",
            )
        elif qualified.startswith("numpy.random."):
            member = qualified.rsplit(".", 1)[1]
            if member not in SEEDED_NUMPY_OK:
                yield module.finding(
                    self.id,
                    node.lineno,
                    f"call to {qualified}: legacy numpy global-RNG draw; "
                    "use numpy.random.default_rng(seed) and thread the "
                    "generator",
                )

    def _check_iterable(
        self, module: ParsedModule, iterable: ast.expr
    ) -> Iterator[Finding]:
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            yield module.finding(
                self.id,
                iterable.lineno,
                "iteration over a set literal/comprehension: hash order "
                "leaks into output order; sort it or use dict.fromkeys",
            )
        elif isinstance(iterable, ast.Call) and isinstance(
            iterable.func, ast.Name
        ):
            if iterable.func.id in {"set", "frozenset"}:
                yield module.finding(
                    self.id,
                    iterable.lineno,
                    f"iteration over a bare {iterable.func.id}() call: hash "
                    "order leaks into output order; sort it or use "
                    "dict.fromkeys",
                )
