"""Lock-discipline checker for thread-spawning classes.

Classes that start threads (`LabelServer`, the telemetry exporter, the
micro-batch pipeline's ingest threads, …) share instance state between
the thread body and the public API. The invariant this rule enforces:
an instance attribute that is **mutated both from thread-side code and
from public-side code** is a shared variable, and every access to it
must sit inside a ``with self.<lock>`` block.

How the rule reasons, per class that constructs ``threading.Thread``
(or ``threading.Timer`` — a Timer is a thread with a delay):

* *thread entries* are ``Thread(target=self.method)`` /
  ``Timer(delay, self.method)`` targets, ``Thread(target=closure)``
  closures defined in a method, and module-level functions — in this
  module or any other — passed as the target with the instance bound
  through ``args=(self, ...)`` (the function's matching parameter is
  analyzed as if it were ``self``);
* the self-method call graph is chased from the entries (thread side)
  and from every public method (public side) — a private helper called
  from ``predict()`` is public-side code;
* *mutations* are assignments/augmented assignments to ``self.attr``
  (or a subscript of it) and calls to known mutating container methods
  (``append``, ``popleft``, ``update``, …);
* attributes holding intrinsically thread-safe objects — locks,
  conditions, events, semaphores, queues, and the repo's own
  ``CounterSet`` / ``Gauge`` / ``MetricsRegistry`` / ``Histogram`` —
  are exempt, as are mutations inside ``__init__`` (it runs before any
  thread exists);
* a ``with self.X`` block counts as locked when ``X`` was assigned a
  ``threading.Lock/RLock/Condition`` anywhere in the class, or its
  name contains ``lock``.

The analysis is lexical, not a happens-before proof: it cannot see
attributes reached through other objects or decide that an unlocked
read is benign. It is designed to make the *protected-by-default*
idiom checkable and every exception explicit via
``# repro: allow[lock-discipline] reason``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.analysis.astutil import dotted_name, import_aliases, resolve_call
from repro.analysis.framework import Finding, ParsedModule, Rule

__all__ = ["LockDisciplineRule"]

#: Method names that mutate common containers in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "put",
        "put_nowait",
        "push",
        "sort",
        "reverse",
        "write",
    }
)

#: Constructors whose instances are safe to share without the class
#: lock (they carry their own synchronization).
THREAD_SAFE_CONSTRUCTORS = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "Queue",
        "SimpleQueue",
        "LifoQueue",
        "PriorityQueue",
        "CounterSet",
        "Gauge",
        "MetricsRegistry",
        "Histogram",
    }
)

#: Constructors that make an attribute usable as the guard in
#: ``with self.X`` (Condition wraps a lock, so it qualifies).
LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Condition"})


def _module_qualname(relpath: str) -> str:
    """Import-style module name for a repo-relative source path.

    ``src/repro/obs/exporter.py`` maps to ``repro.obs.exporter`` and a
    package ``__init__.py`` to the package itself — the names the
    import-alias map produces, so spawn targets resolve across modules.
    """
    path = relpath
    if path.startswith("src/"):
        path = path[len("src/") :]
    if path.endswith(".py"):
        path = path[: -len(".py")]
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    return path.replace("/", ".")


@dataclass
class _Access:
    """One appearance of ``self.attr`` inside a method body."""

    attr: str
    line: int
    locked: bool
    mutating: bool


@dataclass
class _Method:
    """Per-method facts the class-level analysis consumes."""

    name: str
    accesses: list[_Access] = field(default_factory=list)
    calls: set[str] = field(default_factory=set)
    thread_targets: set[str] = field(default_factory=set)
    external_targets: list[tuple[str, int]] = field(default_factory=list)
    """Dotted spawn targets that are not methods or local closures,
    with the position of ``self`` in the spawn's ``args=`` tuple
    (``-1`` when the instance is not passed along)."""


class _MethodScanner(ast.NodeVisitor):
    """Collect self-attribute accesses, self-calls, and thread spawns.

    Nested function bodies are attributed to the enclosing method
    unless the nested function is itself a thread target (the caller
    splits those out as pseudo-methods).
    """

    def __init__(
        self,
        lock_attrs: set[str],
        aliases: dict[str, str],
        skip_functions: set[str],
        self_name: str = "self",
    ) -> None:
        self.lock_attrs = lock_attrs
        self.aliases = aliases
        self.skip_functions = skip_functions
        self.self_name = self_name
        self.method = _Method(name="")
        self._lock_depth = 0

    # -- locking context ------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        locked = any(
            self._is_lock_expr(item.context_expr) for item in node.items
        )
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if locked:
            self._lock_depth += 1
        for statement in node.body:
            self.visit(statement)
        if locked:
            self._lock_depth -= 1

    def _is_lock_expr(self, expr: ast.expr) -> bool:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == self.self_name
        ):
            return expr.attr in self.lock_attrs or "lock" in expr.attr
        return False

    # -- accesses and mutations ----------------------------------------
    def _self_attr(self, expr: ast.expr) -> str | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == self.self_name
        ):
            return expr.attr
        return None

    def _record(self, attr: str, line: int, mutating: bool) -> None:
        self.method.accesses.append(
            _Access(attr, line, self._lock_depth > 0, mutating)
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self._self_attr(node)
        if attr is not None:
            self._record(
                attr, node.lineno, isinstance(node.ctx, (ast.Store, ast.Del))
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # self.x[k] = v / del self.x[k] mutate x even though the
        # Attribute itself is only loaded.
        attr = self._self_attr(node.value)
        if attr is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
            self._record(attr, node.lineno, True)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self._self_attr(node.target)
        if attr is not None:
            self._record(attr, node.lineno, True)
        self.generic_visit(node)

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = self._self_attr(func.value)
            if owner is not None and func.attr in MUTATOR_METHODS:
                self._record(owner, node.lineno, True)
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == self.self_name
            ):
                self.method.calls.add(func.attr)
        qualified = resolve_call(node, self.aliases)
        if qualified in ("threading.Thread", "threading.Timer"):
            target = self._spawn_target(node, qualified)
            if target is not None:
                self._record_spawn_target(node, target)
        self.generic_visit(node)

    @staticmethod
    def _spawn_target(node: ast.Call, qualified: str) -> ast.expr | None:
        """The callable a Thread/Timer construction will run."""
        if qualified == "threading.Thread":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    return keyword.value
            return None
        # Timer(interval, function, args=..., kwargs=...): the callable
        # is the second positional argument or the function= keyword.
        for keyword in node.keywords:
            if keyword.arg == "function":
                return keyword.value
        if len(node.args) >= 2:
            return node.args[1]
        return None

    def _record_spawn_target(
        self, node: ast.Call, target: ast.expr
    ) -> None:
        """File a spawn target as method, closure, or external function."""
        target_attr = self._self_attr(target)
        if target_attr is not None:
            self.method.thread_targets.add(target_attr)
            return
        name = dotted_name(target)
        if name is None:
            return
        if isinstance(target, ast.Name):
            # Could be a closure of the enclosing method (promoted by
            # the class pass) or a module-level function; record both
            # interpretations and let the class pass disambiguate.
            self.method.thread_targets.add(target.id)
        self.method.external_targets.append(
            (name, self._self_arg_position(node))
        )

    def _self_arg_position(self, node: ast.Call) -> int:
        """Index of ``self`` in the spawn's ``args=`` tuple, or ``-1``."""
        for keyword in node.keywords:
            if keyword.arg != "args":
                continue
            if isinstance(keyword.value, (ast.Tuple, ast.List)):
                for index, element in enumerate(keyword.value.elts):
                    if (
                        isinstance(element, ast.Name)
                        and element.id == self.self_name
                    ):
                        return index
        return -1

    # -- nested scopes --------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name not in self.skip_functions:
            for statement in node.body:
                self.visit(statement)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)


class LockDisciplineRule(Rule):
    """Shared mutable attributes of thread-spawning classes need locks."""

    id = "lock-discipline"
    description = (
        "in classes that start threads, attributes mutated from both a "
        "thread body and a public method must be accessed under the lock"
    )
    targets = ("src",)

    def check_repo(
        self, modules: Sequence[ParsedModule]
    ) -> Iterator[Finding]:
        """Analyze every module, resolving cross-module thread targets.

        A first pass maps every module-level function by its qualified
        name, so ``Thread(target=helpers.worker, args=(self,))`` can be
        chased into ``helpers.py`` and the worker's parameter analyzed
        as the spawning instance.
        """
        function_map: dict[str, tuple] = {}
        for module in modules:
            if module.tree is None:
                continue
            qualname = _module_qualname(module.relpath)
            module_aliases = import_aliases(module.tree)
            for node in module.tree.body:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    function_map[f"{qualname}.{node.name}"] = (
                        node,
                        module,
                        module_aliases,
                    )
        for module in modules:
            if module.tree is not None:
                yield from self._check_one(module, function_map)

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        """Analyze one module standalone (no cross-module resolution)."""
        yield from self._check_one(module, {})

    def _check_one(
        self, module: ParsedModule, function_map: dict[str, tuple]
    ) -> Iterator[Finding]:
        if module.tree is None:
            return
        aliases = import_aliases(module.tree)
        qualname = _module_qualname(module.relpath)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(
                    module, node, aliases, qualname, function_map
                )

    # ------------------------------------------------------------------
    # per-class analysis
    # ------------------------------------------------------------------
    def _check_class(
        self,
        module: ParsedModule,
        cls: ast.ClassDef,
        aliases: dict[str, str],
        qualname: str,
        function_map: dict[str, tuple],
    ) -> Iterator[Finding]:
        methods = [
            item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs, exempt_attrs = self._classify_attrs(methods, aliases)

        # Pass 1: find thread-target closure names so pass 2 can carve
        # their bodies out of the enclosing methods.
        closure_targets: set[str] = set()
        for method in methods:
            scan = _MethodScanner(lock_attrs, aliases, set())
            scan.method = _Method(name=method.name)
            for statement in method.body:
                scan.visit(statement)
            closure_targets |= scan.method.thread_targets

        scanned: dict[str, _Method] = {}
        thread_entries: set[str] = set()
        for method in methods:
            scan = _MethodScanner(lock_attrs, aliases, closure_targets)
            scan.method = _Method(name=method.name)
            for statement in method.body:
                scan.visit(statement)
            scanned[method.name] = scan.method
            thread_entries |= scan.method.thread_targets
            # Thread-target closures become pseudo-methods of the class.
            for nested in ast.walk(method):
                if (
                    isinstance(nested, ast.FunctionDef)
                    and nested.name in closure_targets
                    and nested.name not in scanned
                ):
                    inner = _MethodScanner(lock_attrs, aliases, set())
                    inner.method = _Method(name=nested.name)
                    for statement in nested.body:
                        inner.visit(statement)
                    scanned[nested.name] = inner.method

        # Module-level spawn targets (this module or another) become
        # pseudo-methods too: the parameter that binds ``self`` via the
        # spawn's ``args=`` tuple is analyzed as the instance.
        method_module: dict[str, ParsedModule] = {}
        for method in list(scanned.values()):
            for name, self_pos in method.external_targets:
                if name in scanned or self_pos < 0:
                    continue
                resolved = self._resolve_external(
                    name, aliases, qualname, function_map
                )
                if resolved is None:
                    continue
                fn_node, def_module, def_aliases = resolved
                params = [arg.arg for arg in fn_node.args.args]
                if self_pos >= len(params):
                    continue
                pseudo = f"<{name}>"
                if pseudo in scanned:
                    continue
                external = _MethodScanner(
                    lock_attrs,
                    def_aliases,
                    set(),
                    self_name=params[self_pos],
                )
                external.method = _Method(name=pseudo)
                for statement in fn_node.body:
                    external.visit(statement)
                scanned[pseudo] = external.method
                method_module[pseudo] = def_module
                thread_entries.add(pseudo)

        if not thread_entries:
            return

        thread_side = self._reachable(scanned, thread_entries)
        public_entries = {
            name
            for name in scanned
            if not name.startswith("_") or name in {"__enter__", "__exit__"}
        }
        public_side = self._reachable(scanned, public_entries)

        shared = self._shared_attrs(
            scanned, thread_side, public_side, exempt_attrs
        )
        seen: set[tuple[str, str, int]] = set()
        for name in sorted(thread_side | public_side):
            method = scanned.get(name)
            if method is None or name == "__init__":
                continue
            owner = method_module.get(name, module)
            for access in method.accesses:
                if access.attr not in shared or access.locked:
                    continue
                key = (owner.relpath, access.attr, access.line)
                if key in seen:
                    continue
                seen.add(key)
                side = "thread" if name in thread_side else "public"
                yield owner.finding(
                    self.id,
                    access.line,
                    f"{cls.name}.{name} accesses self.{access.attr} "
                    f"outside the lock ({side}-side code; the attribute "
                    "is mutated from both thread and public methods)",
                )

    @staticmethod
    def _resolve_external(
        name: str,
        aliases: dict[str, str],
        qualname: str,
        function_map: dict[str, tuple],
    ) -> tuple | None:
        """Map a spawn-target dotted name to a known module function.

        ``helpers.worker`` resolves through the import alias map
        (cross-module); a bare name falls back to the spawning module's
        own top-level functions.
        """
        root, _, rest = name.partition(".")
        origin = aliases.get(root, root)
        qualified = f"{origin}.{rest}" if rest else origin
        if qualified in function_map:
            return function_map[qualified]
        if "." not in name:
            return function_map.get(f"{qualname}.{name}")
        return None

    @staticmethod
    def _classify_attrs(
        methods: list, aliases: dict[str, str]
    ) -> tuple[set[str], set[str]]:
        """Attributes assigned lock-like / thread-safe constructor calls."""
        lock_attrs: set[str] = set()
        exempt_attrs: set[str] = set()
        for method in methods:
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if not isinstance(value, ast.Call):
                    continue
                qualified = resolve_call(value, aliases)
                if qualified is None:
                    continue
                ctor = qualified.rsplit(".", 1)[-1]
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        if ctor in LOCK_CONSTRUCTORS:
                            lock_attrs.add(target.attr)
                        if ctor in THREAD_SAFE_CONSTRUCTORS:
                            exempt_attrs.add(target.attr)
        return lock_attrs, exempt_attrs

    @staticmethod
    def _reachable(
        scanned: dict[str, _Method], entries: set[str]
    ) -> set[str]:
        """Transitive closure over the self-method call graph."""
        reached: set[str] = set()
        frontier = [name for name in entries if name in scanned]
        while frontier:
            name = frontier.pop()
            if name in reached:
                continue
            reached.add(name)
            for callee in scanned[name].calls:
                if callee in scanned and callee not in reached:
                    frontier.append(callee)
        return reached

    @staticmethod
    def _shared_attrs(
        scanned: dict[str, _Method],
        thread_side: set[str],
        public_side: set[str],
        exempt_attrs: set[str],
    ) -> set[str]:
        """Attributes mutated on both sides (outside ``__init__``)."""
        thread_mutated: set[str] = set()
        public_mutated: set[str] = set()
        for name, method in scanned.items():
            if name == "__init__":
                continue
            mutated = {a.attr for a in method.accesses if a.mutating}
            if name in thread_side:
                thread_mutated |= mutated
            if name in public_side:
                public_mutated |= mutated
        return (thread_mutated & public_mutated) - exempt_attrs
