"""Lock-discipline checker for thread-spawning classes.

Classes that start threads (`LabelServer`, the telemetry exporter, the
micro-batch pipeline's ingest threads, …) share instance state between
the thread body and the public API. The invariant this rule enforces:
an instance attribute that is **mutated both from thread-side code and
from public-side code** is a shared variable, and every access to it
must sit inside a ``with self.<lock>`` block.

How the rule reasons, per class that constructs ``threading.Thread``:

* *thread entries* are ``Thread(target=self.method)`` targets and
  ``Thread(target=local_function)`` closures defined in a method;
* the self-method call graph is chased from the entries (thread side)
  and from every public method (public side) — a private helper called
  from ``predict()`` is public-side code;
* *mutations* are assignments/augmented assignments to ``self.attr``
  (or a subscript of it) and calls to known mutating container methods
  (``append``, ``popleft``, ``update``, …);
* attributes holding intrinsically thread-safe objects — locks,
  conditions, events, semaphores, queues, and the repo's own
  ``CounterSet`` / ``Gauge`` / ``MetricsRegistry`` / ``Histogram`` —
  are exempt, as are mutations inside ``__init__`` (it runs before any
  thread exists);
* a ``with self.X`` block counts as locked when ``X`` was assigned a
  ``threading.Lock/RLock/Condition`` anywhere in the class, or its
  name contains ``lock``.

The analysis is lexical, not a happens-before proof: it cannot see
attributes reached through other objects or decide that an unlocked
read is benign. It is designed to make the *protected-by-default*
idiom checkable and every exception explicit via
``# repro: allow[lock-discipline] reason``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.astutil import import_aliases, resolve_call
from repro.analysis.framework import Finding, ParsedModule, Rule

__all__ = ["LockDisciplineRule"]

#: Method names that mutate common containers in place.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "put",
        "put_nowait",
        "push",
        "sort",
        "reverse",
        "write",
    }
)

#: Constructors whose instances are safe to share without the class
#: lock (they carry their own synchronization).
THREAD_SAFE_CONSTRUCTORS = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "Queue",
        "SimpleQueue",
        "LifoQueue",
        "PriorityQueue",
        "CounterSet",
        "Gauge",
        "MetricsRegistry",
        "Histogram",
    }
)

#: Constructors that make an attribute usable as the guard in
#: ``with self.X`` (Condition wraps a lock, so it qualifies).
LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Condition"})


@dataclass
class _Access:
    """One appearance of ``self.attr`` inside a method body."""

    attr: str
    line: int
    locked: bool
    mutating: bool


@dataclass
class _Method:
    """Per-method facts the class-level analysis consumes."""

    name: str
    accesses: list[_Access] = field(default_factory=list)
    calls: set[str] = field(default_factory=set)
    thread_targets: set[str] = field(default_factory=set)


class _MethodScanner(ast.NodeVisitor):
    """Collect self-attribute accesses, self-calls, and thread spawns.

    Nested function bodies are attributed to the enclosing method
    unless the nested function is itself a thread target (the caller
    splits those out as pseudo-methods).
    """

    def __init__(
        self,
        lock_attrs: set[str],
        aliases: dict[str, str],
        skip_functions: set[str],
    ) -> None:
        self.lock_attrs = lock_attrs
        self.aliases = aliases
        self.skip_functions = skip_functions
        self.method = _Method(name="")
        self._lock_depth = 0

    # -- locking context ------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        locked = any(
            self._is_lock_expr(item.context_expr) for item in node.items
        )
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if locked:
            self._lock_depth += 1
        for statement in node.body:
            self.visit(statement)
        if locked:
            self._lock_depth -= 1

    def _is_lock_expr(self, expr: ast.expr) -> bool:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr in self.lock_attrs or "lock" in expr.attr
        return False

    # -- accesses and mutations ----------------------------------------
    def _self_attr(self, expr: ast.expr) -> str | None:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr
        return None

    def _record(self, attr: str, line: int, mutating: bool) -> None:
        self.method.accesses.append(
            _Access(attr, line, self._lock_depth > 0, mutating)
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self._self_attr(node)
        if attr is not None:
            self._record(
                attr, node.lineno, isinstance(node.ctx, (ast.Store, ast.Del))
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # self.x[k] = v / del self.x[k] mutate x even though the
        # Attribute itself is only loaded.
        attr = self._self_attr(node.value)
        if attr is not None and isinstance(node.ctx, (ast.Store, ast.Del)):
            self._record(attr, node.lineno, True)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self._self_attr(node.target)
        if attr is not None:
            self._record(attr, node.lineno, True)
        self.generic_visit(node)

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            owner = self._self_attr(func.value)
            if owner is not None and func.attr in MUTATOR_METHODS:
                self._record(owner, node.lineno, True)
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                self.method.calls.add(func.attr)
        if resolve_call(node, self.aliases) == "threading.Thread":
            for keyword in node.keywords:
                if keyword.arg != "target":
                    continue
                target_attr = self._self_attr(keyword.value)
                if target_attr is not None:
                    self.method.thread_targets.add(target_attr)
                elif isinstance(keyword.value, ast.Name):
                    self.method.thread_targets.add(keyword.value.id)
        self.generic_visit(node)

    # -- nested scopes --------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name not in self.skip_functions:
            for statement in node.body:
                self.visit(statement)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.visit(node.body)


class LockDisciplineRule(Rule):
    """Shared mutable attributes of thread-spawning classes need locks."""

    id = "lock-discipline"
    description = (
        "in classes that start threads, attributes mutated from both a "
        "thread body and a public method must be accessed under the lock"
    )
    targets = ("src",)

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        """Analyze every thread-spawning class in one module."""
        if module.tree is None:
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node, aliases)

    # ------------------------------------------------------------------
    # per-class analysis
    # ------------------------------------------------------------------
    def _check_class(
        self,
        module: ParsedModule,
        cls: ast.ClassDef,
        aliases: dict[str, str],
    ) -> Iterator[Finding]:
        methods = [
            item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs, exempt_attrs = self._classify_attrs(methods, aliases)

        # Pass 1: find thread-target closure names so pass 2 can carve
        # their bodies out of the enclosing methods.
        closure_targets: set[str] = set()
        for method in methods:
            scan = _MethodScanner(lock_attrs, aliases, set())
            scan.method = _Method(name=method.name)
            for statement in method.body:
                scan.visit(statement)
            closure_targets |= scan.method.thread_targets

        scanned: dict[str, _Method] = {}
        thread_entries: set[str] = set()
        for method in methods:
            scan = _MethodScanner(lock_attrs, aliases, closure_targets)
            scan.method = _Method(name=method.name)
            for statement in method.body:
                scan.visit(statement)
            scanned[method.name] = scan.method
            thread_entries |= scan.method.thread_targets
            # Thread-target closures become pseudo-methods of the class.
            for nested in ast.walk(method):
                if (
                    isinstance(nested, ast.FunctionDef)
                    and nested.name in closure_targets
                    and nested.name not in scanned
                ):
                    inner = _MethodScanner(lock_attrs, aliases, set())
                    inner.method = _Method(name=nested.name)
                    for statement in nested.body:
                        inner.visit(statement)
                    scanned[nested.name] = inner.method

        if not thread_entries:
            return

        thread_side = self._reachable(scanned, thread_entries)
        public_entries = {
            name
            for name in scanned
            if not name.startswith("_") or name in {"__enter__", "__exit__"}
        }
        public_side = self._reachable(scanned, public_entries)

        shared = self._shared_attrs(
            scanned, thread_side, public_side, exempt_attrs
        )
        seen: set[tuple[str, int]] = set()
        for name in sorted(thread_side | public_side):
            method = scanned.get(name)
            if method is None or name == "__init__":
                continue
            for access in method.accesses:
                if access.attr not in shared or access.locked:
                    continue
                if (access.attr, access.line) in seen:
                    continue
                seen.add((access.attr, access.line))
                side = "thread" if name in thread_side else "public"
                yield module.finding(
                    self.id,
                    access.line,
                    f"{cls.name}.{name} accesses self.{access.attr} "
                    f"outside the lock ({side}-side code; the attribute "
                    "is mutated from both thread and public methods)",
                )

    @staticmethod
    def _classify_attrs(
        methods: list, aliases: dict[str, str]
    ) -> tuple[set[str], set[str]]:
        """Attributes assigned lock-like / thread-safe constructor calls."""
        lock_attrs: set[str] = set()
        exempt_attrs: set[str] = set()
        for method in methods:
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if not isinstance(value, ast.Call):
                    continue
                qualified = resolve_call(value, aliases)
                if qualified is None:
                    continue
                ctor = qualified.rsplit(".", 1)[-1]
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        if ctor in LOCK_CONSTRUCTORS:
                            lock_attrs.add(target.attr)
                        if ctor in THREAD_SAFE_CONSTRUCTORS:
                            exempt_attrs.add(target.attr)
        return lock_attrs, exempt_attrs

    @staticmethod
    def _reachable(
        scanned: dict[str, _Method], entries: set[str]
    ) -> set[str]:
        """Transitive closure over the self-method call graph."""
        reached: set[str] = set()
        frontier = [name for name in entries if name in scanned]
        while frontier:
            name = frontier.pop()
            if name in reached:
                continue
            reached.add(name)
            for callee in scanned[name].calls:
                if callee in scanned and callee not in reached:
                    frontier.append(callee)
        return reached

    @staticmethod
    def _shared_attrs(
        scanned: dict[str, _Method],
        thread_side: set[str],
        public_side: set[str],
        exempt_attrs: set[str],
    ) -> set[str]:
        """Attributes mutated on both sides (outside ``__init__``)."""
        thread_mutated: set[str] = set()
        public_mutated: set[str] = set()
        for name, method in scanned.items():
            if name == "__init__":
                continue
            mutated = {a.attr for a in method.accesses if a.mutating}
            if name in thread_side:
                thread_mutated |= mutated
            if name in public_side:
                public_mutated |= mutated
        return (thread_mutated & public_mutated) - exempt_attrs
