"""Contract-closure checker for counter, gauge, and histogram keys.

The repo pins its observability surfaces as code-level contracts —
``COUNTER_CONTRACT`` / ``CONDITIONAL_COUNTER_KEYS`` (streaming),
``SERVING_COUNTER_CONTRACT`` / ``SERVING_CONDITIONAL_COUNTER_KEYS``
(serving), and ``HISTOGRAM_CONTRACT`` / ``TELEMETRY_COUNTER_CONTRACT``
/ ``TELEMETRY_GAUGE_CONTRACT`` (telemetry) — and ``docs/OPERATIONS.md``
tables are diffed against those tuples by ``tests/test_docs.py``. What
the runtime tests cannot prove is *closure*: that every key the code
actually emits is in some contract, and every contracted key is still
emitted somewhere. This rule proves both directions statically:

* it parses the contract tuples straight out of the defining modules'
  ASTs (no imports — the checker runs on any tree that parses);
* it extracts every **constant, namespaced** (``family/name``) string
  key passed to ``.increment(...)`` / ``.counter(...)`` (counters),
  ``.gauge(...)`` (gauges), ``.record(...)`` / ``.observe(...)`` /
  ``.histogram(...)`` (histograms), plus string keys of dict literals
  handed to ``encode_histograms`` / ``merge_histograms`` (the workers'
  bytes-only IPC);
* an emitted-but-uncontracted key is flagged at its emission site; a
  contracted-but-never-emitted key is flagged at the tuple element's
  own line.

Dynamic keys (f-strings, variables — e.g. the per-sink
``sink/<name>/us`` family) and un-namespaced per-LF counters
(``examples_seen``) are outside the contract grammar and ignored, as
documented in ``docs/OPERATIONS.md``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.analysis.framework import Finding, ParsedModule, Rule

__all__ = ["ContractClosureRule", "CONTRACT_SOURCES"]

#: Where each contract tuple lives: ``relpath -> ((name, kind), ...)``.
#: ``kind`` partitions the key namespace — a histogram key documented
#: only as a counter is still a closure failure.
CONTRACT_SOURCES: dict[str, tuple[tuple[str, str], ...]] = {
    "src/repro/streaming/pipeline.py": (
        ("COUNTER_CONTRACT", "counter"),
        ("CONDITIONAL_COUNTER_KEYS", "counter"),
    ),
    "src/repro/serving/service.py": (
        ("SERVING_COUNTER_CONTRACT", "counter"),
        ("SERVING_CONDITIONAL_COUNTER_KEYS", "counter"),
    ),
    "src/repro/obs/__init__.py": (
        ("HISTOGRAM_CONTRACT", "histogram"),
        ("TELEMETRY_COUNTER_CONTRACT", "counter"),
        ("TELEMETRY_GAUGE_CONTRACT", "gauge"),
    ),
}

#: Method names whose first constant-string argument emits a key.
_EMIT_ATTRS = {
    "increment": "counter",
    "counter": "counter",
    "gauge": "gauge",
    "record": "histogram",
    "observe": "histogram",
    "histogram": "histogram",
}

#: Functions whose dict-literal argument's string keys name histograms
#: (worker-side telemetry rides bytes-only IPC through these).
_DICT_EMITTERS = {"encode_histograms", "merge_histograms"}

#: The instrument layer itself: its methods take key *variables*, and
#: its docstrings/doctests would otherwise read as emissions.
_EXCLUDED_MODULES = {
    "src/repro/mapreduce/counters.py",
    "src/repro/obs/registry.py",
    "src/repro/obs/histogram.py",
}


def _is_key(value: object) -> bool:
    """Contract grammar: lowercase/underscore segments joined by ``/``."""
    if not isinstance(value, str) or "/" not in value:
        return False
    return all(
        segment and segment.replace("_", "a").isalnum()
        for segment in value.split("/")
    )


class ContractClosureRule(Rule):
    """Emitted keys == contracted keys, in both directions, per kind."""

    id = "contract-closure"
    description = (
        "every namespaced counter/gauge/histogram key emitted in src/ "
        "must be in a pinned contract tuple, and vice versa"
    )
    targets = ("src",)

    def __init__(
        self,
        contract_sources: dict[str, tuple[tuple[str, str], ...]] | None = None,
    ) -> None:
        """Optionally point the rule at different contract modules."""
        self.contract_sources = (
            CONTRACT_SOURCES if contract_sources is None else contract_sources
        )

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------
    def _contracted(
        self, modules: Sequence[ParsedModule]
    ) -> dict[str, dict[str, tuple[str, int]]]:
        """``kind -> key -> (relpath, line)`` from the contract tuples."""
        contracted: dict[str, dict[str, tuple[str, int]]] = {
            "counter": {},
            "gauge": {},
            "histogram": {},
        }
        by_path = {module.relpath: module for module in modules}
        for relpath, names in self.contract_sources.items():
            module = by_path.get(relpath)
            if module is None or module.tree is None:
                continue
            wanted = dict(names)
            for node in module.tree.body:
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in wanted
                    ):
                        kind = wanted[target.id]
                        for element in ast.walk(node.value):
                            if isinstance(
                                element, ast.Constant
                            ) and _is_key(element.value):
                                contracted[kind][element.value] = (
                                    relpath,
                                    element.lineno,
                                )
        return contracted

    def _emitted(
        self, modules: Sequence[ParsedModule]
    ) -> dict[str, dict[str, list[tuple[str, int]]]]:
        """``kind -> key -> emission sites`` across the scanned modules."""
        emitted: dict[str, dict[str, list[tuple[str, int]]]] = {
            "counter": {},
            "gauge": {},
            "histogram": {},
        }
        for module in modules:
            if module.tree is None or module.relpath in _EXCLUDED_MODULES:
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                for kind, key in self._call_keys(node):
                    emitted[kind].setdefault(key, []).append(
                        (module.relpath, node.lineno)
                    )
        return emitted

    @staticmethod
    def _call_keys(node: ast.Call) -> Iterator[tuple[str, str]]:
        func = node.func
        if isinstance(func, ast.Attribute):
            kind = _EMIT_ATTRS.get(func.attr)
            if kind and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and _is_key(arg.value):
                    yield kind, arg.value
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else None
        )
        if name in _DICT_EMITTERS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Dict):
                    for key in arg.keys:
                        if isinstance(key, ast.Constant) and _is_key(
                            key.value
                        ):
                            yield "histogram", key.value

    # ------------------------------------------------------------------
    # closure
    # ------------------------------------------------------------------
    def check_repo(self, modules: Sequence[ParsedModule]) -> Iterator[Finding]:
        """Diff emitted keys against contracted keys, both directions."""
        contracted = self._contracted(modules)
        emitted = self._emitted(modules)
        for kind in ("counter", "gauge", "histogram"):
            for key, sites in sorted(emitted[kind].items()):
                if key not in contracted[kind]:
                    for relpath, line in sites:
                        yield Finding(
                            relpath,
                            line,
                            self.id,
                            f"{kind} key '{key}' is emitted but absent "
                            f"from every pinned {kind} contract tuple — "
                            "add it to the contract (and its "
                            "docs/OPERATIONS.md table) or rename it",
                        )
            for key, (relpath, line) in sorted(contracted[kind].items()):
                if key not in emitted[kind]:
                    yield Finding(
                        relpath,
                        line,
                        self.id,
                        f"{kind} key '{key}' is contracted but no longer "
                        "emitted anywhere in src/ — delete it from the "
                        "contract (and its docs/OPERATIONS.md table) or "
                        "restore the emission",
                    )
