"""Simulated Knowledge Graph service.

Section 3.2: "In order to increase coverage across the many languages for
which this classifier is used, we queried Google's Knowledge Graph for
translations of keywords in ten languages." Graph-based labeling functions
also derive labels from entity/category relationships (Figure 2).

The reproduction is a networkx directed multigraph with typed nodes and
edges:

* ``keyword`` nodes with ``TRANSLATION`` edges (attributed with a language
  code) to translated surface forms,
* ``product`` nodes with ``IS_A`` edges to ``category`` nodes,
* ``brand`` nodes with ``MAKES`` edges to products,
* ``ACCESSORY_OF`` edges from accessory products to category nodes.

The query API covers everything the product-classification labeling
functions need: keyword translation closure, category membership
(including accessories), and brand→product expansion.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.services.base import ModelServer

__all__ = ["KnowledgeGraph"]


class KnowledgeGraph(ModelServer):
    """Entity graph with translation and category-membership queries."""

    #: KG lookups are internal RPCs — fine for offline LF execution, not
    #: part of the cheap servable feature set.
    latency_ms = 12.0
    servable = False

    def __init__(self) -> None:
        super().__init__(name="knowledge-graph")
        self._graph = nx.MultiDiGraph()

    # ------------------------------------------------------------------
    # construction API (used by the dataset world builder)
    # ------------------------------------------------------------------
    def add_category(self, category: str) -> None:
        self._graph.add_node(category.lower(), kind="category")

    def add_product(
        self,
        product: str,
        category: str,
        accessory: bool = False,
    ) -> None:
        """Register a product (or accessory/part) under a category."""
        product_key = product.lower()
        category_key = category.lower()
        if category_key not in self._graph:
            self.add_category(category_key)
        self._graph.add_node(product_key, kind="product", accessory=accessory)
        relation = "ACCESSORY_OF" if accessory else "IS_A"
        self._graph.add_edge(product_key, category_key, relation=relation)

    def add_brand(self, brand: str, products: Iterable[str]) -> None:
        brand_key = brand.lower()
        self._graph.add_node(brand_key, kind="brand")
        for product in products:
            product_key = product.lower()
            if product_key not in self._graph:
                raise KeyError(f"unknown product {product!r}; add it first")
            self._graph.add_edge(brand_key, product_key, relation="MAKES")

    def add_translation(self, keyword: str, language: str, translated: str) -> None:
        """Record that ``keyword`` translates to ``translated`` in ``language``."""
        source = keyword.lower()
        target = translated.lower()
        self._graph.add_node(source, kind=self._graph.nodes.get(source, {}).get("kind", "keyword"))
        self._graph.add_node(target, kind="keyword", language=language)
        self._graph.add_edge(source, target, relation="TRANSLATION", language=language)

    # ------------------------------------------------------------------
    # query API (used by labeling functions)
    # ------------------------------------------------------------------
    def translations(
        self, keyword: str, languages: Iterable[str] | None = None
    ) -> dict[str, str]:
        """Translations of a keyword, as ``{language: surface form}``."""
        self._track()
        wanted = set(languages) if languages is not None else None
        out: dict[str, str] = {}
        key = keyword.lower()
        if key not in self._graph:
            return out
        for _, target, data in self._graph.out_edges(key, data=True):
            if data.get("relation") != "TRANSLATION":
                continue
            language = data.get("language")
            if wanted is None or language in wanted:
                out[language] = target
        return out

    def translation_closure(
        self, keywords: Iterable[str], languages: Iterable[str] | None = None
    ) -> set[str]:
        """All surface forms for a keyword set across languages,
        including the original forms — the exact expansion the
        product-classification KG labeling function performs."""
        surfaces: set[str] = set()
        for keyword in keywords:
            surfaces.add(keyword.lower())
            surfaces.update(self.translations(keyword, languages).values())
        return surfaces

    def products_in_category(
        self, category: str, include_accessories: bool = True
    ) -> set[str]:
        """Products (optionally accessories/parts) filed under a category."""
        self._track()
        category_key = category.lower()
        out: set[str] = set()
        if category_key not in self._graph:
            return out
        for source, _, data in self._graph.in_edges(category_key, data=True):
            relation = data.get("relation")
            if relation == "IS_A":
                out.add(source)
            elif relation == "ACCESSORY_OF" and include_accessories:
                out.add(source)
        return out

    def categories_of(self, product: str) -> set[str]:
        """Categories a product belongs to (IS_A or ACCESSORY_OF)."""
        self._track()
        key = product.lower()
        if key not in self._graph:
            return set()
        return {
            target
            for _, target, data in self._graph.out_edges(key, data=True)
            if data.get("relation") in ("IS_A", "ACCESSORY_OF")
        }

    def is_accessory(self, product: str) -> bool:
        self._track()
        node = self._graph.nodes.get(product.lower())
        return bool(node and node.get("accessory"))

    def products_of_brand(self, brand: str) -> set[str]:
        self._track()
        key = brand.lower()
        if key not in self._graph:
            return set()
        return {
            target
            for _, target, data in self._graph.out_edges(key, data=True)
            if data.get("relation") == "MAKES"
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def node_count(self) -> int:
        return self._graph.number_of_nodes()

    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    def languages(self) -> set[str]:
        """All language codes present on translation edges."""
        return {
            data["language"]
            for _, _, data in self._graph.edges(data=True)
            if data.get("relation") == "TRANSLATION"
        }
