"""Simulated internal semantic topic model.

Section 3.1: "Heuristics based on a topic model maintained internally at
Google. This topic model output semantic categorizations far too
coarse-grained for the targeted task at hand, but which nonetheless could
be used as effective negative labeling heuristics."

The reproduction is a keyword-affinity categorizer over a fixed coarse
taxonomy. Its deliberate *coarseness* is the point: it can say a document
is about ``finance`` or ``entertainment``, never about the fine-grained
target class, so labeling functions use it exactly as the paper does —
to veto obviously-unrelated content.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.services.base import ModelServer
from repro.services.nlp_server import tokenize

__all__ = ["TopicScore", "TopicModel"]


@dataclass
class TopicScore:
    """One coarse category with its affinity score."""

    category: str
    score: float


class TopicModel(ModelServer):
    """Coarse semantic categorization service.

    Parameters
    ----------
    category_keywords:
        Mapping ``category -> keyword list``. Scores are normalized keyword
        hit rates with add-one smoothing; argmax wins. Documents with no
        category hits return an empty result (the real system similarly
        abstains on out-of-domain inputs).
    """

    #: Batch-maintained and applied "generally to incoming content"
    #: (Section 7), i.e. cheap to look up offline but not a real-time
    #: serving signal for new tasks.
    latency_ms = 8.0
    servable = False

    def __init__(self, category_keywords: dict[str, list[str]]) -> None:
        super().__init__(name="topic-model")
        if not category_keywords:
            raise ValueError("topic model needs at least one category")
        self._category_keywords = {
            cat: frozenset(kw.lower() for kw in kws)
            for cat, kws in category_keywords.items()
        }
        # Inverted keyword index for the batch API: token -> categories.
        index: dict[str, tuple[str, ...]] = {}
        for cat, keywords in self._category_keywords.items():
            for keyword in keywords:
                index[keyword] = index.get(keyword, ()) + (cat,)
        self._keyword_index = index

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def categorize(self, text: str, top_k: int = 3) -> list[TopicScore]:
        """Return up to ``top_k`` coarse categories sorted by score."""
        self._track()
        tokens = [t.lower() for t in tokenize(text)]
        if not tokens:
            return []
        token_set = set(tokens)
        scores = []
        for category, keywords in self._category_keywords.items():
            hits = len(token_set & keywords)
            if hits:
                scores.append(TopicScore(category, hits / len(token_set)))
        scores.sort(key=lambda s: (-s.score, s.category))
        return scores[:top_k]

    def top_category(self, text: str) -> str | None:
        """The argmax category, or ``None`` when nothing matches."""
        scores = self.categorize(text, top_k=1)
        return scores[0].category if scores else None

    def top_category_from_tokens(self, lowered_tokens: list[str]) -> str | None:
        """Argmax category for pre-tokenized content (the batch API).

        Callers pass the output of :func:`~repro.services.nlp_server.tokenize`,
        lowercased. Accounting is identical to :meth:`top_category` — one
        tracked call per document — but category affinities come from one
        pass over the tokens through the inverted keyword index instead
        of one set intersection per category. Because every category
        shares the document's token-count denominator, the argmax (and
        its ``(score desc, category asc)`` tie-break) is unchanged; the
        equivalence suite asserts agreement with :meth:`top_category`.
        """
        self._track()
        if not lowered_tokens:
            return None
        index = self._keyword_index
        hits: dict[str, int] = {}
        seen: set[str] = set()
        for token in lowered_tokens:
            cats = index.get(token)
            if cats is not None and token not in seen:
                seen.add(token)
                for cat in cats:
                    hits[cat] = hits.get(cat, 0) + 1
        if not hits:
            return None
        return min(hits, key=lambda cat: (-hits[cat], cat))

    @property
    def categories(self) -> list[str]:
        return sorted(self._category_keywords)

    @property
    def keyword_index(self) -> dict[str, tuple[str, ...]]:
        """Inverted ``keyword -> categories`` index for batch kernels.

        Consumers reading this directly bypass per-call accounting and
        must report usage via :meth:`record_batch_calls`.
        """
        return self._keyword_index
