"""Simulated general-purpose NLP model server.

The paper's ``NLPLabelingFunction`` integrates with "Google's
general-purpose natural language processing (NLP) models", which are "too
computationally expensive to run for all content" — hence launched as a
model server on each MapReduce compute node (Section 5.1). The motivating
code example uses the named-entity-recognition output:

    if (nlp.entities.people.size() == 0) return NEGATIVE;

We reproduce a deterministic lexicon + rule NER tagger that provides the
same interface surface:

* tokenization,
* entity mentions grouped by type (``people``, ``organizations``,
  ``products``, ``locations``) via longest-match lexicon lookup,
* a capitalization fallback for out-of-lexicon person names ("Xx Xx"
  bigrams), mirroring how statistical NER generalizes beyond gazetteers.

The lexicons come from the synthetic world (:mod:`repro.datasets.vocab`),
so entity tags correlate with the latent labels exactly as a real NER
system's tags correlate with topical content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.services.base import ModelServer

__all__ = ["NLPResult", "NLPServer", "tokenize"]


def tokenize(text: str) -> list[str]:
    """Whitespace tokenizer; punctuation is stripped from token edges."""
    tokens = []
    for raw in text.split():
        token = raw.strip(".,;:!?()[]{}\"'")
        if token:
            tokens.append(token)
    return tokens


@dataclass
class NLPResult:
    """Annotation output, shaped like the paper's ``NLPResult``."""

    tokens: list[str] = field(default_factory=list)
    people: list[str] = field(default_factory=list)
    organizations: list[str] = field(default_factory=list)
    products: list[str] = field(default_factory=list)
    locations: list[str] = field(default_factory=list)

    @property
    def entities(self) -> dict[str, list[str]]:
        """Entity mentions grouped by type."""
        return {
            "people": self.people,
            "organizations": self.organizations,
            "products": self.products,
            "locations": self.locations,
        }

    def to_record(self) -> dict[str, object]:
        return {"tokens": self.tokens, **self.entities}


_TYPE_FIELDS = {
    "person": "people",
    "organization": "organizations",
    "product": "products",
    "location": "locations",
}


class NLPServer(ModelServer):
    """Lexicon + rule named-entity tagger behind the model-server protocol.

    Parameters
    ----------
    lexicon:
        Mapping from surface form (possibly multi-token, lowercase) to
        entity type (``person`` / ``organization`` / ``product`` /
        ``location``).
    infer_capitalized_people:
        Enable the "Xx Xx" person fallback rule.
    """

    #: Expensive by construction — this is the canonical non-servable model.
    latency_ms = 40.0
    servable = False

    def __init__(
        self,
        lexicon: dict[str, str] | None = None,
        infer_capitalized_people: bool = True,
    ) -> None:
        super().__init__(name="nlp-server")
        self._raw_lexicon = dict(lexicon or {})
        self._infer_people = infer_capitalized_people
        self._index: dict[str, tuple[str, str]] = {}
        self._max_len = 1

    def _on_start(self) -> None:
        # "Loading the model": build the longest-match lookup index.
        self._index = {}
        self._max_len = 1
        for surface, etype in self._raw_lexicon.items():
            if etype not in _TYPE_FIELDS:
                raise ValueError(f"unknown entity type {etype!r} for {surface!r}")
            key = surface.lower()
            self._index[key] = (surface, etype)
            self._max_len = max(self._max_len, len(key.split()))

    def _on_stop(self) -> None:
        self._index = {}

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def annotate(self, text: str) -> NLPResult:
        """Tokenize and tag entities in ``text``."""
        self._track()
        tokens = tokenize(text)
        result = NLPResult(tokens=tokens)
        lowered = [t.lower() for t in tokens]
        matched = [False] * len(tokens)

        # Longest-match lexicon pass.
        i = 0
        while i < len(tokens):
            hit = None
            for length in range(min(self._max_len, len(tokens) - i), 0, -1):
                candidate = " ".join(lowered[i:i + length])
                entry = self._index.get(candidate)
                if entry is not None:
                    hit = (entry[0], entry[1], length)
                    break
            if hit is None:
                i += 1
                continue
            surface, etype, length = hit
            getattr(result, _TYPE_FIELDS[etype]).append(surface)
            for k in range(i, i + length):
                matched[k] = True
            i += length

        # Capitalization fallback: adjacent unmatched capitalized bigrams
        # are probably person names.
        if self._infer_people:
            for i in range(len(tokens) - 1):
                if matched[i] or matched[i + 1]:
                    continue
                first, second = tokens[i], tokens[i + 1]
                if _looks_like_name(first) and _looks_like_name(second):
                    result.people.append(f"{first} {second}")
                    matched[i] = matched[i + 1] = True
        return result

    def lexicon_size(self) -> int:
        return len(self._raw_lexicon)


def _looks_like_name(token: str) -> bool:
    return len(token) > 1 and token[0].isupper() and token[1:].islower()
