"""Simulated organizational resources.

Section 3 of the paper categorizes the weak-supervision sources used at
Google: source heuristics, content heuristics, model-based signals (NER
taggers, a coarse semantic topic model, existing internal classifiers) and
graph-based signals (the Knowledge Graph, entity-relationship graphs).
Several of these are *non-servable*: "too slow, expensive, or private to
be used in production" (Section 4).

This package reproduces each resource as an in-process service with the
same interface shape: an explicit start/stop lifecycle (model servers are
launched per MapReduce node), per-call virtual latency accounting (so the
servable/non-servable distinction is measurable), and deterministic
behaviour derived from the synthetic world in :mod:`repro.datasets`.
"""

from repro.services.base import (
    ModelServer,
    ServiceStats,
    ServiceUnavailable,
    FlakyServer,
)
from repro.services.nlp_server import NLPResult, NLPServer
from repro.services.topic_model import TopicModel, TopicScore
from repro.services.knowledge_graph import KnowledgeGraph
from repro.services.web_crawler import CrawlResult, WebCrawler
from repro.services.aggregates import AggregateStore

__all__ = [
    "ModelServer",
    "ServiceStats",
    "ServiceUnavailable",
    "FlakyServer",
    "NLPResult",
    "NLPServer",
    "TopicModel",
    "TopicScore",
    "KnowledgeGraph",
    "CrawlResult",
    "WebCrawler",
    "AggregateStore",
]
