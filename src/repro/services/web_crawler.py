"""Simulated web-crawler results service.

Section 4 lists "features obtained with high-latency such as the result of
web crawlers" among the effectively non-servable resources used by content
labeling functions. The reproduction is a deterministic page-profile
service: given a URL, it returns the site's category profile and quality
signal as established by the synthetic world's domain table, plus a large
virtual latency so the cost model makes the non-servability obvious.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.services.base import ModelServer

__all__ = ["CrawlResult", "WebCrawler"]


@dataclass
class CrawlResult:
    """What a crawl of one URL yields."""

    url: str
    domain: str
    site_category: str | None
    quality_score: float
    reachable: bool = True


def domain_of(url: str) -> str:
    """Extract the registrable domain from a URL-ish string.

    >>> domain_of("https://celebdaily.example/a/b")
    'celebdaily.example'
    """
    stripped = url.split("//", 1)[-1]
    return stripped.split("/", 1)[0].lower()


class WebCrawler(ModelServer):
    """High-latency page profiler backed by a domain table.

    Parameters
    ----------
    domain_profiles:
        ``domain -> (site_category, quality_score)`` as built by the
        synthetic world. Unknown domains are reported unreachable with a
        neutral quality score, the way real crawler caches miss.
    """

    #: Crawls are the slowest resource in the pipeline — the canonical
    #: example of a high-latency non-servable signal.
    latency_ms = 800.0
    servable = False

    def __init__(self, domain_profiles: dict[str, tuple[str, float]]) -> None:
        super().__init__(name="web-crawler")
        self._profiles = {
            domain.lower(): (category, float(quality))
            for domain, (category, quality) in domain_profiles.items()
        }

    def crawl(self, url: str) -> CrawlResult:
        """Fetch the page profile for a URL."""
        self._track()
        domain = domain_of(url)
        profile = self._profiles.get(domain)
        if profile is None:
            return CrawlResult(
                url=url,
                domain=domain,
                site_category=None,
                quality_score=0.5,
                reachable=False,
            )
        category, quality = profile
        return CrawlResult(
            url=url,
            domain=domain,
            site_category=category,
            quality_score=quality,
        )

    def known_domains(self) -> int:
        return len(self._profiles)
