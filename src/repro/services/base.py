"""Common machinery for simulated organizational services.

Every service used as weak supervision in the paper is either an RPC
model server (NLP models), a batch-maintained store (aggregate statistics,
topic categorizations), or a graph service (Knowledge Graph). What they
share, and what the labeling-function templates depend on, is:

* a start/stop lifecycle — ``NLPLabelingFunction`` must launch the server
  on each compute node before mapping, and calling a stopped server is a
  bug we want to surface loudly;
* per-call accounting — the servable/non-servable distinction (Section 4)
  is fundamentally a *latency and cost* distinction, so each service
  declares a virtual per-call latency and the harness can report how
  expensive a labeling-function run would have been in production.

Virtual latency is tracked, not slept: simulations stay fast while the
cost model stays visible.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["ServiceUnavailable", "ServiceStats", "ModelServer", "FlakyServer"]


class ServiceUnavailable(Exception):
    """Raised when calling a service that is not running."""


@dataclass
class ServiceStats:
    """Accumulated usage accounting for one service instance."""

    calls: int = 0
    virtual_latency_ms: float = 0.0
    starts: int = 0
    stops: int = 0
    failures: int = 0

    def record_call(self, latency_ms: float) -> None:
        self.calls += 1
        self.virtual_latency_ms += latency_ms


class ModelServer:
    """Base class for all simulated services.

    Subclasses implement their domain API and wrap each entry point in
    :meth:`_track`, which enforces the lifecycle and accumulates virtual
    latency. ``latency_ms`` is the per-call cost; non-servable services
    have large values (an NLP annotation is ~40ms, a crawl ~800ms) while
    servable signals are micro-second scale.
    """

    #: Virtual per-call latency in milliseconds; subclasses override.
    latency_ms: float = 1.0

    #: Whether this resource could be called in the serving path
    #: (Section 4). Non-servable services must never be reachable from
    #: the production server; ``repro.serving.server`` enforces this.
    servable: bool = False

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__
        self.stats = ServiceStats()
        self._running = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring the service up (idempotent)."""
        with self._lock:
            if not self._running:
                self._running = True
                self.stats.starts += 1
                self._on_start()

    def stop(self) -> None:
        """Shut the service down (idempotent)."""
        with self._lock:
            if self._running:
                self._running = False
                self.stats.stops += 1
                self._on_stop()

    @property
    def running(self) -> bool:
        return self._running

    def _on_start(self) -> None:
        """Subclass hook: load models, open stores."""

    def _on_stop(self) -> None:
        """Subclass hook: release resources."""

    # ------------------------------------------------------------------
    # call accounting
    # ------------------------------------------------------------------
    def _track(self) -> None:
        """Record one call; raise if the service is not running."""
        if not self._running:
            self.stats.failures += 1
            raise ServiceUnavailable(
                f"{self.name} called while stopped; NLP-style services must "
                f"be started on each compute node before use"
            )
        self.stats.record_call(self.latency_ms)

    def record_batch_calls(self, n: int) -> None:
        """Account ``n`` logical calls made through a batch integration.

        Fused batch kernels read service state directly (e.g. the topic
        model's inverted keyword index) instead of calling the scalar
        API once per document; this keeps the cost model honest by
        recording exactly what ``n`` sequential calls would have.
        """
        if n < 0:
            raise ValueError(f"call count must be non-negative, got {n}")
        if not self._running:
            self.stats.failures += 1
            raise ServiceUnavailable(
                f"{self.name} called while stopped; NLP-style services must "
                f"be started on each compute node before use"
            )
        self.stats.calls += n
        self.stats.virtual_latency_ms += n * self.latency_ms

    def __enter__(self) -> "ModelServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class FlakyServer(ModelServer):
    """Failure-injection wrapper: fails every ``fail_every``-th call.

    Used by tests to verify that MapReduce retries recover from transient
    model-server failures (a routine occurrence in the production setting
    the paper describes).
    """

    def __init__(self, inner: ModelServer, fail_every: int) -> None:
        super().__init__(name=f"flaky({inner.name})")
        if fail_every < 1:
            raise ValueError("fail_every must be >= 1")
        self._inner = inner
        self._fail_every = fail_every
        self._counter = 0
        self.latency_ms = inner.latency_ms
        self.servable = inner.servable

    def _on_start(self) -> None:
        self._inner.start()

    def _on_stop(self) -> None:
        self._inner.stop()

    def call(self, method: str, *args, **kwargs):
        """Proxy a method call to the wrapped service, injecting faults."""
        self._track()
        self._counter += 1
        if self._counter % self._fail_every == 0:
            self.stats.failures += 1
            raise ServiceUnavailable(f"{self.name}: injected transient failure")
        return getattr(self._inner, method)(*args, **kwargs)
