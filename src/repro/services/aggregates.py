"""Simulated offline aggregate-statistics store.

Section 3.3: for real-time event classification, "a common approach is to
classify events based on offline (or non-servable) features such as
aggregate statistics and relationship graphs. However, this approach
induces latency between when an event occurs and when it is identified."

The reproduction is a batch-updated key/value store mapping an entity key
(an event source) to a vector of monthly aggregate statistics. Reads are
cheap but the *data* is stale by construction — the store records the
batch timestamp each key was computed at, so experiments can reason about
the detection-latency gap the paper motivates. The serving layer refuses
to read it (it is non-servable), which is exactly why the cross-feature
transfer to real-time features matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.services.base import ModelServer

__all__ = ["AggregateStore", "AggregateRow"]


@dataclass
class AggregateRow:
    """Aggregate statistics for one source entity."""

    key: str
    stats: dict[str, float]
    batch_id: int


class AggregateStore(ModelServer):
    """Batch-maintained aggregate statistics, keyed by source entity."""

    latency_ms = 5.0
    servable = False

    def __init__(self) -> None:
        super().__init__(name="aggregate-store")
        self._rows: dict[str, AggregateRow] = {}
        self._batch_id = 0

    # ------------------------------------------------------------------
    # batch-update API (dataset generator / offline jobs)
    # ------------------------------------------------------------------
    def load_batch(self, rows: Mapping[str, Mapping[str, float]]) -> int:
        """Replace/insert aggregates for the given keys; returns batch id."""
        self._batch_id += 1
        for key, stats in rows.items():
            self._rows[key] = AggregateRow(
                key=key,
                stats={name: float(v) for name, v in stats.items()},
                batch_id=self._batch_id,
            )
        return self._batch_id

    # ------------------------------------------------------------------
    # read API (labeling functions)
    # ------------------------------------------------------------------
    def lookup(self, key: str) -> AggregateRow | None:
        """Fetch aggregates for one source; ``None`` when never aggregated
        (new sources have no history — an inherent weakness of the
        offline approach that the real-time model fixes)."""
        self._track()
        return self._rows.get(key)

    def stat(self, key: str, name: str, default: float = 0.0) -> float:
        """Read one named statistic with a default."""
        row = self.lookup(key)
        if row is None:
            return default
        return row.stats.get(name, default)

    def keys(self) -> list[str]:
        return sorted(self._rows)

    def staleness(self, key: str) -> int | None:
        """How many batches old this key's aggregates are."""
        row = self._rows.get(key)
        if row is None:
            return None
        return self._batch_id - row.batch_id

    def bulk_lookup(self, keys: Iterable[str]) -> dict[str, AggregateRow]:
        """Vector read used by graph-based labeling functions."""
        out = {}
        for key in keys:
            row = self.lookup(key)
            if row is not None:
                out[key] = row
        return out
