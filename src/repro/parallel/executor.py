"""The shared process-pool labeling executor.

One :class:`ParallelLabelExecutor` serves both hot paths:

* the offline applier submits example blocks and drains votes in block
  order (:meth:`label_blocks` / :meth:`label_examples`);
* the streaming pipeline submits micro-batches from its ingest thread
  and drains completions from its consumer thread
  (:meth:`submit` / :meth:`next_completed`), reassembling sink order
  itself.

Execution model
---------------
Each worker process runs :func:`_worker_init` once: rebuild the LF suite
from the picklable :class:`~repro.parallel.spec.LFSuiteSpec`, start its
offline resources, and precompute the fused-spec columns — the per-node
setup hook of the MapReduce engine, translated to processes. Tasks are
``(seq, record-codec block bytes)``; the worker decodes, runs the same
:func:`repro.lf.applier.label_example_block` kernel as a serial run, and
returns the ``int8`` vote block plus its labeling wall time.

Ordering is restored by the caller-visible APIs: every task carries its
sequence number, completions may arrive in any order, and
:meth:`label_blocks` yields strictly by sequence — so a parallel run's
votes are positionally identical to a serial run at any worker count.

Failure model
-------------
A task that raises retries on the (respawned) pool; a worker that *dies*
breaks the whole pool (`concurrent.futures` semantics), so the executor
rebuilds the pool and resubmits every in-flight task, charging each one
attempt. A task whose attempts exceed ``max_retries`` surfaces as
:class:`repro.mapreduce.runner.WorkerFailure` — the same exception the
MapReduce engine uses for exhausted map-task retries.

The default start method is ``fork`` where available: workers inherit
the parent's warmed module state (dataset caches, matcher tables), so
pool spin-up is milliseconds. The spec-driven bootstrap keeps ``spawn``
correct too, just slower on first build.
"""

from __future__ import annotations

import math
import os
import queue as queue_module
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
)
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import multiprocessing
import numpy as np

from repro.mapreduce.runner import WorkerFailure
from repro.obs.histogram import (
    Histogram,
    decode_histograms,
    encode_histograms,
)
from repro.parallel.spec import (
    LFSuiteSpec,
    decode_example_block,
    encode_example_block,
)
from repro.types import Example

__all__ = [
    "ParallelLabelExecutor",
    "default_workers",
    "parallel_block_size",
    "DEFAULT_MAX_RETRIES",
]

#: Retry budget per block, matching ``MapReduceSpec.max_retries``.
DEFAULT_MAX_RETRIES = 2

#: Environment knob: default worker count for benches and examples.
WORKERS_ENV = "REPRO_WORKERS"


def default_workers(fallback: int = 4) -> int:
    """Worker count from ``REPRO_WORKERS``, else ``fallback``."""
    value = os.environ.get(WORKERS_ENV)
    if not value:
        return fallback
    workers = int(value)
    if workers < 1:
        raise ValueError(f"{WORKERS_ENV} must be >= 1, got {workers}")
    return workers


def parallel_block_size(
    n_examples: int, workers: int, batch_size: int
) -> int:
    """Deterministic block size for sharding ``n_examples`` over workers.

    Aim for a few blocks per worker so encode (serial, parent side)
    pipelines with labeling (parallel, worker side) and a straggler
    block costs a fraction of the run, while never exceeding the
    caller's ``batch_size``. Pure function of its arguments — the same
    inputs always shard the same way.
    """
    if n_examples <= 0:
        return batch_size
    target = math.ceil(n_examples / max(1, workers * 4))
    return max(1, min(batch_size, max(256, target)))


# ----------------------------------------------------------------------
# worker side (runs in the pool processes)
# ----------------------------------------------------------------------
_WORKER_LFS = None
_WORKER_FUSED: list[int] | None = None


def _worker_init(spec: LFSuiteSpec) -> None:
    """Per-process bootstrap: rebuild the suite, start resources."""
    global _WORKER_LFS, _WORKER_FUSED
    from repro.lf.applier import fused_lf_columns, start_lf_resources

    _WORKER_LFS = spec.build()
    _WORKER_FUSED = fused_lf_columns(_WORKER_LFS)
    start_lf_resources(_WORKER_LFS)


def _worker_warm() -> bool:
    """No-op task used to force worker processes into existence."""
    return True


def _worker_label(
    seq: int, blob: bytes, kill: bool, collect: bool
) -> tuple[int, tuple[int, int], bytes, int, bytes | None]:
    """Label one block; returns ``(seq, shape, vote bytes, label_us, stats)``.

    ``kill=True`` is the crash-injection hook: the process exits without
    cleanup, exactly what an OOM-killed or preempted worker looks like
    to the parent (a broken pool, not an exception).

    ``collect=True`` additionally returns worker-side stage histograms
    (:data:`repro.obs.HISTOGRAM_CONTRACT` ``worker/*`` keys) encoded
    with :func:`repro.obs.histogram.encode_histograms` — telemetry rides
    the existing bytes-only IPC and never touches the vote payload.
    """
    if kill:
        os._exit(1)
    from repro.lf.applier import label_example_block

    decode_start = time.perf_counter()
    examples = decode_example_block(blob)
    decode_us = int((time.perf_counter() - decode_start) * 1e6)
    start = time.perf_counter()
    votes = label_example_block(_WORKER_LFS, examples, _WORKER_FUSED)
    label_us = int((time.perf_counter() - start) * 1e6)
    stats: bytes | None = None
    if collect:
        decode_hist = Histogram()
        decode_hist.record(decode_us)
        label_hist = Histogram()
        label_hist.record(label_us)
        stats = encode_histograms(
            {
                "worker/decode_us": decode_hist,
                "worker/label_us": label_hist,
            }
        )
    return seq, votes.shape, votes.tobytes(), label_us, stats


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@dataclass
class _Inflight:
    """One submitted block: payload kept for retries, examples for sinks."""

    blob: bytes
    examples: list[Example]
    attempts: int = 0
    future: Future | None = field(default=None, repr=False)


class ParallelLabelExecutor:
    """Labels example blocks on a pool of worker processes.

    Thread contract: :meth:`submit` may run on one producer thread while
    :meth:`next_completed` runs on one consumer thread (the streaming
    wiring); internal state is lock-protected. The convenience drivers
    :meth:`label_blocks` / :meth:`label_examples` do both from the
    calling thread.
    """

    def __init__(
        self,
        suite_spec: LFSuiteSpec,
        workers: int,
        max_retries: int = DEFAULT_MAX_RETRIES,
        start_method: str | None = None,
        telemetry=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.suite_spec = suite_spec
        self.workers = workers
        self.max_retries = max_retries
        #: Optional :class:`repro.obs.MetricsRegistry`. When set, each
        #: completed block folds its worker-side histograms in and the
        #: ``parallel/blocks`` / ``parallel/retries`` /
        #: ``parallel/pool_restarts`` counters track the run; when None
        #: the workers skip collection entirely.
        self.telemetry = telemetry
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._mp_context = multiprocessing.get_context(start_method)
        self._pool: ProcessPoolExecutor | None = None
        #: Guards pool construction/teardown: submit (producer thread)
        #: and retry (consumer thread) may race through a crash, and
        #: exactly one of them must rebuild the pool.
        self._pool_lock = threading.Lock()
        self._pool_generation = 0
        self._lock = threading.Lock()
        self._inflight: dict[int, _Inflight] = {}
        self._done_q: queue_module.Queue[tuple[int, Future]] = (
            queue_module.Queue()
        )
        self._kill_plan: dict[int, int] = {}
        self._pool_restarts = 0
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ParallelLabelExecutor":
        """Spin the pool up eagerly (otherwise lazy on first submit)."""
        self._ensure_pool()
        return self

    def close(self) -> None:
        """Shut the pool down; the executor cannot be reused after."""
        self._closed = True
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def reset(self) -> int:
        """Drop every in-flight block; returns how many were dropped.

        After a failed run (sink exception, :class:`WorkerFailure`) a
        *shared* executor still tracks the dead run's blocks, which
        would collide with — or hang — the next run. Callers that own
        their executor simply close it; callers reusing a warm pool
        reset it between runs (the parallel pipeline does this for the
        ``executor=`` case). Results of dropped blocks that are still
        executing arrive later as stale notifications and are ignored.
        """
        with self._lock:
            dropped = len(self._inflight)
            self._inflight.clear()
        while True:
            try:
                self._done_q.get_nowait()
            except queue_module.Empty:
                break
        return dropped

    def __enter__(self) -> "ParallelLabelExecutor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def pool_restarts(self) -> int:
        """How many times a dead worker forced a pool rebuild."""
        return self._pool_restarts

    def pending(self) -> int:
        """Blocks submitted but not yet drained by the caller."""
        with self._lock:
            return len(self._inflight)

    # ------------------------------------------------------------------
    # failure injection (tests and benchmarks only)
    # ------------------------------------------------------------------
    def kill_worker_on(self, seq: int, attempts: int = 1) -> None:
        """Make the first ``attempts`` executions of block ``seq`` die.

        The worker process exits hard (``os._exit``) — the parent sees a
        broken pool, rebuilds it, and retries, which is the failure
        envelope the worker-crash tests assert byte-identity across.
        """
        self._kill_plan[seq] = attempts

    # ------------------------------------------------------------------
    # submission / completion (the streaming-facing API)
    # ------------------------------------------------------------------
    def submit(self, seq: int, examples: Sequence[Example]) -> None:
        """Encode one block through the record codec and dispatch it."""
        if self._closed:
            raise RuntimeError("executor already closed")
        examples = list(examples)
        entry = _Inflight(
            blob=encode_example_block(examples), examples=examples
        )
        with self._lock:
            if seq in self._inflight:
                raise ValueError(f"block {seq} already in flight")
            self._inflight[seq] = entry
        try:
            self._dispatch(seq, entry)
        except BaseException:
            # Never leave a block registered with no future: nothing
            # would ever complete it, so pending() could not drain and
            # a consumer waiting on it would hang instead of seeing
            # this error.
            with self._lock:
                self._inflight.pop(seq, None)
            raise

    def next_completed(
        self, timeout: float | None = None
    ) -> tuple[int, list[Example], np.ndarray, int]:
        """Return any finished block: ``(seq, examples, votes, label_us)``.

        Blocks until a completion arrives (``queue.Empty`` after
        ``timeout``). Failed attempts are retried transparently;
        exhausted budgets raise :class:`WorkerFailure`.
        """
        while True:
            seq, future = self._done_q.get(timeout=timeout)
            with self._lock:
                entry = self._inflight.get(seq)
            if entry is None or entry.future is not future:
                continue  # stale notification from a superseded attempt
            try:
                error = future.exception()
            except CancelledError as cancelled:
                # A future caught mid-restart; treat like a crashed
                # attempt and let the retry budget decide.
                error = cancelled
            if error is None:
                _, shape, blob, label_us, stats = future.result()
                votes = (
                    np.frombuffer(blob, dtype=np.int8).reshape(shape).copy()
                )
                with self._lock:
                    del self._inflight[seq]
                if self.telemetry is not None:
                    if stats is not None:
                        for name, hist in decode_histograms(stats).items():
                            self.telemetry.histogram(
                                name, growth=hist.growth
                            ).merge(hist)
                    self.telemetry.counter("parallel/blocks")
                return seq, entry.examples, votes, label_us
            entry.attempts += 1
            if entry.attempts > self.max_retries:
                raise WorkerFailure(
                    f"parallel labeling block {seq} failed after "
                    f"{entry.attempts} attempts"
                ) from error
            if self.telemetry is not None:
                self.telemetry.counter("parallel/retries")
            self._dispatch(seq, entry)

    # ------------------------------------------------------------------
    # convenience drivers (the offline-facing API)
    # ------------------------------------------------------------------
    def label_blocks(
        self,
        blocks: Iterable[tuple[int, Sequence[Example]]],
        window: int | None = None,
    ) -> Iterator[tuple[int, list[Example], np.ndarray]]:
        """Label ``(seq, examples)`` blocks; yield in *submission* order.

        At most ``window`` blocks are in flight at once (default
        ``2 * workers + 2``), so encoding pipelines with labeling while
        memory stays bounded. Sequence numbers must be unique; blocks
        are emitted in exactly the order they were submitted regardless
        of worker completion order (ascending seqs in = ascending seqs
        out, which is how :meth:`label_examples` restores row order).
        On any failure the executor's in-flight state is reset so a
        warm pool can be reused for the next run.
        """
        if window is None:
            window = 2 * self.workers + 2
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        pending_out: dict[int, tuple[list[Example], np.ndarray]] = {}
        submitted: list[int] = []
        next_out = 0  # index into ``submitted`` of the next block to emit
        source = iter(blocks)
        exhausted = False
        try:
            while True:
                while not exhausted and self.pending() < window:
                    item = next(source, None)
                    if item is None:
                        exhausted = True
                        break
                    seq, examples = item
                    self.submit(seq, examples)
                    submitted.append(seq)
                if exhausted and not self.pending():
                    break
                seq, examples, votes, _ = self.next_completed()
                pending_out[seq] = (examples, votes)
                # Emit the longest ready prefix in submission order.
                while (
                    next_out < len(submitted)
                    and submitted[next_out] in pending_out
                ):
                    head = submitted[next_out]
                    examples, votes = pending_out.pop(head)
                    next_out += 1
                    yield head, examples, votes
        except BaseException:
            self.reset()
            raise

    def label_examples(
        self,
        examples: Sequence[Example],
        block_size: int,
    ) -> np.ndarray:
        """Label a flat example list; returns the ``(n, m)`` int8 matrix.

        The parallel counterpart of the serial block loop in
        :func:`repro.lf.applier.apply_lfs_in_memory`: identical votes,
        restored to input order via block offsets.
        """
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        examples = list(examples)
        n = len(examples)
        offsets = list(range(0, n, block_size))

        def blocks() -> Iterator[tuple[int, Sequence[Example]]]:
            for seq, start in enumerate(offsets):
                yield seq, examples[start:start + block_size]

        if not offsets:
            # Width is unknowable without a worker round-trip; callers
            # handle the empty case with their own LF count.
            return np.zeros((0, 0), dtype=np.int8)
        parts: list[np.ndarray | None] = [None] * len(offsets)
        for seq, _, votes in self.label_blocks(blocks()):
            parts[seq] = votes
        return np.vstack(parts)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> tuple[ProcessPoolExecutor, int]:
        """The live pool plus its generation (for restart arbitration)."""
        with self._pool_lock:
            if self._closed:
                # A resurrected pool would leak its workers: submit()
                # refuses closed executors, so nothing could ever drain
                # or shut it down.
                raise RuntimeError("executor already closed")
            if self._pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=self._mp_context,
                    initializer=_worker_init,
                    initargs=(self.suite_spec,),
                )
                # ProcessPoolExecutor forks workers lazily at submit
                # time; force them ALL into existence now, while the
                # creating thread is the only one running executor work
                # — forking later, mid-run, from whichever thread
                # happens to submit is exactly the fork-with-live-
                # threads hazard start() promises to avoid (and cold
                # workers would otherwise pay suite bootstrap inside
                # the first timed/labeled blocks).
                try:
                    warm = [
                        pool.submit(_worker_warm)
                        for _ in range(self.workers)
                    ]
                    for future in warm:
                        future.result()
                except BaseException:
                    # A failing initializer (unimportable spec, factory
                    # error) breaks the pool during warm-up; tear it
                    # down so the dispatch retry loop sees a clean
                    # slate and can surface WorkerFailure.
                    pool.shutdown(wait=False, cancel_futures=True)
                    self._pool_generation += 1
                    raise
                self._pool = pool
            return self._pool, self._pool_generation

    def _restart_pool(self, generation: int) -> None:
        """Replace the pool — but only if ``generation`` is still live.

        Both the producer and consumer threads can observe the same
        broken pool; the generation check makes the second observer a
        no-op instead of tearing down the replacement the first one
        just built (which would cancel freshly resubmitted work).
        """
        with self._pool_lock:
            if generation != self._pool_generation:
                return  # another thread already rebuilt this pool
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            self._pool_generation += 1
            self._pool_restarts += 1
            if self.telemetry is not None:
                self.telemetry.counter("parallel/pool_restarts")

    def _dispatch(self, seq: int, entry: _Inflight) -> None:
        kill = entry.attempts < self._kill_plan.get(seq, 0)
        future: Future | None = None
        last_error: BaseException | None = None
        for _ in range(2):
            generation: int | None = None
            try:
                pool, generation = self._ensure_pool()
                future = pool.submit(
                    _worker_label,
                    seq,
                    entry.blob,
                    kill,
                    self.telemetry is not None,
                )
                break
            except BrokenExecutor as error:
                last_error = error
                if generation is not None:
                    self._restart_pool(generation)
        if future is None:
            raise WorkerFailure(
                f"could not dispatch block {seq}: worker pool keeps dying"
            ) from last_error
        entry.future = future
        future.add_done_callback(
            lambda f, seq=seq: self._done_q.put((seq, f))
        )
