"""Process-pool parallel labeling.

Single-process Python caps both hot paths: the vectorized in-memory
applier (PR 1) and the micro-batch streaming pipeline (PRs 2-3) label on
exactly one thread, and the GIL keeps LF suites CPU-bound there no
matter how many threads the simulator spreads map tasks over. This
package shards *example blocks* across worker processes instead — the
paper's actual deployment shape, where labeling functions run on
"Google's distributed compute environment" as many independent workers
over record shards.

The design keeps the repository's core invariant — byte identity with
the serial path — by construction:

* workers never receive live Python objects: the LF suite is rebuilt in
  each worker from a picklable :class:`LFSuiteSpec` (an importable
  factory reference), and examples round-trip through the existing DFS
  record codec (:func:`encode_example_block` /
  :func:`decode_example_block`), exactly the bytes a staged shard would
  hold;
* every block carries a sequence number and the parent reassembles
  results strictly in sequence order, so votes, sink shards, and
  posteriors are bit-exact with a serial run at any worker count;
* a worker crash is retried on a fresh process up to a bounded budget
  and surfaces as :class:`repro.mapreduce.runner.WorkerFailure` when
  exhausted — the same failure contract as the MapReduce engine.

Consumers: ``repro.lf.applier.apply_lfs_in_memory(workers=N)`` and
``repro.streaming.pipeline.MicroBatchPipeline(workers=N)``.
"""

from repro.parallel.executor import (
    DEFAULT_MAX_RETRIES,
    ParallelLabelExecutor,
    default_workers,
    parallel_block_size,
)
from repro.parallel.spec import (
    LFSuiteSpec,
    decode_example_block,
    encode_example_block,
)

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "LFSuiteSpec",
    "ParallelLabelExecutor",
    "decode_example_block",
    "default_workers",
    "encode_example_block",
    "parallel_block_size",
]
