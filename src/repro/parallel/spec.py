"""Picklable descriptions of what a labeling worker needs.

Labeling functions are not picklable — they close over matcher lambdas,
knowledge-graph translation closures, and lazily started model servers.
What *is* picklable is the recipe that built them: an importable factory
plus its arguments. :class:`LFSuiteSpec` carries that recipe across the
process boundary and each worker rebuilds its own private suite from it,
the in-process analogue of shipping the LF binary to a compute node.

Examples cross the boundary the same way they cross the simulated
distributed filesystem: framed through the record codec
(:func:`repro.dfs.records.encode_record`), CRC and all. A parallel run
therefore exercises exactly the serialization a staged shard would —
if an example survives staging, it survives the worker round-trip, and
the worker decodes the same bytes a fresh MapReduce task would read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Sequence

from repro.dfs.records import decode_records, encode_record
from repro.lf.base import AbstractLabelingFunction
from repro.types import Example

__all__ = ["LFSuiteSpec", "encode_example_block", "decode_example_block"]


@dataclass(frozen=True)
class LFSuiteSpec:
    """An importable recipe for one LF suite: ``module:callable`` + args.

    The factory must be addressable by name from a bare interpreter
    (module-level function or classmethod path), and must be
    deterministic: two processes building from the same spec must
    produce suites that vote identically — that is the whole byte-parity
    argument for parallel labeling. Keyword values must themselves be
    picklable (strings, numbers, tuples).
    """

    factory: str
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if ":" not in self.factory:
            raise ValueError(
                f"factory must be 'module:callable', got {self.factory!r}"
            )

    def build(self) -> list[AbstractLabelingFunction]:
        """Import the factory and construct the suite."""
        module_name, _, attr_path = self.factory.partition(":")
        target = import_module(module_name)
        for part in attr_path.split("."):
            target = getattr(target, part)
        lfs = target(*self.args, **self.kwargs)
        return list(lfs)


def encode_example_block(examples: Sequence[Example]) -> bytes:
    """Frame a block of examples with the DFS record codec."""
    return b"".join(encode_record(e.to_record()) for e in examples)


def decode_example_block(blob: bytes) -> list[Example]:
    """Inverse of :func:`encode_example_block` (CRCs verified)."""
    return [Example.from_record(record) for record in decode_records(blob)]
