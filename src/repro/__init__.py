"""repro — a from-scratch reproduction of Snorkel DryBell.

Snorkel DryBell (Bach et al., SIGMOD 2019) is a weak-supervision
management system deployed at Google: engineers encode organizational
knowledge (internal models, knowledge graphs, heuristics) as labeling
functions; a sampling-free generative model denoises and combines their
votes into probabilistic training labels; and a discriminative model over
*servable* features is trained on those labels and staged for production.

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.core` — the generative label model and baselines,
* :mod:`repro.lf` — the labeling-function template library,
* :mod:`repro.dfs` / :mod:`repro.mapreduce` — the distributed substrate,
* :mod:`repro.services` — simulated organizational resources,
* :mod:`repro.discriminative` / :mod:`repro.serving` — end models + TFX,
* :mod:`repro.datasets` / :mod:`repro.applications` — the three case
  studies from the paper,
* :mod:`repro.pipeline` — end-to-end orchestration (Figure 4),
* :mod:`repro.experiments` — the table/figure reproduction harness.

Quickstart::

    import numpy as np
    from repro.core import SamplingFreeLabelModel

    L = np.array([[1, 0, -1], [1, 1, 0], [-1, -1, -1]])
    model = SamplingFreeLabelModel().fit(L)
    probabilistic_labels = model.predict_proba(L)
"""

from repro.types import ABSTAIN, NEGATIVE, POSITIVE, Example, LabelMatrix, LFVote

__version__ = "1.0.0"

__all__ = [
    "ABSTAIN",
    "NEGATIVE",
    "POSITIVE",
    "Example",
    "LabelMatrix",
    "LFVote",
    "__version__",
]
