"""Matrix-factorization-style label-model plug-in.

Section 5.2: "It is also possible to directly plug-in matrix factorization
models of the kind recently used for denoising labeling functions [31] as
TensorFlow model functions." Reference [31] is Ratner et al., *Training
Complex Models with Multi-Task Weak Supervision* (AAAI 2019), whose core
estimator recovers LF accuracies from the low-rank structure of the label
matrix's second moments, without any gradient-based likelihood fitting.

We implement the closed-form **triplet** instantiation: under conditional
independence and a roughly balanced prior, the polarized agreement rates
``O_jk = E[lambda_j lambda_k | both vote]`` factor as ``O_jk = a_j a_k``
with ``a_j = E[lambda_j Y | lambda_j != 0] = 2 acc_j - 1``, so any triplet
``(j, k, l)`` determines ``|a_j| = sqrt(|O_jk O_jl / O_kl|)``. We estimate
each ``|a_j|`` as the median over all usable triplets, resolve signs under
the standard better-than-random-majority assumption, and convert to the
same posterior form the gradient-trained model uses.

This estimator is dramatically faster than even the sampling-free
gradient trainer (one pass over the matrix plus O(n^3) scalar work) and
serves as the "plug-in" alternative the paper gestures at; the ablation
benchmark compares all three trainers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TripletLabelModel"]


class TripletLabelModel:
    """Closed-form method-of-moments label model (binary)."""

    def __init__(
        self,
        min_overlap: int = 10,
        min_agreement: float = 0.02,
        accuracy_clip: tuple[float, float] = (0.05, 0.95),
    ) -> None:
        self.min_overlap = min_overlap
        self.min_agreement = min_agreement
        self.accuracy_clip = accuracy_clip
        self.a: np.ndarray | None = None  # E[lambda Y | non-abstain]

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def fit(self, L: np.ndarray) -> "TripletLabelModel":
        L = np.asarray(L, dtype=np.float64)
        m, n = L.shape
        if n < 3:
            raise ValueError("the triplet estimator needs at least 3 LFs")

        # Pairwise polarized agreement on co-voting examples.
        O = np.full((n, n), np.nan)
        for j in range(n):
            for k in range(j + 1, n):
                both = (L[:, j] != 0) & (L[:, k] != 0)
                if both.sum() >= self.min_overlap:
                    O[j, k] = O[k, j] = float(
                        (L[both, j] * L[both, k]).mean()
                    )

        lo, hi = self.accuracy_clip
        a_lo, a_hi = 2 * lo - 1, 2 * hi - 1
        estimates: list[list[float]] = [[] for _ in range(n)]
        for j in range(n):
            for k in range(n):
                if k == j or np.isnan(O[j, k]):
                    continue
                for l in range(k + 1, n):
                    if l == j or np.isnan(O[j, l]) or np.isnan(O[k, l]):
                        continue
                    if abs(O[k, l]) < self.min_agreement:
                        continue
                    value = O[j, k] * O[j, l] / O[k, l]
                    if value < 0:
                        continue
                    estimates[j].append(float(np.sqrt(value)))

        magnitude = np.empty(n)
        for j in range(n):
            if estimates[j]:
                magnitude[j] = float(np.median(estimates[j]))
            else:
                # Isolated LF: fall back to a weakly-informative default.
                magnitude[j] = 0.2
        magnitude = np.clip(magnitude, 0.0, abs(a_hi))

        signs = self._resolve_signs(O, magnitude)
        self.a = np.clip(signs * magnitude, a_lo, a_hi)
        return self

    def _resolve_signs(self, O: np.ndarray, magnitude: np.ndarray) -> np.ndarray:
        """Choose per-LF signs consistent with observed agreements.

        ``sign(O_jk) = sign(a_j) * sign(a_k)``: build a graph coloring by
        greedy propagation from the highest-|a| LF, then orient globally
        so that the majority of LFs are better than random.
        """
        n = len(magnitude)
        signs = np.zeros(n)
        order = np.argsort(-magnitude)
        for seed in order:
            if signs[seed] != 0:
                continue
            signs[seed] = 1.0
            frontier = [seed]
            while frontier:
                j = frontier.pop()
                for k in range(n):
                    if signs[k] != 0 or np.isnan(O[j, k]):
                        continue
                    if abs(O[j, k]) < self.min_agreement:
                        continue
                    signs[k] = signs[j] * np.sign(O[j, k])
                    frontier.append(k)
        signs[signs == 0] = 1.0
        if (signs > 0).sum() < n / 2:
            signs = -signs
        return signs

    # ------------------------------------------------------------------
    # inference (same posterior form as the likelihood-trained model)
    # ------------------------------------------------------------------
    def accuracies(self) -> np.ndarray:
        """``P(correct | non-abstain)`` per LF: ``(1 + a_j) / 2``."""
        self._check_fitted()
        return (1.0 + self.a) / 2.0

    def predict_proba(self, L: np.ndarray, prior: float = 0.5) -> np.ndarray:
        """Posterior under conditional independence with the estimated
        accuracies: each non-abstain vote contributes
        ``lambda * logit(acc)`` to the log-odds."""
        self._check_fitted()
        L = np.asarray(L, dtype=np.float64)
        acc = np.clip(self.accuracies(), 1e-4, 1 - 1e-4)
        weights = np.log(acc / (1.0 - acc))
        prior = min(max(prior, 1e-9), 1 - 1e-9)
        scores = L @ weights + np.log(prior / (1 - prior))
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))

    def _check_fitted(self) -> None:
        if self.a is None:
            raise RuntimeError("model is not fitted; call fit() first")
