"""Moment-based drift detection for streaming weak supervision.

DryBell's premise is labeling *non-stationary* organizational traffic:
content shifts, signals rot, and an LF suite that was accurate last
month quietly degrades (the paper's Section 3.3 diagnostics exist
precisely because "previously unknown low-quality sources" keep
appearing). A continuously running stream therefore needs an alarm that
fires when the vote distribution moves — *before* anyone inspects an
end-model metric — and a policy for what to do when it does.

The monitor here reads the same cheap streaming vote moments the
:class:`~repro.core.online_label_model.OnlineLabelModel` already
maintains, but split into two tracked windows:

* a **reference window** — the first ``reference_batches`` micro-batches
  after start (or after a reference reset), aggregated once and then
  frozen: the regime the stream is assumed to be in;
* a **recent window** — a rolling window over the last
  ``recent_batches`` micro-batches: the regime the stream is actually
  in.

Per finalized micro-batch the monitor compares the two windows over
three moment families — per-LF mean votes ``E[lambda_j]`` (class-balance
and polarity shifts), per-LF fire rates ``P(lambda_j != 0)`` (coverage
shifts), and the pairwise agreement matrix ``E[lambda_j lambda_k]``
(correlation-structure shifts) — as pooled two-sample z statistics. The
**shift score** is the maximum absolute z over every tracked statistic;
an alarm fires when it exceeds ``threshold``. Because each statistic is
normalized by its pooled sampling variance, the score is ~O(1) on a
stationary stream regardless of batch size or LF count, so a single
threshold works across workloads.

Reactions are pluggable (``DriftPolicy.reactions``): ``"log"`` only
counts the alarm, ``"refit"`` invokes a caller-supplied callback
(wired to :meth:`OnlineLabelModel.refit` by
:class:`repro.streaming.checkpoint.CheckpointedStream`, forcing an early
refit so the model re-estimates from recency-weighted votes), and
``"reset_reference"`` adopts the recent window as the new reference —
the stream is declared to be in a new regime and stops re-alarming on
the same shift.

All monitor state snapshots bit-exactly (:meth:`DriftMonitor.state_dict`)
so checkpoint manifests can restore it and a resumed stream alarms on
exactly the batches the uninterrupted run would have.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["DriftPolicy", "DriftCheck", "DriftMonitor", "DRIFT_REACTIONS"]

#: The reaction names :class:`DriftPolicy` accepts, in execution order.
DRIFT_REACTIONS = ("log", "refit", "reset_reference")


@dataclass(frozen=True)
class DriftPolicy:
    """Configuration for :class:`DriftMonitor`.

    Attributes:
        reference_batches: Micro-batches aggregated into the frozen
            reference window after start or a reference reset. Larger
            values make the reference estimate tighter (fewer false
            alarms) but slow down the first possible check.
        recent_batches: Size of the rolling recent window. Detection
            latency is at most ``recent_batches`` micro-batches once the
            reference is built — the score is computed as soon as one
            shifted batch enters the window, but the statistic is
            diluted until the window is fully post-shift.
        threshold: Alarm threshold on the shift score (a max of pooled
            two-sample z statistics). Stationary streams score ~O(1-4)
            depending on how many statistics are tracked; the default 6
            keeps false alarms negligible while real shifts score in the
            tens.
        reactions: Reactions executed, in order, on every alarmed batch.
            Subset of :data:`DRIFT_REACTIONS`: ``"log"`` (count only),
            ``"refit"`` (invoke the monitor's refit callback),
            ``"reset_reference"`` (adopt the recent window as the new
            reference and clear the recent window).

    Raises:
        ValueError: On non-positive window sizes or threshold, or an
            unknown reaction name.
    """

    reference_batches: int = 8
    recent_batches: int = 4
    threshold: float = 6.0
    reactions: tuple[str, ...] = ("log",)

    def __post_init__(self) -> None:
        if self.reference_batches < 1:
            raise ValueError(
                f"reference_batches must be >= 1, got {self.reference_batches}"
            )
        if self.recent_batches < 1:
            raise ValueError(
                f"recent_batches must be >= 1, got {self.recent_batches}"
            )
        if not self.threshold > 0:
            raise ValueError(f"threshold must be > 0, got {self.threshold}")
        unknown = [r for r in self.reactions if r not in DRIFT_REACTIONS]
        if unknown:
            raise ValueError(
                f"unknown drift reactions {unknown}; choose from "
                f"{DRIFT_REACTIONS}"
            )


@dataclass(frozen=True)
class DriftCheck:
    """The outcome of feeding one micro-batch to :class:`DriftMonitor`.

    Attributes:
        batch: Monitor-local batch index (0-based count of observed
            batches).
        checked: Whether both windows were full, i.e. a score was
            actually computed. Batches consumed while the reference or
            recent window is still filling return ``checked=False``.
        score: The shift score (max pooled |z| over tracked statistics);
            0.0 when not checked.
        alarmed: Whether ``score`` exceeded the policy threshold.
        reactions: The reaction names that actually fired on this batch
            (empty unless alarmed).
    """

    batch: int
    checked: bool
    score: float
    alarmed: bool
    reactions: tuple[str, ...] = ()


@dataclass
class _WindowStats:
    """Vote-moment sums for one micro-batch (all integer-valued)."""

    vote_sum: np.ndarray
    fire_sum: np.ndarray
    agreement: np.ndarray
    count: float


class DriftMonitor:
    """Reference-vs-recent drift detector over streaming vote moments.

    Feed it every finalized micro-batch's votes, in stream order, via
    :meth:`observe_batch`. The monitor is deterministic: the same vote
    stream produces the same scores, alarms, and reactions, and a
    monitor restored from :meth:`state_dict` continues bit-exactly.

    Attributes:
        policy: The :class:`DriftPolicy` in force.
        n_lfs: LF count, fixed by the first observed batch.
        batches_observed: Total micro-batches fed to the monitor.
        checks_run: Batches for which a score was computed.
        alarms: Total alarmed batches.
        forced_refits: ``"refit"`` reactions fired.
        reference_resets: ``"reset_reference"`` reactions fired.
        first_alarm_batch: Monitor-local index of the first alarmed
            batch, or ``None``.
        last_score: The most recent computed score (0.0 before the first
            check).
    """

    def __init__(
        self,
        policy: DriftPolicy | None = None,
        refit_callback: Callable[[], object] | None = None,
    ) -> None:
        """Create a monitor.

        Args:
            policy: Windows/threshold/reactions; defaults to
                ``DriftPolicy()``.
            refit_callback: Zero-argument callable invoked by the
                ``"refit"`` reaction (its return value is ignored).

        Raises:
            ValueError: If the policy requests the ``"refit"`` reaction
                but no ``refit_callback`` was supplied.
        """
        self.policy = policy or DriftPolicy()
        if "refit" in self.policy.reactions and refit_callback is None:
            raise ValueError(
                "the 'refit' reaction needs a refit_callback (typically "
                "OnlineLabelModel.refit, wired by CheckpointedStream)"
            )
        self._refit_callback = refit_callback
        self.n_lfs: int | None = None
        self.batches_observed = 0
        self.checks_run = 0
        self.alarms = 0
        self.forced_refits = 0
        self.reference_resets = 0
        self.first_alarm_batch: int | None = None
        self.last_score = 0.0
        # Frozen reference window (sums over reference_batches batches).
        self._ref: _WindowStats | None = None
        self._ref_batches = 0
        # Rolling recent window, one _WindowStats per batch.
        self._recent: deque[_WindowStats] = deque()

    # ------------------------------------------------------------------
    # streaming interface
    # ------------------------------------------------------------------
    def observe_batch(self, votes: np.ndarray) -> DriftCheck:
        """Fold one micro-batch of votes in; maybe score, maybe alarm.

        Args:
            votes: ``(B, m)`` array over ``{-1, 0, +1}``, in stream
                order. ``m`` is fixed by the first batch.

        Returns:
            A :class:`DriftCheck` describing what happened — whether a
            score was computed, its value, and any reactions fired.

        Raises:
            ValueError: On a non-2-D batch, a column-count mismatch, or
                votes outside ``{-1, 0, 1}``.
        """
        stats = self._batch_stats(votes)
        batch = self.batches_observed
        self.batches_observed += 1
        if stats.count == 0:
            return DriftCheck(batch=batch, checked=False, score=0.0, alarmed=False)
        if self._ref_batches < self.policy.reference_batches:
            self._fold_into_reference(stats)
            return DriftCheck(batch=batch, checked=False, score=0.0, alarmed=False)
        self._recent.append(stats)
        while len(self._recent) > self.policy.recent_batches:
            self._recent.popleft()
        if len(self._recent) < self.policy.recent_batches:
            return DriftCheck(batch=batch, checked=False, score=0.0, alarmed=False)
        score = self._score()
        self.checks_run += 1
        self.last_score = score
        alarmed = bool(score > self.policy.threshold)
        fired: tuple[str, ...] = ()
        if alarmed:
            self.alarms += 1
            if self.first_alarm_batch is None:
                self.first_alarm_batch = batch
            fired = self._react()
        return DriftCheck(
            batch=batch,
            checked=True,
            score=score,
            alarmed=alarmed,
            reactions=fired,
        )

    def reset_reference(self) -> None:
        """Adopt the recent window as the new reference regime.

        The recent window's aggregate seeds the new reference and the
        recent window empties. When ``recent_batches <
        reference_batches`` the seeded reference keeps absorbing
        subsequent batches until it holds ``reference_batches`` of them
        (only then does the recent window start refilling), so the next
        check happens up to ``reference_batches`` batches after the
        reset — the post-alarm blind spot to budget for when sizing the
        windows. With an empty recent window this clears the reference
        entirely and the next ``reference_batches`` batches rebuild it.
        """
        if self._recent:
            total = self._sum_window(self._recent)
            self._ref = total
            self._ref_batches = len(self._recent)
            self._recent.clear()
        else:
            self._ref = None
            self._ref_batches = 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _batch_stats(self, votes: np.ndarray) -> _WindowStats:
        """Validate one batch and reduce it to its moment sums."""
        votes = np.asarray(votes)
        if votes.ndim != 2:
            raise ValueError(f"votes must be 2-D, got shape {votes.shape}")
        if self.n_lfs is None:
            self.n_lfs = votes.shape[1]
        elif votes.shape[1] != self.n_lfs:
            raise ValueError(
                f"vote batch has {votes.shape[1]} columns, monitor has "
                f"{self.n_lfs} labeling functions"
            )
        if votes.size and not np.isin(votes, (-1, 0, 1)).all():
            bad = votes[~np.isin(votes, (-1, 0, 1))][0]
            raise ValueError(f"votes must be in {{-1, 0, 1}}, got {bad!r}")
        dense = votes.astype(np.float64)
        absd = np.abs(dense)
        return _WindowStats(
            vote_sum=dense.sum(axis=0),
            fire_sum=absd.sum(axis=0),
            agreement=dense.T @ dense,
            count=float(votes.shape[0]),
        )

    def _fold_into_reference(self, stats: _WindowStats) -> None:
        """Accumulate one batch into the still-filling reference window."""
        if self._ref is None:
            self._ref = _WindowStats(
                vote_sum=stats.vote_sum.copy(),
                fire_sum=stats.fire_sum.copy(),
                agreement=stats.agreement.copy(),
                count=stats.count,
            )
        else:
            self._ref.vote_sum += stats.vote_sum
            self._ref.fire_sum += stats.fire_sum
            self._ref.agreement += stats.agreement
            self._ref.count += stats.count
        self._ref_batches += 1

    @staticmethod
    def _sum_window(window: deque[_WindowStats]) -> _WindowStats:
        """Aggregate a deque of per-batch stats (exact: all integers)."""
        first = window[0]
        total = _WindowStats(
            vote_sum=first.vote_sum.copy(),
            fire_sum=first.fire_sum.copy(),
            agreement=first.agreement.copy(),
            count=first.count,
        )
        for stats in list(window)[1:]:
            total.vote_sum += stats.vote_sum
            total.fire_sum += stats.fire_sum
            total.agreement += stats.agreement
            total.count += stats.count
        return total

    def _score(self) -> float:
        """Max pooled two-sample |z| over mean/fire/agreement statistics."""
        ref = self._ref
        rec = self._sum_window(self._recent)
        n1, n2 = ref.count, rec.count
        inv = 1.0 / n1 + 1.0 / n2
        # A variance floor keeps deterministic statistics (zero sample
        # variance) from dividing by zero while still letting a changed
        # deterministic statistic score far above any threshold.
        var_floor = 1.0 / (n1 + n2)

        def z(diff: np.ndarray, pooled_var: np.ndarray) -> float:
            se = np.sqrt(np.maximum(pooled_var, var_floor) * inv)
            return float(np.max(np.abs(diff) / se)) if diff.size else 0.0

        scores = []
        # Mean votes: E[lambda_j]; var = E[lambda^2] - E[lambda]^2 and
        # E[lambda^2] is exactly the fire rate for votes in {-1, 0, 1}.
        mean1 = ref.vote_sum / n1
        mean2 = rec.vote_sum / n2
        pooled_mean = (ref.vote_sum + rec.vote_sum) / (n1 + n2)
        pooled_fire = (ref.fire_sum + rec.fire_sum) / (n1 + n2)
        scores.append(z(mean1 - mean2, pooled_fire - pooled_mean**2))
        # Fire rates: Bernoulli variance p(1-p) at the pooled rate.
        fire1 = ref.fire_sum / n1
        fire2 = rec.fire_sum / n2
        scores.append(z(fire1 - fire2, pooled_fire * (1.0 - pooled_fire)))
        # Agreement matrix, strict upper triangle (the diagonal is the
        # fire rate, already covered). The product lambda_j lambda_k is
        # in {-1, 0, 1}, so E[(lambda_j lambda_k)^2] <= 1 and we bound
        # its variance by 1 - E[lambda_j lambda_k]^2, the worst case
        # over co-fire rates — slightly conservative, which only ever
        # *suppresses* false alarms.
        m = self.n_lfs or 0
        if m >= 2:
            iu = np.triu_indices(m, k=1)
            agree1 = (ref.agreement / n1)[iu]
            agree2 = (rec.agreement / n2)[iu]
            pooled_agree = ((ref.agreement + rec.agreement) / (n1 + n2))[iu]
            scores.append(z(agree1 - agree2, 1.0 - pooled_agree**2))
        return max(scores)

    def _react(self) -> tuple[str, ...]:
        """Execute the policy's reactions; returns the names fired."""
        fired = []
        for reaction in self.policy.reactions:
            if reaction == "log":
                fired.append(reaction)
            elif reaction == "refit":
                self._refit_callback()
                self.forced_refits += 1
                fired.append(reaction)
            elif reaction == "reset_reference":
                self.reset_reference()
                self.reference_resets += 1
                fired.append(reaction)
        return tuple(fired)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Bit-exact snapshot of everything :meth:`observe_batch` mutates.

        Returns:
            A JSON-safe dict (arrays as base64 raw buffers) that
            :meth:`load_state` restores exactly — a resumed monitor
            scores and alarms on the same batches as one that never
            stopped.
        """
        from repro.dfs.records import encode_ndarray

        def enc_window(stats: _WindowStats | None) -> dict | None:
            if stats is None:
                return None
            return {
                "vote_sum": encode_ndarray(stats.vote_sum),
                "fire_sum": encode_ndarray(stats.fire_sum),
                "agreement": encode_ndarray(stats.agreement),
                "count": stats.count,
            }

        return {
            "schema": 1,
            "n_lfs": self.n_lfs,
            "batches_observed": self.batches_observed,
            "checks_run": self.checks_run,
            "alarms": self.alarms,
            "forced_refits": self.forced_refits,
            "reference_resets": self.reference_resets,
            "first_alarm_batch": self.first_alarm_batch,
            "last_score": self.last_score,
            "reference": enc_window(self._ref),
            "reference_batches": self._ref_batches,
            "recent": [enc_window(stats) for stats in self._recent],
        }

    def load_state(self, state: dict) -> "DriftMonitor":
        """Restore a :meth:`state_dict` snapshot onto this instance.

        The monitor must have been constructed with the same policy the
        snapshot was taken under (policies are the caller's contract,
        the snapshot carries only mutable state).

        Args:
            state: A dict produced by :meth:`state_dict`.

        Returns:
            ``self``, for chaining.
        """
        from repro.dfs.records import decode_ndarray

        def dec_window(payload: dict | None) -> _WindowStats | None:
            if payload is None:
                return None
            return _WindowStats(
                vote_sum=decode_ndarray(payload["vote_sum"]),
                fire_sum=decode_ndarray(payload["fire_sum"]),
                agreement=decode_ndarray(payload["agreement"]),
                count=float(payload["count"]),
            )

        self.n_lfs = state["n_lfs"]
        self.batches_observed = int(state["batches_observed"])
        self.checks_run = int(state["checks_run"])
        self.alarms = int(state["alarms"])
        self.forced_refits = int(state["forced_refits"])
        self.reference_resets = int(state["reference_resets"])
        first = state["first_alarm_batch"]
        self.first_alarm_batch = None if first is None else int(first)
        self.last_score = float(state["last_score"])
        self._ref = dec_window(state["reference"])
        self._ref_batches = int(state["reference_batches"])
        self._recent = deque(
            dec_window(payload) for payload in state["recent"]
        )
        return self

    def set_refit_callback(self, callback: Callable[[], object]) -> None:
        """Bind (or rebind) the callable the ``"refit"`` reaction invokes.

        Args:
            callback: Zero-argument callable; its return value is
                ignored.
        """
        self._refit_callback = callback
