"""Online generative label model for streaming weak supervision.

The Section 5.2 trainer (:class:`SamplingFreeLabelModel`) is full-batch:
it holds the whole ``(n, m)`` label matrix and samples minibatches from
it. A streaming deployment sees votes one micro-batch at a time and can
never hold the raw examples; this module provides the incremental
counterpart built on two observations about the conditionally
independent model:

1. **The data enters the likelihood only through vote patterns.** For m
   labeling functions there are at most ``3^m`` distinct vote rows, and
   in practice a handful: the stream can be retained losslessly as a
   *pattern dictionary* (each distinct row stored once) plus a 4-byte
   pattern id per observed example. At the benchmark's 13-LF workload
   this is ~500x smaller than the decoded records and reconstructs the
   exact label matrix, in stream order, on demand.
2. **Cheap first/second vote moments track the stream between refits.**
   Per-LF vote sums, fire rates, and the pairwise agreement matrix are
   O(m^2) per micro-batch and feed monitoring (the Section 3.3
   "previously unknown low-quality sources" diagnostics) without any
   optimization.

Training interleaves two update kinds:

* ``observe(votes)`` folds a micro-batch into the moments and the
  pattern log, then takes a few exact-gradient ``partial_step``s on rows
  sampled from the new batch — the model tracks a drifting stream at
  O(steps x batch) cost per micro-batch;
* ``refit()`` (scheduled every ``refit_every`` batches, or called
  manually at stream end) rebuilds the label matrix from the pattern log
  and runs the *identical* offline ``fit`` — same config, same seed, same
  bytes — so after a refit the online model's parameters and posteriors
  are exactly those of an offline :class:`SamplingFreeLabelModel` fit on
  the same data (the equivalence suite asserts agreement to 1e-6; in
  practice they are bitwise equal).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel

__all__ = ["OnlineLabelModelConfig", "OnlineLabelModel"]


@dataclass
class OnlineLabelModelConfig:
    """Configuration for :class:`OnlineLabelModel`.

    ``base`` is the offline trainer configuration used verbatim by
    :meth:`OnlineLabelModel.refit` — keep it identical to the offline
    model you want streaming runs to converge to.
    """

    base: LabelModelConfig = field(default_factory=LabelModelConfig)
    steps_per_batch: int = 8
    """Incremental exact-gradient steps taken per observed micro-batch."""
    refit_every: int | None = None
    """Full refit cadence in observed batches; ``None`` = manual only."""
    seed: int = 0
    """Seed for the incremental-step minibatch sampler (distinct from the
    refit seed, which lives in ``base.seed``)."""


class OnlineLabelModel:
    """Streaming accumulator + incremental trainer for the label model."""

    def __init__(self, config: OnlineLabelModelConfig | None = None) -> None:
        self.config = config or OnlineLabelModelConfig()
        self._model = SamplingFreeLabelModel(replace(self.config.base))
        self._rng = np.random.default_rng(self.config.seed)
        self.n_lfs: int | None = None
        self.n_observed = 0
        self.batches_observed = 0
        self.refits_done = 0
        # Pattern log: distinct vote rows + per-example pattern ids.
        self._pattern_ids: dict[bytes, int] = {}
        self._pattern_rows: list[np.ndarray] = []
        self._row_ids: list[np.ndarray] = []
        # Streaming vote moments.
        self._vote_sum: np.ndarray | None = None
        self._fire_sum: np.ndarray | None = None
        self._agreement: np.ndarray | None = None

    # ------------------------------------------------------------------
    # streaming updates
    # ------------------------------------------------------------------
    def observe(self, votes: np.ndarray) -> None:
        """Fold one micro-batch of votes into the model.

        ``votes`` is an ``(B, m)`` array over ``{-1, 0, +1}``; rows are
        appended to the pattern log in arrival order so a later refit
        sees exactly the stream's label matrix.
        """
        votes = self._validate(votes)
        if votes.shape[0] == 0:
            return
        self._update_moments(votes)
        self._append_patterns(votes)
        self.n_observed += votes.shape[0]
        self.batches_observed += 1
        self._incremental_steps(votes)
        cadence = self.config.refit_every
        if cadence is not None and self.batches_observed % cadence == 0:
            self.refit()

    def refit(self) -> SamplingFreeLabelModel:
        """Full offline fit on everything observed so far.

        Reconstructs the label matrix from the pattern log and runs the
        unmodified :meth:`SamplingFreeLabelModel.fit` with the ``base``
        config — the result is exactly what an offline fit on the same
        stream prefix produces.
        """
        if self.n_observed == 0:
            raise RuntimeError("cannot refit before observing any votes")
        L = self.reconstruct_matrix()
        self._model = SamplingFreeLabelModel(replace(self.config.base))
        self._model.fit(L)
        self.refits_done += 1
        return self._model

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _validate(self, votes: np.ndarray) -> np.ndarray:
        votes = np.asarray(votes)
        if votes.ndim != 2:
            raise ValueError(f"votes must be 2-D, got shape {votes.shape}")
        if self.n_lfs is None:
            self.n_lfs = votes.shape[1]
        elif votes.shape[1] != self.n_lfs:
            raise ValueError(
                f"vote batch has {votes.shape[1]} columns, model has "
                f"{self.n_lfs} labeling functions"
            )
        if votes.size and not np.isin(votes, (-1, 0, 1)).all():
            bad = votes[~np.isin(votes, (-1, 0, 1))][0]
            raise ValueError(f"votes must be in {{-1, 0, 1}}, got {bad!r}")
        return votes.astype(np.int8, copy=False)

    def _update_moments(self, votes: np.ndarray) -> None:
        m = votes.shape[1]
        if self._vote_sum is None:
            self._vote_sum = np.zeros(m)
            self._fire_sum = np.zeros(m)
            self._agreement = np.zeros((m, m))
        dense = votes.astype(np.float64)
        self._vote_sum += dense.sum(axis=0)
        self._fire_sum += np.abs(dense).sum(axis=0)
        self._agreement += dense.T @ dense

    def _append_patterns(self, votes: np.ndarray) -> None:
        uniq, inverse = np.unique(votes, axis=0, return_inverse=True)
        local_to_global = np.empty(len(uniq), dtype=np.int32)
        for k, row in enumerate(uniq):
            key = row.tobytes()
            pattern = self._pattern_ids.get(key)
            if pattern is None:
                pattern = len(self._pattern_rows)
                self._pattern_ids[key] = pattern
                self._pattern_rows.append(row.copy())
            local_to_global[k] = pattern
        self._row_ids.append(local_to_global[inverse.astype(np.int32)])

    def _incremental_steps(self, votes: np.ndarray) -> None:
        cfg = self.config
        if cfg.steps_per_batch < 1:
            return
        if self._model.alpha is None:
            self._model.init_params(votes.shape[1])
            # Mirror fit()'s warm start: beta from observed fire rates.
            propensity = np.clip(
                np.abs(votes).mean(axis=0), 1e-3, 1 - 1e-3
            )
            self._model.beta = np.log(propensity / (1 - propensity)) / 2.0
        batch_size = min(cfg.base.batch_size, votes.shape[0])
        for _ in range(cfg.steps_per_batch):
            idx = self._rng.integers(0, votes.shape[0], size=batch_size)
            self._model.partial_step(votes[idx])

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Bit-exact snapshot of everything :meth:`observe` mutates.

        Includes the minibatch sampler's RNG state and both step
        counters (``batches_observed`` here, ``steps_taken`` on the
        inner model) so a restored model takes *exactly* the gradient
        steps the uninterrupted run would have taken — resumed streams
        converge to the same parameters to the bit, not just in
        distribution.
        """
        from repro.dfs.records import encode_ndarray

        def enc(array: np.ndarray | None):
            return None if array is None else encode_ndarray(array)

        return {
            "schema": 1,
            "n_lfs": self.n_lfs,
            "n_observed": self.n_observed,
            "batches_observed": self.batches_observed,
            "refits_done": self.refits_done,
            "rng_state": self._rng.bit_generator.state,
            "pattern_rows": enc(
                np.vstack(self._pattern_rows) if self._pattern_rows else None
            ),
            "row_ids": enc(
                np.concatenate(self._row_ids) if self._row_ids else None
            ),
            "row_id_lengths": [len(ids) for ids in self._row_ids],
            "vote_sum": enc(self._vote_sum),
            "fire_sum": enc(self._fire_sum),
            "agreement": enc(self._agreement),
            "model": self._model.state_dict(),
        }

    def load_state(self, state: dict) -> "OnlineLabelModel":
        """Restore a :meth:`state_dict` snapshot onto this instance.

        The instance must have been constructed with the same config the
        snapshot was taken under (configs are the caller's contract, the
        snapshot carries only mutable state).
        """
        from repro.dfs.records import decode_ndarray

        def dec(payload):
            return None if payload is None else decode_ndarray(payload)

        self.n_lfs = state["n_lfs"]
        self.n_observed = int(state["n_observed"])
        self.batches_observed = int(state["batches_observed"])
        self.refits_done = int(state["refits_done"])
        self._rng = np.random.default_rng(self.config.seed)
        self._rng.bit_generator.state = state["rng_state"]
        rows = dec(state["pattern_rows"])
        self._pattern_rows = [] if rows is None else [row for row in rows]
        self._pattern_ids = {
            row.tobytes(): i for i, row in enumerate(self._pattern_rows)
        }
        flat_ids = dec(state["row_ids"])
        self._row_ids = []
        if flat_ids is not None:
            offset = 0
            for length in state["row_id_lengths"]:
                self._row_ids.append(flat_ids[offset:offset + length])
                offset += length
        self._vote_sum = dec(state["vote_sum"])
        self._fire_sum = dec(state["fire_sum"])
        self._agreement = dec(state["agreement"])
        self._model = SamplingFreeLabelModel(replace(self.config.base))
        self._model.load_state(state["model"])
        return self

    # ------------------------------------------------------------------
    # reconstruction + accessors
    # ------------------------------------------------------------------
    def reconstruct_matrix(self) -> np.ndarray:
        """The exact observed label matrix, in stream order, as int8."""
        if self.n_observed == 0:
            return np.zeros((0, self.n_lfs or 0), dtype=np.int8)
        patterns = np.vstack(self._pattern_rows)
        ids = np.concatenate(self._row_ids)
        return patterns[ids]

    @property
    def model(self) -> SamplingFreeLabelModel:
        """The current parameter estimate (incremental or last refit)."""
        return self._model

    @property
    def n_patterns(self) -> int:
        """Distinct vote rows retained — the compressed stream size."""
        return len(self._pattern_rows)

    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        return self._model.predict_proba(L)

    def predict(self, L: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return self._model.predict(L, threshold)

    def accuracies(self) -> np.ndarray:
        return self._model.accuracies()

    def propensities(self) -> np.ndarray:
        return self._model.propensities()

    # ------------------------------------------------------------------
    # streaming moments (monitoring surface)
    # ------------------------------------------------------------------
    def mean_votes(self) -> np.ndarray:
        """First vote moment per LF: ``E[lambda_j]`` over the stream."""
        self._check_observed()
        return self._vote_sum / self.n_observed

    def fire_rates(self) -> np.ndarray:
        """Empirical propensity per LF: ``P(lambda_j != 0)``."""
        self._check_observed()
        return self._fire_sum / self.n_observed

    def agreement_matrix(self) -> np.ndarray:
        """Second vote moment ``E[lambda_j lambda_k]`` — the signal the
        LF-quality diagnostics read for polarity conflicts."""
        self._check_observed()
        return self._agreement / self.n_observed

    def _check_observed(self) -> None:
        if self.n_observed == 0:
            raise RuntimeError("no votes observed yet")
