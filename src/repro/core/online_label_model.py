"""Online generative label model for streaming weak supervision.

The Section 5.2 trainer (:class:`SamplingFreeLabelModel`) is full-batch:
it holds the whole ``(n, m)`` label matrix and samples minibatches from
it. A streaming deployment sees votes one micro-batch at a time and can
never hold the raw examples; this module provides the incremental
counterpart built on two observations about the conditionally
independent model:

1. **The data enters the likelihood only through vote patterns.** For m
   labeling functions there are at most ``3^m`` distinct vote rows, and
   in practice a handful: the stream can be retained losslessly as a
   *pattern dictionary* (each distinct row stored once) plus a 4-byte
   pattern id per observed example. At the benchmark's 13-LF workload
   this is ~500x smaller than the decoded records and reconstructs the
   exact label matrix, in stream order, on demand.
2. **Cheap first/second vote moments track the stream between refits.**
   Per-LF vote sums, fire rates, and the pairwise agreement matrix are
   O(m^2) per micro-batch and feed monitoring (the Section 3.3
   "previously unknown low-quality sources" diagnostics, and the drift
   monitor in :mod:`repro.core.drift`) without any optimization.

Training interleaves two update kinds:

* ``observe(votes)`` folds a micro-batch into the moments and the
  pattern log, then takes a few exact-gradient ``partial_step``s on rows
  sampled from the new batch — the model tracks a drifting stream at
  O(steps x batch) cost per micro-batch;
* ``refit()`` (scheduled every ``refit_every`` batches, or called
  manually at stream end) re-runs the offline fit over the retained
  stream. By default it trains *directly on the pattern log*
  (:meth:`SamplingFreeLabelModel.fit_compressed` — O(patterns x m) per
  step instead of O(n x m), bitwise identical in the minibatch regime);
  set ``compressed_refit=False`` or ``REPRO_COMPRESSED_REFIT=0`` to
  rebuild the expanded matrix and run the identical offline ``fit``.

Retention modes
---------------
Production traffic is non-stationary; a refit that pools all of history
keeps trusting labeling functions long after they rot. The accumulators
therefore run in one of three modes, selected by the config:

* **cumulative** (default): moments and the pattern log grow without
  forgetting. Refits reproduce the offline fit on the full stream
  *exactly* — same config, same seed, same bytes — so after a refit the
  online model's parameters and posteriors are exactly those of an
  offline :class:`SamplingFreeLabelModel` fit on the same data (the
  equivalence suite asserts agreement to 1e-6; in practice they are
  bitwise equal).
* **decay** (``decay=0.95``-ish): every observed micro-batch multiplies
  the moments and the per-pattern weights by ``decay`` before folding
  the new batch in — an exponential recency window with half-life
  ``ln 2 / ln(1/decay)`` batches. Patterns whose weight sinks below
  ``pattern_weight_floor`` are evicted, so the log's footprint tracks
  the *recent* pattern diversity, not all of history. Refits see a
  recency-weighted matrix: each retained pattern repeated
  ``round(weight)`` times by default, or — with
  ``decay_weighted_refit=True`` — weighted by its exact real-valued
  decayed weight (no rounding; requires compressed refits).
* **window** (``window_batches=N``): moments and the pattern log cover
  exactly the last ``N`` micro-batches (exact rolling sums — all
  integer-valued, so no drift). Patterns no longer referenced by the
  window are evicted. Refits see precisely the window's rows, in stream
  order.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel
from repro.core.patterns import CompressedVotes

__all__ = ["OnlineLabelModelConfig", "OnlineLabelModel"]


@dataclass
class OnlineLabelModelConfig:
    """Configuration for :class:`OnlineLabelModel`.

    ``base`` is the offline trainer configuration used verbatim by
    :meth:`OnlineLabelModel.refit` — keep it identical to the offline
    model you want streaming runs to converge to.
    """

    base: LabelModelConfig = field(default_factory=LabelModelConfig)
    steps_per_batch: int = 8
    """Incremental exact-gradient steps taken per observed micro-batch."""
    refit_every: int | None = None
    """Full refit cadence in observed batches; ``None`` = manual only."""
    seed: int = 0
    """Seed for the incremental-step minibatch sampler (distinct from the
    refit seed, which lives in ``base.seed``)."""
    decay: float | None = None
    """Per-batch exponential decay on moments and pattern weights, in
    (0, 1); ``None`` (with ``window_batches=None``) keeps the cumulative
    all-of-history behavior. Mutually exclusive with ``window_batches``."""
    window_batches: int | None = None
    """Sliding-window retention: moments and pattern log cover exactly
    the last N observed micro-batches. Mutually exclusive with
    ``decay``."""
    pattern_weight_floor: float = 0.25
    """Decay mode only: patterns whose decayed weight falls below this
    floor are evicted from the log. Must be in (0, 1) so a pattern seen
    in the current batch (weight >= 1) is never evicted on arrival."""
    compressed_refit: bool | None = None
    """Whether :meth:`OnlineLabelModel.refit` trains directly on the
    retained ``(patterns, multiplicities)`` log instead of expanding it
    into a row matrix first. ``None`` (default) defers to the
    ``REPRO_COMPRESSED_REFIT`` env knob (on unless set to ``"0"``).
    Results are unchanged — minibatch refits are bitwise identical to
    the expanded fit, and the tiny-stream full-batch regime falls back
    to the expanded fit — only the per-step cost drops from O(n × m) to
    O(patterns × m)."""
    decay_weighted_refit: bool = False
    """Decay mode only: when True, refits weight each retained pattern
    by its *real-valued* decayed weight (exact recency semantics)
    instead of the legacy ``round(weight)`` row repetition. Off by
    default for bit-compatibility with existing decay-mode streams; the
    weighted objective agrees with the rounded one to O(1/weight) in the
    fitted parameters (regression-tested tolerance, not bitwise)."""


class OnlineLabelModel:
    """Streaming accumulator + incremental trainer for the label model.

    Feed micro-batches via :meth:`observe`; read the current parameter
    estimate from :attr:`model`; call :meth:`refit` (or set
    ``refit_every``) for full re-estimates from the retained pattern
    log. Retention semantics (cumulative / decay / window) are set by
    the config — see the module docstring.
    """

    def __init__(self, config: OnlineLabelModelConfig | None = None) -> None:
        """Build an empty model.

        Args:
            config: Trainer + retention configuration; defaults to
                cumulative retention with the default offline config.

        Raises:
            ValueError: If the config sets both ``decay`` and
                ``window_batches``, or sets either to an out-of-range
                value, or sets ``pattern_weight_floor`` outside (0, 1).
        """
        self.config = config or OnlineLabelModelConfig()
        cfg = self.config
        if cfg.decay is not None and cfg.window_batches is not None:
            raise ValueError(
                "decay and window_batches are mutually exclusive "
                "retention modes; set at most one"
            )
        if cfg.decay is not None and not (0.0 < cfg.decay < 1.0):
            raise ValueError(f"decay must be in (0, 1), got {cfg.decay}")
        if cfg.window_batches is not None and cfg.window_batches < 1:
            raise ValueError(
                f"window_batches must be >= 1, got {cfg.window_batches}"
            )
        if not (0.0 < cfg.pattern_weight_floor < 1.0):
            raise ValueError(
                "pattern_weight_floor must be in (0, 1), got "
                f"{cfg.pattern_weight_floor}"
            )
        if cfg.decay_weighted_refit and cfg.decay is None:
            raise ValueError(
                "decay_weighted_refit requires decay retention; set "
                "decay to a value in (0, 1)"
            )
        self._model = SamplingFreeLabelModel(replace(cfg.base))
        self._rng = np.random.default_rng(cfg.seed)
        self.n_lfs: int | None = None
        self.n_observed = 0
        self.batches_observed = 0
        self.refits_done = 0
        # Pattern log: distinct vote rows, plus per-example pattern ids
        # (cumulative/window) or per-pattern decayed weights (decay).
        self._pattern_ids: dict[bytes, int] = {}
        self._pattern_rows: list[np.ndarray] = []
        self._row_ids: list[np.ndarray] = []
        self._pattern_weights: np.ndarray | None = (
            np.zeros(0) if cfg.decay is not None else None
        )
        self._pattern_refs: np.ndarray | None = (
            np.zeros(0, dtype=np.int64) if cfg.window_batches is not None else None
        )
        # Streaming vote moments (recency-weighted in decay/window mode)
        # plus the effective sample weight behind them.
        self._vote_sum: np.ndarray | None = None
        self._fire_sum: np.ndarray | None = None
        self._agreement: np.ndarray | None = None
        self._moment_weight = 0.0
        self._window_moments: deque[tuple] | None = (
            deque() if cfg.window_batches is not None else None
        )

    @property
    def mode(self) -> str:
        """Retention mode: ``"cumulative"``, ``"decay"``, or ``"window"``."""
        if self.config.decay is not None:
            return "decay"
        if self.config.window_batches is not None:
            return "window"
        return "cumulative"

    # ------------------------------------------------------------------
    # streaming updates
    # ------------------------------------------------------------------
    def observe(self, votes: np.ndarray) -> None:
        """Fold one micro-batch of votes into the model.

        ``votes`` is an ``(B, m)`` array over ``{-1, 0, +1}``; rows enter
        the pattern log in arrival order (and, in decay/window mode,
        displace stale history per the retention policy) so a later
        refit sees the retained stream's label matrix.

        Args:
            votes: The micro-batch's vote rows, stream-ordered.

        Raises:
            ValueError: On a non-2-D batch, a column-count mismatch with
                earlier batches, or votes outside ``{-1, 0, 1}``.
        """
        votes = self._validate(votes)
        if votes.shape[0] == 0:
            return
        self._update_moments(votes)
        self._append_patterns(votes)
        self.n_observed += votes.shape[0]
        self.batches_observed += 1
        self._incremental_steps(votes)
        cadence = self.config.refit_every
        if cadence is not None and self.batches_observed % cadence == 0:
            self.refit()

    def refit(self) -> SamplingFreeLabelModel:
        """Full offline fit on the retained pattern log.

        Runs :meth:`SamplingFreeLabelModel.fit` semantics with the
        ``base`` config over the retained stream. In cumulative mode the
        result is exactly what an offline fit on the same stream prefix
        produces; in decay/window mode it is the offline fit of the
        *recency-weighted* matrix (see :meth:`reconstruct_matrix`).

        When compressed refits are enabled (the default — see
        :attr:`OnlineLabelModelConfig.compressed_refit`) the fit trains
        directly on the pattern log via
        :meth:`SamplingFreeLabelModel.fit_compressed`: per-step cost is
        O(patterns × m) regardless of stream length, and minibatch-
        regime results are bitwise identical to the expanded fit.
        Streams small enough that every step would be a full-batch step
        (``total rows <= base.batch_size``) fall back to the expanded
        fit so tiny-stream refits also stay bitwise. With
        ``decay_weighted_refit`` the decayed pattern weights enter the
        objective as real-valued multiplicities instead of the legacy
        ``round(weight)`` row repetition.

        Returns:
            The freshly fitted inner model (also exposed as
            :attr:`model`).

        Raises:
            RuntimeError: If no votes have been observed yet.
        """
        if self.n_observed == 0:
            raise RuntimeError("cannot refit before observing any votes")
        self._model = SamplingFreeLabelModel(replace(self.config.base))
        votes = (
            self.compressed_votes() if self._compressed_refit_enabled() else None
        )
        if votes is not None and (
            votes.n_rows > self.config.base.batch_size
            or (self.mode == "decay" and self.config.decay_weighted_refit)
        ):
            self._model.fit_compressed(votes)
        else:
            self._model.fit(self.reconstruct_matrix())
        self.refits_done += 1
        return self._model

    def _compressed_refit_enabled(self) -> bool:
        """Resolve the compressed-refit switch (config, else env knob)."""
        if self.config.compressed_refit is not None:
            return self.config.compressed_refit
        return os.environ.get("REPRO_COMPRESSED_REFIT", "1") != "0"

    def compressed_votes(self) -> CompressedVotes:
        """The retained stream as a pattern-compressed vote matrix.

        The compressed counterpart of :meth:`reconstruct_matrix` — no
        row expansion is materialized:

        * cumulative / window mode: the retained patterns with their
          reference counts as integer multiplicities and the stream-
          order ``row_ids`` map, so the compression is *exact* (the
          expanded matrix is recoverable bit-for-bit);
        * decay mode, legacy semantics: each pattern's multiplicity is
          ``round(weight)`` (half-up), matching the row-repeated matrix
          :meth:`reconstruct_matrix` builds, in pattern-id order;
          zero-multiplicity patterns are omitted;
        * decay mode with ``decay_weighted_refit``: the real-valued
          decayed weights themselves — exact recency semantics with no
          rounding.

        Returns:
            The :class:`~repro.core.patterns.CompressedVotes` the next
            compressed refit trains on.

        Raises:
            RuntimeError: If no votes have been observed yet.
        """
        if self.n_observed == 0:
            raise RuntimeError("no votes observed yet")
        patterns = np.vstack(self._pattern_rows)
        if self.mode == "decay":
            if self.config.decay_weighted_refit:
                keep = self._pattern_weights > 0.0
                return CompressedVotes(
                    patterns=patterns[keep],
                    weights=self._pattern_weights[keep].astype(np.float64),
                    row_ids=None,
                    n_rows=float(self._pattern_weights[keep].sum()),
                )
            reps = np.floor(self._pattern_weights + 0.5).astype(np.int64)
            keep = reps > 0
            return CompressedVotes(
                patterns=patterns[keep],
                weights=reps[keep].astype(np.float64),
                row_ids=None,
                n_rows=float(reps[keep].sum()),
            )
        ids = np.concatenate(self._row_ids).astype(np.int64)
        weights = np.bincount(ids, minlength=len(patterns)).astype(np.float64)
        return CompressedVotes(
            patterns=patterns,
            weights=weights,
            row_ids=ids,
            n_rows=float(len(ids)),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _validate(self, votes: np.ndarray) -> np.ndarray:
        votes = np.asarray(votes)
        if votes.ndim != 2:
            raise ValueError(f"votes must be 2-D, got shape {votes.shape}")
        if self.n_lfs is None:
            self.n_lfs = votes.shape[1]
        elif votes.shape[1] != self.n_lfs:
            raise ValueError(
                f"vote batch has {votes.shape[1]} columns, model has "
                f"{self.n_lfs} labeling functions"
            )
        if votes.size and not np.isin(votes, (-1, 0, 1)).all():
            bad = votes[~np.isin(votes, (-1, 0, 1))][0]
            raise ValueError(f"votes must be in {{-1, 0, 1}}, got {bad!r}")
        return votes.astype(np.int8, copy=False)

    def _update_moments(self, votes: np.ndarray) -> None:
        m = votes.shape[1]
        if self._vote_sum is None:
            self._vote_sum = np.zeros(m)
            self._fire_sum = np.zeros(m)
            self._agreement = np.zeros((m, m))
        dense = votes.astype(np.float64)
        vote = dense.sum(axis=0)
        fire = np.abs(dense).sum(axis=0)
        agree = dense.T @ dense
        count = float(votes.shape[0])
        mode = self.mode
        if mode == "decay":
            d = self.config.decay
            self._vote_sum = d * self._vote_sum + vote
            self._fire_sum = d * self._fire_sum + fire
            self._agreement = d * self._agreement + agree
            self._moment_weight = d * self._moment_weight + count
        elif mode == "window":
            # Rolling sums stay exact: every entry is an integer-valued
            # float64, so adding a batch in and subtracting it back out
            # later reproduces the same bits regardless of order.
            self._window_moments.append((vote, fire, agree, count))
            self._vote_sum += vote
            self._fire_sum += fire
            self._agreement += agree
            self._moment_weight += count
            while len(self._window_moments) > self.config.window_batches:
                o_vote, o_fire, o_agree, o_count = self._window_moments.popleft()
                self._vote_sum -= o_vote
                self._fire_sum -= o_fire
                self._agreement -= o_agree
                self._moment_weight -= o_count
        else:
            self._vote_sum += vote
            self._fire_sum += fire
            self._agreement += agree
            self._moment_weight += count

    def _append_patterns(self, votes: np.ndarray) -> None:
        mode = self.mode
        uniq, inverse = np.unique(votes, axis=0, return_inverse=True)
        if mode == "decay" and len(self._pattern_weights):
            # Age the whole log before folding this batch in.
            self._pattern_weights *= self.config.decay
        new_rows = 0
        local_to_global = np.empty(len(uniq), dtype=np.int32)
        for k, row in enumerate(uniq):
            key = row.tobytes()
            pattern = self._pattern_ids.get(key)
            if pattern is None:
                pattern = len(self._pattern_rows)
                self._pattern_ids[key] = pattern
                self._pattern_rows.append(row.copy())
                new_rows += 1
            local_to_global[k] = pattern
        if mode == "decay":
            counts = np.bincount(
                np.ravel(inverse), minlength=len(uniq)
            ).astype(np.float64)
            if new_rows:
                self._pattern_weights = np.concatenate(
                    [self._pattern_weights, np.zeros(new_rows)]
                )
            self._pattern_weights[local_to_global] += counts
            self._evict_patterns(
                self._pattern_weights >= self.config.pattern_weight_floor
            )
        elif mode == "window":
            counts = np.bincount(np.ravel(inverse), minlength=len(uniq))
            if new_rows:
                self._pattern_refs = np.concatenate(
                    [self._pattern_refs, np.zeros(new_rows, dtype=np.int64)]
                )
            self._pattern_refs[local_to_global] += counts
            self._row_ids.append(local_to_global[inverse.astype(np.int32)])
            while len(self._row_ids) > self.config.window_batches:
                expired = self._row_ids.pop(0)
                self._pattern_refs -= np.bincount(
                    expired, minlength=len(self._pattern_refs)
                )
            self._evict_patterns(self._pattern_refs > 0)
        else:
            self._row_ids.append(local_to_global[inverse.astype(np.int32)])

    def _evict_patterns(self, keep: np.ndarray) -> None:
        """Drop patterns where ``keep`` is False; remap retained ids."""
        if bool(keep.all()):
            return
        remap = np.cumsum(keep) - 1
        self._pattern_rows = [
            row for row, kept in zip(self._pattern_rows, keep) if kept
        ]
        self._pattern_ids = {
            row.tobytes(): i for i, row in enumerate(self._pattern_rows)
        }
        if self._pattern_weights is not None:
            self._pattern_weights = self._pattern_weights[keep]
        if self._pattern_refs is not None:
            self._pattern_refs = self._pattern_refs[keep]
        if self._row_ids:
            self._row_ids = [
                remap[ids].astype(np.int32) for ids in self._row_ids
            ]

    def _incremental_steps(self, votes: np.ndarray) -> None:
        cfg = self.config
        if cfg.steps_per_batch < 1:
            return
        if self._model.alpha is None:
            self._model.init_params(votes.shape[1])
            # Mirror fit()'s warm start: beta from observed fire rates.
            propensity = np.clip(
                np.abs(votes).mean(axis=0), 1e-3, 1 - 1e-3
            )
            self._model.beta = np.log(propensity / (1 - propensity)) / 2.0
        batch_size = min(cfg.base.batch_size, votes.shape[0])
        for _ in range(cfg.steps_per_batch):
            idx = self._rng.integers(0, votes.shape[0], size=batch_size)
            self._model.partial_step(votes[idx])

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Bit-exact snapshot of everything :meth:`observe` mutates.

        Includes the minibatch sampler's RNG state, both step counters
        (``batches_observed`` here, ``steps_taken`` on the inner model),
        and the retention-mode state (decayed moments and pattern
        weights, or the rolling window's per-batch contributions) so a
        restored model takes *exactly* the updates the uninterrupted run
        would have taken — resumed streams converge to the same
        parameters to the bit, not just in distribution.

        Returns:
            A JSON-safe dict (arrays as base64 raw buffers). Schema 2;
            readers accept schema-1 dicts written before the retention
            modes existed (see :meth:`load_state`).
        """
        from repro.dfs.records import encode_ndarray

        def enc(array: np.ndarray | None):
            return None if array is None else encode_ndarray(array)

        window = self._window_moments
        return {
            "schema": 2,
            "n_lfs": self.n_lfs,
            "n_observed": self.n_observed,
            "batches_observed": self.batches_observed,
            "refits_done": self.refits_done,
            "rng_state": self._rng.bit_generator.state,
            "pattern_rows": enc(
                np.vstack(self._pattern_rows) if self._pattern_rows else None
            ),
            "row_ids": enc(
                np.concatenate(self._row_ids) if self._row_ids else None
            ),
            "row_id_lengths": [len(ids) for ids in self._row_ids],
            "vote_sum": enc(self._vote_sum),
            "fire_sum": enc(self._fire_sum),
            "agreement": enc(self._agreement),
            "model": self._model.state_dict(),
            # Retention-mode state (schema 2; absent in pre-drift
            # manifests, which load_state treats as cumulative).
            "moment_weight": self._moment_weight,
            "pattern_weights": enc(self._pattern_weights),
            "pattern_refs": enc(self._pattern_refs),
            "window_vote_sums": enc(
                np.stack([e[0] for e in window]) if window else None
            ),
            "window_fire_sums": enc(
                np.stack([e[1] for e in window]) if window else None
            ),
            "window_agreements": enc(
                np.stack([e[2] for e in window]) if window else None
            ),
            "window_counts": enc(
                np.array([e[3] for e in window]) if window else None
            ),
        }

    def load_state(self, state: dict) -> "OnlineLabelModel":
        """Restore a :meth:`state_dict` snapshot onto this instance.

        The instance must have been constructed with the same config the
        snapshot was taken under (configs are the caller's contract, the
        snapshot carries only mutable state). Schema-1 dicts — written
        by pre-drift checkpoints, before the retention modes existed —
        restore cleanly: the missing retention keys default to the
        cumulative-mode values they implicitly had.

        Args:
            state: A dict produced by :meth:`state_dict` (schema 1 or 2).

        Returns:
            ``self``, for chaining.
        """
        from repro.dfs.records import decode_ndarray

        def dec(payload):
            return None if payload is None else decode_ndarray(payload)

        self.n_lfs = state["n_lfs"]
        self.n_observed = int(state["n_observed"])
        self.batches_observed = int(state["batches_observed"])
        self.refits_done = int(state["refits_done"])
        self._rng = np.random.default_rng(self.config.seed)
        self._rng.bit_generator.state = state["rng_state"]
        rows = dec(state["pattern_rows"])
        self._pattern_rows = [] if rows is None else [row for row in rows]
        self._pattern_ids = {
            row.tobytes(): i for i, row in enumerate(self._pattern_rows)
        }
        flat_ids = dec(state["row_ids"])
        self._row_ids = []
        if flat_ids is not None:
            offset = 0
            for length in state["row_id_lengths"]:
                self._row_ids.append(flat_ids[offset:offset + length])
                offset += length
        self._vote_sum = dec(state["vote_sum"])
        self._fire_sum = dec(state["fire_sum"])
        self._agreement = dec(state["agreement"])
        # Schema-1 dicts predate the retention modes: their implicit
        # moment weight is the observed count and they carry no decayed
        # weights or window segments.
        self._moment_weight = float(
            state.get("moment_weight", self.n_observed)
        )
        weights = dec(state.get("pattern_weights"))
        if self.config.decay is not None:
            self._pattern_weights = (
                np.zeros(len(self._pattern_rows)) if weights is None else weights
            )
        else:
            self._pattern_weights = weights
        refs = dec(state.get("pattern_refs"))
        if self.config.window_batches is not None:
            self._pattern_refs = (
                np.zeros(len(self._pattern_rows), dtype=np.int64)
                if refs is None
                else refs
            )
        else:
            self._pattern_refs = refs
        self._window_moments = (
            deque() if self.config.window_batches is not None else None
        )
        w_votes = dec(state.get("window_vote_sums"))
        if w_votes is not None and self._window_moments is not None:
            w_fires = dec(state.get("window_fire_sums"))
            w_agrees = dec(state.get("window_agreements"))
            w_counts = dec(state.get("window_counts"))
            for k in range(len(w_counts)):
                self._window_moments.append(
                    (w_votes[k], w_fires[k], w_agrees[k], float(w_counts[k]))
                )
        self._model = SamplingFreeLabelModel(replace(self.config.base))
        self._model.load_state(state["model"])
        return self

    # ------------------------------------------------------------------
    # reconstruction + accessors
    # ------------------------------------------------------------------
    def reconstruct_matrix(self) -> np.ndarray:
        """The retained label matrix the next refit will train on.

        Returns:
            Cumulative mode: the exact observed matrix, in stream order,
            as int8. Window mode: exactly the last ``window_batches``
            micro-batches' rows, in stream order. Decay mode: the
            recency-weighted matrix — each retained pattern repeated
            ``round(weight)`` times (half-up, so a weight at 0.5 still
            contributes a row), in pattern-id order; patterns whose
            weight rounds to zero are omitted.
        """
        if self.n_observed == 0:
            return np.zeros((0, self.n_lfs or 0), dtype=np.int8)
        patterns = np.vstack(self._pattern_rows)
        if self.mode == "decay":
            reps = np.floor(self._pattern_weights + 0.5).astype(np.int64)
            return patterns[np.repeat(np.arange(len(patterns)), reps)]
        ids = np.concatenate(self._row_ids)
        return patterns[ids]

    @property
    def model(self) -> SamplingFreeLabelModel:
        """The current parameter estimate (incremental or last refit)."""
        return self._model

    @property
    def n_patterns(self) -> int:
        """Distinct vote rows retained — the compressed stream size."""
        return len(self._pattern_rows)

    @property
    def effective_examples(self) -> float:
        """The weight behind the current moments: ``n_observed`` in
        cumulative mode, the decayed mass in decay mode, the window's
        example count in window mode."""
        return self._moment_weight

    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        """Posterior ``P(Y=+1 | L)`` from the current parameter estimate.

        Args:
            L: ``(n, m)`` vote matrix over ``{-1, 0, 1}``.

        Returns:
            ``(n,)`` float64 posteriors.

        Raises:
            RuntimeError: If the inner model has no parameters yet.
        """
        return self._model.predict_proba(L)

    def predict(self, L: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard labels in ``{-1, +1}`` at a probability threshold.

        Args:
            L: ``(n, m)`` vote matrix over ``{-1, 0, 1}``.
            threshold: Posterior cut; rows at exactly the threshold
                (no-evidence rows under the uniform prior) stay -1.

        Returns:
            ``(n,)`` int8 labels.

        Raises:
            RuntimeError: If the inner model has no parameters yet.
        """
        return self._model.predict(L, threshold)

    def accuracies(self) -> np.ndarray:
        """Estimated ``P(lambda_j correct | lambda_j != 0)`` per LF.

        Returns:
            ``(m,)`` float64 accuracies from the current estimate.

        Raises:
            RuntimeError: If the inner model has no parameters yet.
        """
        return self._model.accuracies()

    def propensities(self) -> np.ndarray:
        """Estimated ``P(lambda_j != 0)`` per LF.

        Returns:
            ``(m,)`` float64 propensities from the current estimate.

        Raises:
            RuntimeError: If the inner model has no parameters yet.
        """
        return self._model.propensities()

    # ------------------------------------------------------------------
    # streaming moments (monitoring surface)
    # ------------------------------------------------------------------
    def mean_votes(self) -> np.ndarray:
        """First vote moment per LF: ``E[lambda_j]`` over the retained
        (recency-weighted) stream.

        Returns:
            ``(m,)`` float64 means.

        Raises:
            RuntimeError: If no votes have been observed yet.
        """
        self._check_observed()
        return self._vote_sum / self._moment_weight

    def fire_rates(self) -> np.ndarray:
        """Empirical propensity per LF: ``P(lambda_j != 0)`` over the
        retained (recency-weighted) stream.

        Returns:
            ``(m,)`` float64 rates.

        Raises:
            RuntimeError: If no votes have been observed yet.
        """
        self._check_observed()
        return self._fire_sum / self._moment_weight

    def agreement_matrix(self) -> np.ndarray:
        """Second vote moment ``E[lambda_j lambda_k]`` — the signal the
        LF-quality diagnostics and the drift monitor read for polarity
        conflicts.

        Returns:
            ``(m, m)`` float64 matrix.

        Raises:
            RuntimeError: If no votes have been observed yet.
        """
        self._check_observed()
        return self._agreement / self._moment_weight

    def _check_observed(self) -> None:
        if self.n_observed == 0:
            raise RuntimeError("no votes observed yet")
