"""Categorical-target generalization of the label model.

Section 2: "For simplicity, we focus on binary classification ... however
Snorkel DryBell can handle arbitrary categorical targets as well, e.g.
``Y_i in {1, ..., k}``."

Votes are ``lambda_j in {0, 1, ..., k}`` with 0 = abstain. The per-LF
parameterization extends naturally: a correct non-abstain vote carries
unnormalized log-probability ``alpha_j + beta_j``, each of the ``k - 1``
incorrect labels ``-alpha_j + beta_j`` (errors are spread uniformly across
wrong classes, the same tying the binary model uses), and abstain ``0``,
giving::

    Z_j = log( exp(alpha_j+beta_j) + (k-1) exp(-alpha_j+beta_j) + 1 )

Training minimizes the marginal NLL ``-sum_i log sum_y P(Lambda_i, y)``
with exact gradients, mirroring :class:`repro.core.SamplingFreeLabelModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.optim import AdamState, adam_step
from repro.core.patterns import CompressedVotes, compress_votes

__all__ = ["MulticlassConfig", "MulticlassLabelModel"]


@dataclass
class MulticlassConfig:
    """Training configuration for :class:`MulticlassLabelModel`."""

    n_steps: int = 1500
    batch_size: int = 64
    learning_rate: float = 0.05
    seed: int = 0
    init_alpha: float = 0.7
    min_alpha: float | None = 0.0
    """Better-than-random accuracy anchor; see
    :class:`repro.core.label_model.LabelModelConfig.min_alpha`."""
    compress: bool = False
    """When True, :meth:`MulticlassLabelModel.fit` trains on the
    deduplicated ``(patterns, multiplicities)`` form — same contract as
    :attr:`repro.core.label_model.LabelModelConfig.compress`."""


class MulticlassLabelModel:
    """Sampling-free label model for ``Y in {1..k}``."""

    def __init__(
        self, n_classes: int, config: MulticlassConfig | None = None
    ) -> None:
        if n_classes < 2:
            raise ValueError("need at least two classes")
        self.n_classes = n_classes
        self.config = config or MulticlassConfig()
        self.alpha: np.ndarray | None = None
        self.beta: np.ndarray | None = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, L: np.ndarray) -> "MulticlassLabelModel":
        """Estimate parameters from a vote matrix ``L`` in ``{0..k}``.

        With ``config.compress`` set, the matrix is deduplicated first
        and training runs on the compressed form
        (:meth:`fit_compressed`)."""
        L = self._validate(L)
        if self.config.compress:
            return self.fit_compressed(compress_votes(L))
        m, n = L.shape
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        self._init_fit(n, (L != 0).sum(axis=0), float(m))
        adam_alpha = AdamState.like(self.alpha)
        adam_beta = AdamState.like(self.beta)

        for _ in range(cfg.n_steps):
            if cfg.batch_size >= m:
                batch = L
            else:
                batch = L[rng.integers(0, m, size=cfg.batch_size)]
            grad_alpha, grad_beta = self._gradients(batch)
            self._apply_step(grad_alpha, grad_beta, adam_alpha, adam_beta)
        return self

    def fit_compressed(self, votes: CompressedVotes) -> "MulticlassLabelModel":
        """Estimate parameters from a pattern-compressed vote matrix.

        Same contract as
        :meth:`repro.core.label_model.SamplingFreeLabelModel.fit_compressed`:
        minibatch steps on an exact compression are bitwise-faithful to
        :meth:`fit` on the expanded matrix; full-batch steps use exact
        multiplicity-weighted gradients at O(patterns × m).

        Args:
            votes: The compressed matrix (see
                :func:`repro.core.patterns.compress_votes`).

        Returns:
            ``self``, fitted.
        """
        cfg = self.config
        P = self._validate(votes.patterns)
        weights = votes.weights.astype(np.float64, copy=False)
        total = float(votes.n_rows)
        rng = np.random.default_rng(cfg.seed)

        self._init_fit(
            P.shape[1], ((P != 0) * weights[:, None]).sum(axis=0), total
        )
        adam_alpha = AdamState.like(self.alpha)
        adam_beta = AdamState.like(self.beta)

        row_ids = votes.row_ids
        n_expanded = len(row_ids) if row_ids is not None else (
            int(total) if votes.integral else 0
        )
        pattern_ends = np.cumsum(weights) if row_ids is None else None

        for _ in range(cfg.n_steps):
            if cfg.batch_size >= total:
                grad_alpha, grad_beta = self._gradients_weighted(
                    P, weights, total
                )
            else:
                if row_ids is not None:
                    idx = rng.integers(0, n_expanded, size=cfg.batch_size)
                    batch = P[row_ids[idx]]
                elif votes.integral:
                    idx = rng.integers(0, n_expanded, size=cfg.batch_size)
                    batch = P[np.searchsorted(pattern_ends, idx, side="right")]
                else:
                    draw = rng.random(cfg.batch_size) * total
                    picked = np.searchsorted(pattern_ends, draw, side="right")
                    batch = P[np.minimum(picked, len(P) - 1)]
                grad_alpha, grad_beta = self._gradients(batch)
            self._apply_step(grad_alpha, grad_beta, adam_alpha, adam_beta)
        return self

    def _init_fit(
        self, n_lfs: int, fire_counts: np.ndarray, total: float
    ) -> None:
        """Reset alpha/beta for a fresh fit (propensity-matched beta)."""
        cfg = self.config
        self.alpha = np.full(n_lfs, cfg.init_alpha, dtype=np.float64)
        observed_propensity = np.clip(fire_counts / total, 1e-3, 1 - 1e-3)
        self.beta = np.log(observed_propensity / (1 - observed_propensity)) / 2.0

    def _apply_step(
        self,
        grad_alpha: np.ndarray,
        grad_beta: np.ndarray,
        adam_alpha: AdamState,
        adam_beta: AdamState,
    ) -> None:
        """One Adam update + min_alpha projection (shared by both fits)."""
        cfg = self.config
        self.alpha = adam_step(self.alpha, grad_alpha, adam_alpha, cfg.learning_rate)
        self.beta = adam_step(self.beta, grad_beta, adam_beta, cfg.learning_rate)
        if cfg.min_alpha is not None:
            self.alpha = np.maximum(self.alpha, cfg.min_alpha)

    def _gradients_weighted(
        self, P: np.ndarray, weights: np.ndarray, total: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Multiplicity-weighted :meth:`_gradients` over distinct
        patterns: per-row sums become weighted sums and the batch factor
        ``B`` becomes the total row mass ``total``."""
        posterior = self.predict_proba(P)
        non_abstain = P != 0
        vote_index = np.clip(P, 1, self.n_classes) - 1
        q_match = _gather_rows(posterior, vote_index) * non_abstain

        p_correct, p_wrong_total, p_abstain = self._outcome_probs()
        grad_alpha = -(
            (2.0 * q_match - 1.0) * non_abstain * weights[:, None]
        ).sum(axis=0) + total * (p_correct - p_wrong_total)
        grad_beta = -(non_abstain * weights[:, None]).sum(axis=0) + total * (
            1.0 - p_abstain
        )
        return grad_alpha, grad_beta

    def _gradients(self, L: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        B, n = L.shape
        posterior = self.predict_proba(L)         # (B, k)
        non_abstain = L != 0

        # q_match[i, j] = posterior probability that LF j's vote on i is
        # correct (0 where it abstained).
        vote_index = np.clip(L, 1, self.n_classes) - 1
        q_match = _gather_rows(posterior, vote_index) * non_abstain

        p_correct, p_wrong_total, p_abstain = self._outcome_probs()
        grad_alpha = -np.sum(
            (2.0 * q_match - 1.0) * non_abstain, axis=0
        ) + B * (p_correct - p_wrong_total)
        grad_beta = -non_abstain.sum(axis=0) + B * (1.0 - p_abstain)
        return grad_alpha, grad_beta

    def _outcome_probs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        k = self.n_classes
        logits = np.stack([
            self.alpha + self.beta,
            -self.alpha + self.beta + np.log(k - 1),
            np.zeros_like(self.alpha),
        ])
        peak = logits.max(axis=0)
        Z = peak + np.log(np.exp(logits - peak).sum(axis=0))
        probs = np.exp(logits - Z)
        return probs[0], probs[1], probs[2]

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        """Posterior ``P(Y_i = y | Lambda_i)`` of shape ``(m, k)``."""
        if self.alpha is None:
            raise RuntimeError("model is not fitted")
        L = self._validate(L)
        m, n = L.shape
        k = self.n_classes
        non_abstain = (L != 0).astype(np.float64)

        # score(i, y) = 2 alpha . 1{L_i = y} + const(i); constants cancel
        # in the softmax.
        scores = np.zeros((m, k))
        for y in range(1, k + 1):
            scores[:, y - 1] = ((L == y).astype(np.float64)) @ (2.0 * self.alpha)
        scores -= scores.max(axis=1, keepdims=True)
        exp = np.exp(scores)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, L: np.ndarray) -> np.ndarray:
        """Hard labels in {1..k}."""
        return self.predict_proba(L).argmax(axis=1) + 1

    def accuracies(self) -> np.ndarray:
        """``P(correct | non-abstain)`` per LF."""
        p_correct, p_wrong_total, _ = self._outcome_probs()
        return p_correct / (p_correct + p_wrong_total)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self, L: np.ndarray) -> np.ndarray:
        L = np.asarray(L)
        if L.ndim != 2:
            raise ValueError(f"label matrix must be 2-D, got {L.shape}")
        if L.min() < 0 or L.max() > self.n_classes:
            raise ValueError(
                f"votes must be in 0..{self.n_classes}, got range "
                f"[{L.min()}, {L.max()}]"
            )
        return L.astype(np.int64, copy=False)


def _gather_rows(posterior: np.ndarray, index: np.ndarray) -> np.ndarray:
    """``out[i, j] = posterior[i, index[i, j]]``."""
    m = posterior.shape[0]
    return posterior[np.arange(m)[:, None], index]
