"""Gibbs-sampling trainer for the generative model (the baseline).

"The open-source Snorkel implementation uses a Gibbs sampler to compute
the gradient of this likelihood, but sampling is relatively CPU intensive
and complicated to distribute across compute nodes." (Section 5.2.)

This module reproduces that baseline so the speed comparison in the paper
(">100 steps per second" for the compute-graph model versus "<50 examples
per second" for a Gibbs sampler at 10 LFs / batch 64) can be re-measured.

Algorithm (Monte-Carlo EM, matching the original Snorkel trainer's
structure):

1. **Gibbs sweep** — for each example in the minibatch, sample
   ``Y_i ~ P(Y_i | Lambda_i, w)``. The conditional is computed per
   example with an explicit per-LF loop; this *is* the CPU cost the paper
   is measuring, so we intentionally do not vectorize it.
2. **Complete-data gradient step** — with sampled ``Y`` treated as
   observed, the likelihood factorizes and the gradient w.r.t.
   ``alpha_j``/``beta_j`` has the usual exponential-family
   observed-minus-expected form; take one SGD step.

Both trainers converge to the same accuracies on conditionally
independent data (asserted by the test suite); they differ in CPU cost,
which is the point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["GibbsConfig", "GibbsLabelModel"]


@dataclass
class GibbsConfig:
    """Training configuration for :class:`GibbsLabelModel`."""

    n_epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 0.03
    burn_in_sweeps: int = 2
    seed: int = 0
    init_alpha: float = 0.7
    init_beta: float = 0.0
    min_alpha: float | None = 0.0
    """Better-than-random accuracy anchor; see
    :class:`repro.core.label_model.LabelModelConfig.min_alpha`."""


class GibbsLabelModel:
    """MC-EM Gibbs trainer over the Section 5.2 model."""

    def __init__(self, config: GibbsConfig | None = None) -> None:
        self.config = config or GibbsConfig()
        self.alpha: np.ndarray | None = None
        self.beta: np.ndarray | None = None
        self.examples_processed: int = 0

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, L: np.ndarray) -> "GibbsLabelModel":
        L = np.asarray(L)
        m, n = L.shape
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        self.alpha = np.full(n, cfg.init_alpha, dtype=np.float64)
        observed_propensity = np.clip(np.abs(L).mean(axis=0), 1e-3, 1 - 1e-3)
        self.beta = np.log(observed_propensity / (1 - observed_propensity)) / 2.0

        for _ in range(cfg.n_epochs):
            order = rng.permutation(m)
            for start in range(0, m, cfg.batch_size):
                batch_idx = order[start:start + cfg.batch_size]
                batch = L[batch_idx]
                y_samples = self._gibbs_sweep(batch, rng)
                self._complete_data_step(batch, y_samples)
                self.examples_processed += len(batch)
        return self

    def _gibbs_sweep(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Sample Y for each example with explicit per-example loops.

        The loop structure (per example, per LF, in Python) mirrors the
        per-variable conditional computation a Gibbs sampler performs and
        carries the CPU cost the paper contrasts against.
        """
        cfg = self.config
        alpha = self.alpha
        samples = np.empty(len(batch), dtype=np.int8)
        for sweep in range(cfg.burn_in_sweeps + 1):
            for i in range(len(batch)):
                log_pos = 0.0
                log_neg = 0.0
                row = batch[i]
                for j in range(len(row)):
                    vote = row[j]
                    if vote == 0:
                        continue
                    # beta / Z terms are symmetric in Y and cancel in the
                    # conditional; only the accuracy terms matter.
                    if vote == 1:
                        log_pos += alpha[j]
                        log_neg -= alpha[j]
                    else:
                        log_pos -= alpha[j]
                        log_neg += alpha[j]
                p_pos = 1.0 / (1.0 + math.exp(min(max(log_neg - log_pos, -500), 500)))
                samples[i] = 1 if rng.random() < p_pos else -1
        return samples

    def _complete_data_step(self, batch: np.ndarray, y: np.ndarray) -> None:
        """One SGD step on the complete-data likelihood."""
        cfg = self.config
        B = len(batch)
        correct = (batch == y[:, None]) & (batch != 0)
        wrong = (batch == -y[:, None]) & (batch != 0)
        non_abstain = batch != 0

        p_correct, p_wrong, p_abstain = self._outcome_probs()
        # Observed-minus-expected sufficient statistics.
        grad_alpha = -(correct.sum(axis=0) - wrong.sum(axis=0)) + B * (
            p_correct - p_wrong
        )
        grad_beta = -non_abstain.sum(axis=0) + B * (1.0 - p_abstain)
        self.alpha = self.alpha - cfg.learning_rate * grad_alpha
        self.beta = self.beta - cfg.learning_rate * grad_beta
        if cfg.min_alpha is not None:
            self.alpha = np.maximum(self.alpha, cfg.min_alpha)

    def _outcome_probs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        logits = np.stack([
            self.alpha + self.beta,
            -self.alpha + self.beta,
            np.zeros_like(self.alpha),
        ])
        peak = logits.max(axis=0)
        Z = peak + np.log(np.exp(logits - peak).sum(axis=0))
        probs = np.exp(logits - Z)
        return probs[0], probs[1], probs[2]

    # ------------------------------------------------------------------
    # inference (shared form with the sampling-free model)
    # ------------------------------------------------------------------
    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        if self.alpha is None:
            raise RuntimeError("model is not fitted")
        a = np.asarray(L, dtype=np.float64) @ self.alpha
        return 1.0 / (1.0 + np.exp(-np.clip(2.0 * a, -500, 500)))

    def accuracies(self) -> np.ndarray:
        if self.alpha is None:
            raise RuntimeError("model is not fitted")
        return 1.0 / (1.0 + np.exp(-2.0 * self.alpha))

    def benchmark_examples_per_second(
        self, L: np.ndarray, budget_seconds: float = 1.0
    ) -> float:
        """Measure Gibbs throughput in examples/second (Section 5.2)."""
        import time

        if self.alpha is None:
            n = L.shape[1]
            self.alpha = np.full(n, self.config.init_alpha)
            self.beta = np.zeros(n)
        rng = np.random.default_rng(self.config.seed)
        processed = 0
        # repro: allow[determinism] benchmark helper measures wall-clock throughput; never feeds label artifacts
        start = time.perf_counter()
        # repro: allow[determinism] wall-clock budget is this method's contract (budget_seconds)
        while time.perf_counter() - start < budget_seconds:
            idx = rng.integers(0, len(L), size=self.config.batch_size)
            batch = L[idx]
            y = self._gibbs_sweep(batch, rng)
            self._complete_data_step(batch, y)
            processed += len(batch)
        # repro: allow[determinism] elapsed time is the measurement itself, not a label input
        elapsed = time.perf_counter() - start
        return processed / elapsed
