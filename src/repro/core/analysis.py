"""Labeling-function diagnostics.

Section 3.3: "the resulting estimated accuracies were found to be
independently useful for identifying previously unknown low-quality
sources (which were then either fixed or removed)."

:class:`LFAnalysis` computes the per-LF statistics an engineer inspects
while iterating on labeling functions: coverage, overlap, conflict,
polarity, empirical accuracy against a labeled development set, and the
generative model's learned accuracy. ``flag_low_quality`` reproduces the
triage workflow described for the events application.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LFStats", "LFAnalysis"]


@dataclass
class LFStats:
    """Summary statistics for one labeling function."""

    name: str
    coverage: float
    overlap: float
    conflict: float
    polarity: tuple[int, ...]
    empirical_accuracy: float | None = None
    learned_accuracy: float | None = None

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "coverage": self.coverage,
            "overlap": self.overlap,
            "conflict": self.conflict,
            "polarity": self.polarity,
            "empirical_accuracy": self.empirical_accuracy,
            "learned_accuracy": self.learned_accuracy,
        }


class LFAnalysis:
    """Diagnostics over a label matrix ``L`` of shape (m, n)."""

    def __init__(self, L: np.ndarray, lf_names: list[str] | None = None) -> None:
        L = np.asarray(L)
        if L.ndim != 2:
            raise ValueError(f"label matrix must be 2-D, got {L.shape}")
        self.L = L
        self.n_examples, self.n_lfs = L.shape
        self.lf_names = lf_names or [f"lf_{j}" for j in range(self.n_lfs)]
        if len(self.lf_names) != self.n_lfs:
            raise ValueError("lf_names length does not match matrix width")

    # ------------------------------------------------------------------
    # per-LF statistics
    # ------------------------------------------------------------------
    def coverage(self) -> np.ndarray:
        """Fraction of examples each LF votes on."""
        return (self.L != 0).mean(axis=0)

    def overlap(self) -> np.ndarray:
        """Fraction of examples where the LF votes and so does another."""
        non_abstain = self.L != 0
        others = non_abstain.sum(axis=1, keepdims=True) - non_abstain
        return (non_abstain & (others > 0)).mean(axis=0)

    def conflict(self) -> np.ndarray:
        """Fraction of examples where the LF votes and another disagrees."""
        out = np.zeros(self.n_lfs)
        non_abstain = self.L != 0
        for j in range(self.n_lfs):
            votes_j = self.L[:, j]
            mask = votes_j != 0
            if not mask.any():
                continue
            others = np.delete(self.L[mask], j, axis=1)
            disagreement = np.any(
                (others != 0) & (others != votes_j[mask, None]), axis=1
            )
            out[j] = disagreement.sum() / self.n_examples
        return out

    def polarities(self) -> list[tuple[int, ...]]:
        """Distinct non-abstain labels emitted by each LF."""
        out = []
        for j in range(self.n_lfs):
            values = np.unique(self.L[:, j])
            out.append(tuple(int(v) for v in values if v != 0))
        return out

    def empirical_accuracies(self, gold: np.ndarray) -> np.ndarray:
        """Accuracy on non-abstain votes against gold labels.

        Returns NaN for LFs that never vote on the labeled slice.
        """
        gold = np.asarray(gold)
        if gold.shape != (self.n_examples,):
            raise ValueError(
                f"gold shape {gold.shape} does not match {self.n_examples} examples"
            )
        out = np.full(self.n_lfs, np.nan)
        for j in range(self.n_lfs):
            mask = self.L[:, j] != 0
            if mask.any():
                out[j] = float((self.L[mask, j] == gold[mask]).mean())
        return out

    # ------------------------------------------------------------------
    # pairwise statistics
    # ------------------------------------------------------------------
    def agreement_matrix(self) -> np.ndarray:
        """``A[j, k]`` = P(agree | both non-abstain); NaN if never co-vote."""
        n = self.n_lfs
        A = np.full((n, n), np.nan)
        for j in range(n):
            for k in range(n):
                both = (self.L[:, j] != 0) & (self.L[:, k] != 0)
                if both.any():
                    A[j, k] = float(
                        (self.L[both, j] == self.L[both, k]).mean()
                    )
        return A

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(
        self,
        gold: np.ndarray | None = None,
        learned_accuracies: np.ndarray | None = None,
    ) -> list[LFStats]:
        """Full per-LF summary, optionally joined with gold/learned accuracy."""
        cov = self.coverage()
        ove = self.overlap()
        con = self.conflict()
        pol = self.polarities()
        emp = self.empirical_accuracies(gold) if gold is not None else None
        out = []
        for j, name in enumerate(self.lf_names):
            out.append(
                LFStats(
                    name=name,
                    coverage=float(cov[j]),
                    overlap=float(ove[j]),
                    conflict=float(con[j]),
                    polarity=pol[j],
                    empirical_accuracy=(
                        None if emp is None or np.isnan(emp[j]) else float(emp[j])
                    ),
                    learned_accuracy=(
                        None
                        if learned_accuracies is None
                        else float(learned_accuracies[j])
                    ),
                )
            )
        return out

    def flag_low_quality(
        self,
        learned_accuracies: np.ndarray,
        threshold: float = 0.6,
    ) -> list[str]:
        """Names of LFs whose learned accuracy falls below ``threshold`` —
        the Section 3.3 triage that surfaced "previously unknown
        low-quality sources"."""
        learned_accuracies = np.asarray(learned_accuracies)
        if learned_accuracies.shape != (self.n_lfs,):
            raise ValueError("learned_accuracies length must match LF count")
        return [
            name
            for name, acc in zip(self.lf_names, learned_accuracies)
            if acc < threshold
        ]

    def as_table(self, **kwargs) -> str:
        """Plain-text table rendering of :meth:`summary`."""
        rows = self.summary(**kwargs)
        header = (
            f"{'labeling function':<32} {'cov':>6} {'ovl':>6} {'cnf':>6} "
            f"{'emp.acc':>8} {'lrn.acc':>8}"
        )
        lines = [header, "-" * len(header)]
        for stats in rows:
            emp = "-" if stats.empirical_accuracy is None else f"{stats.empirical_accuracy:.3f}"
            lrn = "-" if stats.learned_accuracy is None else f"{stats.learned_accuracy:.3f}"
            lines.append(
                f"{stats.name:<32} {stats.coverage:>6.3f} {stats.overlap:>6.3f} "
                f"{stats.conflict:>6.3f} {emp:>8} {lrn:>8}"
            )
        return "\n".join(lines)
