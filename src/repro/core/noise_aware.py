"""Noise-aware loss utilities (Section 2).

The discriminative classifier is trained by "minimizing a noise-aware
variant of a standard loss function, i.e. we minimize the expected loss
with respect to Y-tilde"::

    theta_hat = argmin_theta sum_i E_{y ~ Y~_i} [ l(h_theta(X_i), y) ]

For log loss this expectation is the cross-entropy against the soft
posterior; these helpers convert the generative model's posteriors into
soft targets and compute the expected loss, and are shared by the FTRL
logistic regression and the numpy MLP.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "labels_to_soft_targets",
    "soft_targets_to_weights",
    "expected_log_loss",
    "clip_probabilities",
]

_EPS = 1e-12


def clip_probabilities(p: np.ndarray, eps: float = 1e-7) -> np.ndarray:
    """Clip probabilities away from {0, 1} for stable log loss."""
    return np.clip(np.asarray(p, dtype=np.float64), eps, 1.0 - eps)


def labels_to_soft_targets(labels: np.ndarray) -> np.ndarray:
    """Map hard labels in {-1, +1} to degenerate soft targets {0, 1}.

    Lets the supervised baselines run through the exact same noise-aware
    training code path as the weakly supervised models.
    """
    labels = np.asarray(labels)
    if not np.all(np.isin(np.unique(labels), (-1, 1))):
        raise ValueError("hard labels must be in {-1, +1}")
    return (labels == 1).astype(np.float64)


def soft_targets_to_weights(soft: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Decompose soft targets into (positive weight, negative weight).

    The expected loss ``E_{y~p}[l(h, y)]`` over a binary y equals
    ``p * l(h, +1) + (1-p) * l(h, -1)`` — i.e. each example acts as a
    positive with weight ``p`` and a negative with weight ``1-p``. FTRL
    consumes this decomposition directly.
    """
    soft = np.asarray(soft, dtype=np.float64)
    if np.any(soft < 0) or np.any(soft > 1):
        raise ValueError("soft targets must lie in [0, 1]")
    return soft, 1.0 - soft


def expected_log_loss(predicted: np.ndarray, soft_targets: np.ndarray) -> float:
    """Mean noise-aware log loss ``E_{y~p}[-log P(y | x)]``."""
    predicted = clip_probabilities(predicted)
    soft = np.asarray(soft_targets, dtype=np.float64)
    if predicted.shape != soft.shape:
        raise ValueError(
            f"shape mismatch: predictions {predicted.shape} vs targets {soft.shape}"
        )
    losses = -(soft * np.log(predicted) + (1.0 - soft) * np.log(1.0 - predicted))
    return float(losses.mean()) if losses.size else 0.0
