"""Sampling-free generative label model (Section 5.2).

The model
---------
Binary labels ``Y_i in {-1, +1}`` and labeling-function votes
``Lambda_ij in {-1, 0, +1}`` (0 = abstain). The conditionally independent
generative model is::

    P_w(Lambda, Y) = prod_i P(Y_i) prod_j P(lambda_j(X_i) | Y_i)

with shared per-LF parameters, in log space for numeric stability exactly
as the paper specifies: ``alpha_j`` is the unnormalized log probability
that LF ``j`` votes *correctly* given it did not abstain, ``beta_j`` the
unnormalized log probability that it did not abstain, and::

    Z_j = log(exp(alpha_j + beta_j) + exp(-alpha_j + beta_j) + 1)

so that per (example, LF) the log-likelihood contribution is
``alpha_j + beta_j - Z_j`` for a correct vote, ``-alpha_j + beta_j - Z_j``
for an incorrect vote, and ``-Z_j`` for an abstain. The training
objective is the *marginal* negative log-likelihood ``-log P(Lambda)``,
marginalizing ``Y`` — no ground-truth labels are used anywhere.

Why sampling-free
-----------------
The open-source Snorkel of the time used a Gibbs sampler to estimate this
gradient; the paper replaces it with a static compute graph and exact
gradient steps ("hundreds of gradient steps per second on a single compute
node"). TensorFlow is not available here, so we implement the *same*
computation in NumPy: the closed-form objective below **is** the paper's
static graph, and the analytic gradients below are exactly what
TensorFlow's reverse-mode autodiff would produce for it.

Vectorized form used in this module (per minibatch ``L`` of shape
``(B, n)``)::

    a_i = sum_j L_ij * alpha_j              # since L in {-1,0,1}
    b_i = sum_j |L_ij| * beta_j
    log P(L_i, Y=+1) = a_i + b_i - sum_j Z_j
    log P(L_i, Y=-1) = -a_i + b_i - sum_j Z_j
    NLL = -sum_i [ b_i - sum_j Z_j
                   + logaddexp(a_i + log pi_+, -a_i + log pi_-) ]

with posterior ``P(Y_i=+1 | L_i) = sigmoid(2 a_i + logit(pi_+))``.
Gradients::

    dNLL/dalpha_j = -sum_i (2 p_i - 1) L_ij + B * (P_j(correct) - P_j(incorrect))
    dNLL/dbeta_j  = -sum_i |L_ij|          + B * (1 - P_j(abstain))

The class prior ``pi_+`` is uniform by default ("For simplicity, here we
assume that P(Y_i) is uniform, but we can also learn this distribution"),
and can be learned through a logit parameter.

Pattern-compressed fitting
--------------------------
Because the likelihood sees the data only through vote patterns, the
``(n, m)`` matrix can be deduplicated into ``(patterns, multiplicities)``
(:mod:`repro.core.patterns`) and the objective rewritten with exact
multiplicity weights: a full-batch gradient step costs O(patterns × m)
independent of ``n``. :meth:`SamplingFreeLabelModel.fit_compressed`
implements that path; minibatch steps sample *expanded row indices* with
the very RNG calls the full-matrix fit makes and map them to patterns,
so on an exact compression the compressed fit reproduces the
full-matrix fit bitwise whenever every step is a minibatch step (and to
≤ 1e-9 posteriors when full-batch weighted steps are involved — the
differential fuzz harness in ``tests/test_fit_equivalence.py`` gates
both regimes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.optim import AdamState, sgd_step, adam_step
from repro.core.patterns import CompressedVotes, compress_votes

__all__ = ["LabelModelConfig", "SamplingFreeLabelModel"]


@dataclass
class LabelModelConfig:
    """Training configuration for :class:`SamplingFreeLabelModel`.

    Defaults mirror the paper's reported regime: minibatches of 64 and a
    step budget in the thousands (the paper reports >100 steps/second, so
    thousands of steps stay inside its "tens of minutes" envelope even at
    full scale).
    """

    n_steps: int = 6000
    batch_size: int = 64
    learning_rate: float = 0.003
    optimizer: str = "sgd"  # "sgd" | "adam"
    learn_class_prior: bool = False
    init_class_prior: float = 0.5
    l2: float = 0.0
    seed: int = 0
    init_alpha: float = 0.7
    init_beta: float = 0.0
    track_loss_every: int = 50
    min_alpha: float | None = 0.0
    """Lower bound on the accuracy parameters (projected after each
    step). The marginal likelihood is invariant to flipping the sign of
    any polarity-connected cluster of LFs, and with rare positives the
    flipped (anti-accurate) solution actually wins on conflict rows —
    so, like the original Snorkel's better-than-random accuracy priors,
    we anchor accuracies at >= 50% by default. Set to ``None`` to allow
    adversarial LFs (e.g. for the LF-triage diagnostics on symmetric
    data)."""
    compress: bool = False
    """When True, :meth:`SamplingFreeLabelModel.fit` deduplicates the
    vote matrix into ``(patterns, multiplicities)`` and trains on the
    compressed form (:meth:`~SamplingFreeLabelModel.fit_compressed`):
    full-batch steps cost O(patterns × m) instead of O(n × m), and
    minibatch steps are bitwise-faithful to the uncompressed fit."""


class SamplingFreeLabelModel:
    """The Section 5.2 generative model with exact-gradient training."""

    def __init__(self, config: LabelModelConfig | None = None) -> None:
        self.config = config or LabelModelConfig()
        self.alpha: np.ndarray | None = None
        self.beta: np.ndarray | None = None
        self.prior_logit: float = _logit(self.config.init_class_prior)
        self.loss_history: list[tuple[int, float]] = []
        self.n_lfs: int | None = None
        self.steps_taken: int = 0

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, L: np.ndarray) -> "SamplingFreeLabelModel":
        """Estimate parameters from a label matrix ``L`` of shape (m, n).

        Only the votes are used; no ground truth enters the procedure.
        With ``config.compress`` set, the matrix is deduplicated into
        ``(patterns, multiplicities)`` first and training runs on the
        compressed form (see :meth:`fit_compressed`).
        """
        L = _validate_label_matrix(L)
        if self.config.compress:
            return self.fit_compressed(compress_votes(L))
        m, n = L.shape
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        self._init_fit(n, np.abs(L).sum(axis=0), float(m))

        optimizer = self._optimizer_state()

        for step in range(cfg.n_steps):
            if cfg.batch_size >= m:
                batch = L
            else:
                idx = rng.integers(0, m, size=cfg.batch_size)
                batch = L[idx]
            grads = self._gradients(batch)
            loss = self._step_update(grads, optimizer)
            if cfg.track_loss_every and step % cfg.track_loss_every == 0:
                self.loss_history.append((step, loss / len(batch)))
        return self

    def fit_compressed(self, votes: CompressedVotes) -> "SamplingFreeLabelModel":
        """Estimate parameters from a pattern-compressed vote matrix.

        The multiplicity-weighted objective is *exact*: per-step results
        match fitting the expanded matrix. Two regimes:

        * **minibatch** (``batch_size < n_rows``): each step samples
          patterns proportional to multiplicity. On an exact compression
          (``row_ids`` present, or integer weights) the sampler draws
          expanded row indices with the same RNG calls the full-matrix
          fit makes, so sampled batches — and therefore the entire fit —
          are bitwise identical to :meth:`fit` on the expanded matrix.
          Real-valued weights (decay retention) sample via inverse-CDF
          over the weight vector, leaving the sampled-gradient
          distribution unchanged.
        * **full-batch** (``batch_size >= n_rows``): exact
          multiplicity-weighted gradients at O(patterns × m) per step,
          independent of ``n_rows`` — agreeing with the full-matrix fit
          to ≤ 1e-9 posteriors (summation order differs, so last-ulp
          drift is possible but bounded; gated by the fuzz harness).

        Args:
            votes: The compressed matrix (see
                :func:`repro.core.patterns.compress_votes`).

        Returns:
            ``self``, fitted.

        Raises:
            ValueError: If the patterns contain votes outside
                ``{-1, 0, 1}``.
        """
        cfg = self.config
        P = _validate_label_matrix(votes.patterns)
        weights = votes.weights.astype(np.float64, copy=False)
        absP = np.abs(P)
        total = float(votes.n_rows)
        rng = np.random.default_rng(cfg.seed)

        # Weighted fire counts are exact integers whenever the weights
        # are, so this reproduces np.abs(L).sum(axis=0) bit-for-bit on
        # an exact compression.
        self._init_fit(P.shape[1], (absP * weights[:, None]).sum(axis=0), total)

        optimizer = self._optimizer_state()

        # Exact-compression sampling surface: expanded row index -> row.
        row_ids = votes.row_ids
        n_expanded = len(row_ids) if row_ids is not None else (
            int(total) if votes.integral else 0
        )
        pattern_ends = (
            np.cumsum(weights) if row_ids is None else None
        )

        for step in range(cfg.n_steps):
            if cfg.batch_size >= total:
                grads = self._gradients_weighted(P, absP, weights, total)
                loss = self._step_update(grads, optimizer)
                denom = total
            else:
                if row_ids is not None:
                    idx = rng.integers(0, n_expanded, size=cfg.batch_size)
                    batch = P[row_ids[idx]]
                elif votes.integral:
                    idx = rng.integers(0, n_expanded, size=cfg.batch_size)
                    batch = P[
                        np.searchsorted(pattern_ends, idx, side="right")
                    ]
                else:
                    draw = rng.random(cfg.batch_size) * total
                    picked = np.searchsorted(pattern_ends, draw, side="right")
                    batch = P[np.minimum(picked, len(P) - 1)]
                grads = self._gradients(batch)
                loss = self._step_update(grads, optimizer)
                denom = len(batch)
            if cfg.track_loss_every and step % cfg.track_loss_every == 0:
                self.loss_history.append((step, loss / denom))
        return self

    def _init_fit(
        self, n_lfs: int, fire_counts: np.ndarray, total: float
    ) -> None:
        """Reset parameters for a fresh fit.

        Initialize beta from observed propensities: beta enters only
        through P(abstain), so matching empirical abstain rates starts
        the optimizer near the likelihood ridge. This mirrors standard
        practice and shortens the step budget; alpha still starts from
        a weakly-optimistic prior ("LFs are better than random").
        """
        cfg = self.config
        self.n_lfs = n_lfs
        self.alpha = np.full(n_lfs, cfg.init_alpha, dtype=np.float64)
        self.prior_logit = _logit(cfg.init_class_prior)
        self.loss_history = []
        observed_propensity = np.clip(fire_counts / total, 1e-3, 1 - 1e-3)
        self.beta = np.log(observed_propensity / (1 - observed_propensity)) / 2.0

    def _optimizer_state(self) -> tuple[AdamState, AdamState, AdamState]:
        """Fresh per-fit Adam accumulators (unused under SGD)."""
        return (
            AdamState.like(self.alpha),
            AdamState.like(self.beta),
            AdamState.like(np.zeros(1)),
        )

    def _step_update(
        self,
        grads: tuple[np.ndarray, np.ndarray, float, float],
        optimizer: tuple[AdamState, AdamState, AdamState],
    ) -> float:
        """Apply one optimizer step from precomputed gradients.

        Shared by the full-matrix and compressed fit loops so the two
        paths cannot drift: l2, the optimizer update, the ``min_alpha``
        projection, and the step counter are one code path. Returns the
        (l2-adjusted) summed loss for tracking.
        """
        cfg = self.config
        adam_alpha, adam_beta, adam_prior = optimizer
        grad_alpha, grad_beta, grad_prior, loss = grads
        if cfg.l2 > 0.0:
            grad_alpha = grad_alpha + cfg.l2 * self.alpha
            grad_beta = grad_beta + cfg.l2 * self.beta
            loss += 0.5 * cfg.l2 * (
                float(self.alpha @ self.alpha) + float(self.beta @ self.beta)
            )

        if cfg.optimizer == "adam":
            self.alpha = adam_step(self.alpha, grad_alpha, adam_alpha, cfg.learning_rate)
            self.beta = adam_step(self.beta, grad_beta, adam_beta, cfg.learning_rate)
            if cfg.learn_class_prior:
                new = adam_step(
                    np.array([self.prior_logit]),
                    np.array([grad_prior]),
                    adam_prior,
                    cfg.learning_rate,
                )
                self.prior_logit = float(new[0])
        elif cfg.optimizer == "sgd":
            self.alpha = sgd_step(self.alpha, grad_alpha, cfg.learning_rate)
            self.beta = sgd_step(self.beta, grad_beta, cfg.learning_rate)
            if cfg.learn_class_prior:
                self.prior_logit -= cfg.learning_rate * grad_prior
        else:
            raise ValueError(f"unknown optimizer {cfg.optimizer!r}")

        if cfg.min_alpha is not None:
            self.alpha = np.maximum(self.alpha, cfg.min_alpha)
        self.steps_taken += 1
        return loss

    def partial_step(self, batch: np.ndarray) -> float:
        """Take one gradient step on a caller-supplied minibatch.

        Used by the speed benchmark (steps/second, Section 5.2) and by the
        distributed trainer in :mod:`repro.pipeline`, which shards batches
        across simulated nodes the way the paper notes TensorFlow's API
        makes easy.
        """
        if self.alpha is None or self.beta is None:
            raise RuntimeError("call fit() or init_params() before partial_step()")
        batch = _validate_label_matrix(batch)
        cfg = self.config
        grad_alpha, grad_beta, grad_prior, loss = self._gradients(batch)
        self.alpha = self.alpha - cfg.learning_rate * grad_alpha
        self.beta = self.beta - cfg.learning_rate * grad_beta
        if cfg.learn_class_prior:
            self.prior_logit -= cfg.learning_rate * grad_prior
        if cfg.min_alpha is not None:
            self.alpha = np.maximum(self.alpha, cfg.min_alpha)
        self.steps_taken += 1
        return loss / len(batch)

    def init_params(self, n_lfs: int) -> None:
        """Initialize parameters without fitting (for step-wise training)."""
        cfg = self.config
        self.n_lfs = n_lfs
        self.alpha = np.full(n_lfs, cfg.init_alpha, dtype=np.float64)
        self.beta = np.full(n_lfs, cfg.init_beta, dtype=np.float64)
        self.prior_logit = _logit(cfg.init_class_prior)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Bit-exact snapshot of all mutable training state.

        ``steps_taken`` is part of the snapshot so step-count-dependent
        behavior (learning-rate schedules, loss-tracking cadence) never
        restarts from zero on a resumed stream.
        """
        from repro.dfs.records import encode_ndarray

        return {
            "alpha": None if self.alpha is None else encode_ndarray(self.alpha),
            "beta": None if self.beta is None else encode_ndarray(self.beta),
            "prior_logit": self.prior_logit,
            "n_lfs": self.n_lfs,
            "steps_taken": self.steps_taken,
            "loss_history": [[int(s), float(l)] for s, l in self.loss_history],
        }

    def load_state(self, state: dict) -> "SamplingFreeLabelModel":
        """Restore a :meth:`state_dict` snapshot onto this instance."""
        from repro.dfs.records import decode_ndarray

        self.alpha = (
            None if state["alpha"] is None else decode_ndarray(state["alpha"])
        )
        self.beta = (
            None if state["beta"] is None else decode_ndarray(state["beta"])
        )
        self.prior_logit = float(state["prior_logit"])
        self.n_lfs = state["n_lfs"]
        self.steps_taken = int(state["steps_taken"])
        self.loss_history = [
            (int(s), float(l)) for s, l in state["loss_history"]
        ]
        return self

    # ------------------------------------------------------------------
    # objective / gradient
    # ------------------------------------------------------------------
    def _gradients(
        self, L: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float, float]:
        """Return (grad_alpha, grad_beta, grad_prior_logit, summed NLL)."""
        alpha, beta = self.alpha, self.beta
        B = L.shape[0]
        absL = np.abs(L)

        a = L @ alpha                      # (B,)
        b = absL @ beta                    # (B,)
        z_parts = self._z_components()     # per-LF (p_correct, p_wrong, p_abstain, Z)
        p_correct, p_wrong, p_abstain, Z = z_parts
        z_sum = float(Z.sum())

        log_prior_pos = -np.logaddexp(0.0, -self.prior_logit)   # log sigmoid
        log_prior_neg = -np.logaddexp(0.0, self.prior_logit)
        lse = np.logaddexp(a + log_prior_pos, -a + log_prior_neg)
        nll = -float(np.sum(b - z_sum + lse))

        # Posterior P(Y=+1 | L_i) = sigmoid(2 a_i + prior_logit).
        posterior = _sigmoid(2.0 * a + self.prior_logit)
        signed = 2.0 * posterior - 1.0       # E[Y_i | L_i]

        grad_alpha = -(L.T @ signed) + B * (p_correct - p_wrong)
        grad_beta = -absL.sum(axis=0) + B * (1.0 - p_abstain)
        # d(log prior terms)/d(prior_logit): E[Y]=2p-1 pushes the prior
        # toward the average posterior.
        grad_prior = -float(np.sum(posterior - _sigmoid(self.prior_logit)))
        return grad_alpha, grad_beta, grad_prior, nll

    def _gradients_weighted(
        self,
        P: np.ndarray,
        absP: np.ndarray,
        weights: np.ndarray,
        total: float,
    ) -> tuple[np.ndarray, np.ndarray, float, float]:
        """Multiplicity-weighted gradients over distinct patterns.

        Exactly the :meth:`_gradients` objective with each pattern row
        counted ``weights[p]`` times — every per-row sum becomes a
        weighted sum and the batch-size factor ``B`` becomes the total
        row mass — at O(patterns × m) cost. ``grad_beta`` uses an
        explicit column sum (not a BLAS dot) so that with unit weights
        it reproduces ``absL.sum(axis=0)`` bit-for-bit.
        """
        alpha, beta = self.alpha, self.beta
        a = P @ alpha                      # (k,)
        b = absP @ beta                    # (k,)
        p_correct, p_wrong, p_abstain, Z = self._z_components()
        z_sum = float(Z.sum())

        log_prior_pos = -np.logaddexp(0.0, -self.prior_logit)
        log_prior_neg = -np.logaddexp(0.0, self.prior_logit)
        lse = np.logaddexp(a + log_prior_pos, -a + log_prior_neg)
        nll = -float(np.sum(weights * (b - z_sum + lse)))

        posterior = _sigmoid(2.0 * a + self.prior_logit)
        signed = 2.0 * posterior - 1.0

        grad_alpha = -(P.T @ (weights * signed)) + total * (p_correct - p_wrong)
        grad_beta = (
            -(absP * weights[:, None]).sum(axis=0) + total * (1.0 - p_abstain)
        )
        grad_prior = -float(
            np.sum(weights * (posterior - _sigmoid(self.prior_logit)))
        )
        return grad_alpha, grad_beta, grad_prior, nll

    def _z_components(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-LF outcome probabilities and log partition ``Z_j``."""
        alpha, beta = self.alpha, self.beta
        logits = np.stack([alpha + beta, -alpha + beta, np.zeros_like(alpha)])
        Z = _logsumexp_rows(logits)
        probs = np.exp(logits - Z)
        return probs[0], probs[1], probs[2], Z

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict_proba(self, L: np.ndarray) -> np.ndarray:
        """Posterior ``P(Y_i = +1 | Lambda_i)`` — the probabilistic
        training labels handed to the discriminative model."""
        self._check_fitted()
        L = _validate_label_matrix(L)
        a = L @ self.alpha
        return _sigmoid(2.0 * a + self.prior_logit)

    def predict(self, L: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard labels in {-1, +1} at a probability threshold.

        The inequality is strict: an all-abstain row has posterior exactly
        ``class_prior()`` (0.5 under the uniform prior), i.e. *no
        evidence*, and no-evidence rows must not be called positive.
        """
        proba = self.predict_proba(L)
        return np.where(proba > threshold, 1, -1).astype(np.int8)

    def nll(self, L: np.ndarray) -> float:
        """Full-dataset mean negative marginal log-likelihood."""
        self._check_fitted()
        L = _validate_label_matrix(L)
        _, _, _, total = self._gradients(L)
        return total / len(L)

    # ------------------------------------------------------------------
    # learned quantities
    # ------------------------------------------------------------------
    def accuracies(self) -> np.ndarray:
        """``P(lambda_j correct | lambda_j != 0)`` for each LF.

        These are the independently-useful accuracy estimates the events
        team used to find "previously unknown low-quality sources"
        (Section 3.3): ``sigmoid(2 alpha_j)``.
        """
        self._check_fitted()
        return _sigmoid(2.0 * self.alpha)

    def propensities(self) -> np.ndarray:
        """``P(lambda_j != 0)`` for each LF."""
        self._check_fitted()
        p_correct, p_wrong, _, _ = self._z_components()
        return p_correct + p_wrong

    def class_prior(self) -> float:
        """``P(Y = +1)`` (0.5 unless the prior was learned)."""
        return float(_sigmoid(self.prior_logit))

    def _check_fitted(self) -> None:
        if self.alpha is None or self.beta is None:
            raise RuntimeError("model is not fitted; call fit() first")


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _validate_label_matrix(L: np.ndarray) -> np.ndarray:
    L = np.asarray(L)
    if L.ndim != 2:
        raise ValueError(f"label matrix must be 2-D, got shape {L.shape}")
    values = np.unique(L)
    if not np.all(np.isin(values, (-1, 0, 1))):
        raise ValueError(
            f"binary label matrix entries must be in {{-1, 0, 1}}, got {values}"
        )
    return L.astype(np.float64, copy=False)


def _sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))


def _logit(p: float) -> float:
    p = min(max(p, 1e-9), 1 - 1e-9)
    return float(np.log(p / (1 - p)))


def _logsumexp_rows(logits: np.ndarray) -> np.ndarray:
    """logsumexp over axis 0 of a (3, n) stack."""
    peak = logits.max(axis=0)
    return peak + np.log(np.exp(logits - peak).sum(axis=0))
