"""Pattern compression for label-model fitting.

The generative model only sees the data through vote *patterns*: two
examples with identical vote rows contribute identically to the marginal
likelihood, so an ``(n, m)`` label matrix is losslessly equivalent to the
pair ``(patterns, multiplicities)`` — the distinct rows and how often
each occurs. At the benchmark workloads distinct patterns number in the
low thousands while ``n`` grows unbounded (≈5k patterns at n=30,720 in
the drift bench), so a fit that works on the compressed pair does
O(patterns × m) work per full-batch gradient step *independent of stream
length*.

:class:`CompressedVotes` is the carrier the compressed fitting paths in
:class:`~repro.core.label_model.SamplingFreeLabelModel` and
:class:`~repro.core.multiclass.MulticlassLabelModel` consume. It comes in
two flavors:

* **exact** (``row_ids`` present, or integer ``weights``): the expanded
  matrix — ``patterns[row_ids]``, or each pattern repeated ``weights[p]``
  times in pattern order — is recoverable bit-for-bit. Minibatch
  sampling draws *expanded row indices* with the same RNG calls the
  full-matrix fit makes and maps them to patterns, so sampled batches
  are byte-identical to the full path's and the whole fit reproduces the
  full-matrix fit **bitwise** whenever every step is a minibatch step.
* **weighted** (real-valued ``weights``, no ``row_ids``): the decay
  retention mode's recency weights. No expanded matrix exists; minibatch
  sampling draws patterns with probability proportional to weight, which
  leaves the sampled-gradient *distribution* unchanged relative to
  fitting the (hypothetical) weighted matrix.

Full-batch steps (``batch_size >= n_rows``) always use the
multiplicity-weighted closed-form gradients — the O(patterns × m) path
the refit-latency benchmark gates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CompressedVotes", "compress_votes"]


@dataclass(frozen=True)
class CompressedVotes:
    """A deduplicated vote matrix: distinct rows plus multiplicities.

    Attributes:
        patterns: ``(k, m)`` float64 (binary model) or int64 (multiclass)
            array of distinct vote rows.
        weights: ``(k,)`` float64 positive multiplicities. Integer-valued
            for exact compressions; real-valued for decay-weighted ones.
        row_ids: Optional ``(n,)`` integer map from expanded row index to
            pattern index, in original stream order. When present,
            ``patterns[row_ids]`` reconstructs the source matrix
            bit-for-bit and minibatch sampling is bitwise-faithful to
            the full-matrix fit.
        n_rows: Total row mass ``weights.sum()`` — the ``n`` of the
            matrix this compression stands for (float: real-valued in
            decay-weighted mode).
    """

    patterns: np.ndarray
    weights: np.ndarray
    row_ids: np.ndarray | None
    n_rows: float

    def __post_init__(self) -> None:
        if self.patterns.ndim != 2:
            raise ValueError(
                f"patterns must be 2-D, got shape {self.patterns.shape}"
            )
        if self.weights.shape != (self.patterns.shape[0],):
            raise ValueError(
                f"weights shape {self.weights.shape} does not match "
                f"{self.patterns.shape[0]} patterns"
            )
        if len(self.weights) and float(self.weights.min()) <= 0.0:
            raise ValueError("pattern weights must be strictly positive")
        if self.row_ids is not None and len(self.row_ids) != int(self.n_rows):
            raise ValueError(
                f"row_ids has {len(self.row_ids)} entries but n_rows is "
                f"{self.n_rows}"
            )

    @property
    def n_patterns(self) -> int:
        """Distinct vote rows — the compressed size."""
        return self.patterns.shape[0]

    @property
    def integral(self) -> bool:
        """True when every weight is a whole number (exact compression)."""
        return bool(np.all(self.weights == np.floor(self.weights)))

    def expand(self) -> np.ndarray:
        """The matrix this compression stands for.

        Returns:
            ``patterns[row_ids]`` (original order) when ``row_ids`` is
            present; otherwise each pattern repeated ``round(weight)``
            times in pattern order.

        Raises:
            ValueError: If the weights are non-integral and no
                ``row_ids`` map exists — a real-valued weighting has no
                expanded matrix.
        """
        if self.row_ids is not None:
            return self.patterns[self.row_ids]
        if not self.integral:
            raise ValueError(
                "cannot expand real-valued pattern weights into rows"
            )
        reps = self.weights.astype(np.int64)
        return self.patterns[np.repeat(np.arange(self.n_patterns), reps)]


def compress_votes(L: np.ndarray) -> CompressedVotes:
    """Deduplicate a vote matrix into ``(patterns, multiplicities)``.

    Args:
        L: ``(n, m)`` vote matrix (any dtype; rows are compared exactly).

    Returns:
        An exact :class:`CompressedVotes` whose ``row_ids`` reconstructs
        ``L`` bit-for-bit (``patterns[row_ids] == L``). The all-abstain
        row, duplicate-free matrices, and the 0-row matrix all compress
        losslessly — a 0-row input yields 0 patterns.
    """
    L = np.asarray(L)
    if L.ndim != 2:
        raise ValueError(f"vote matrix must be 2-D, got shape {L.shape}")
    if L.shape[0] == 0:
        return CompressedVotes(
            patterns=L.copy(),
            weights=np.zeros(0, dtype=np.float64),
            row_ids=np.zeros(0, dtype=np.int64),
            n_rows=0.0,
        )
    patterns, inverse = np.unique(L, axis=0, return_inverse=True)
    row_ids = np.ravel(inverse).astype(np.int64)
    weights = np.bincount(row_ids, minlength=len(patterns)).astype(np.float64)
    return CompressedVotes(
        patterns=patterns,
        weights=weights,
        row_ids=row_ids,
        n_rows=float(L.shape[0]),
    )
