"""Baseline combiners for labeling-function votes.

The paper's ablations compare the learned generative model against two
simpler ways of combining the same votes:

* **Equal weights** (Table 4): "the probabilistic training labels were an
  unweighted average of the labeling function votes."
* **Logical-OR** (Section 6.4 / Figure 6): an event is labeled positive
  if *any* weak source fires positive — the incumbent approach for the
  real-time events application, which over-estimates scores.

Majority vote and generic weighted votes are included because they are
the other standard points of comparison for weak-supervision systems.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "equal_weight_probabilities",
    "majority_vote_labels",
    "logical_or_labels",
    "logical_or_probabilities",
    "weighted_vote_probabilities",
]


def _as_matrix(L: np.ndarray) -> np.ndarray:
    L = np.asarray(L, dtype=np.float64)
    if L.ndim != 2:
        raise ValueError(f"label matrix must be 2-D, got shape {L.shape}")
    return L


def equal_weight_probabilities(L: np.ndarray) -> np.ndarray:
    """Unweighted average of votes mapped to [0, 1].

    Abstains contribute 0 to the average (they are votes of 0), matching
    the Table 4 baseline. An all-abstain row yields exactly 0.5.
    """
    L = _as_matrix(L)
    if L.shape[1] == 0:
        return np.full(L.shape[0], 0.5)
    return (1.0 + L.mean(axis=1)) / 2.0


def majority_vote_labels(L: np.ndarray, tie_break: int = -1) -> np.ndarray:
    """Hard majority vote over non-abstain votes; ties/all-abstain fall
    back to ``tie_break`` (negative by default — the rare class in every
    application here is positive)."""
    L = _as_matrix(L)
    sums = L.sum(axis=1)
    labels = np.where(sums > 0, 1, np.where(sums < 0, -1, tie_break))
    return labels.astype(np.int8)


def logical_or_labels(L: np.ndarray) -> np.ndarray:
    """Positive iff any LF votes positive; else negative.

    This is the incumbent combination strategy for the real-time events
    application (Section 6.4): every firing source is trusted completely.
    """
    L = _as_matrix(L)
    any_positive = np.any(L == 1, axis=1)
    return np.where(any_positive, 1, -1).astype(np.int8)


def logical_or_probabilities(L: np.ndarray) -> np.ndarray:
    """Logical-OR as degenerate probabilities {0, 1}.

    Training on these is what produces the over-confident score histogram
    on the left of Figure 6.
    """
    return (logical_or_labels(L) == 1).astype(np.float64)


def weighted_vote_probabilities(L: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Sigmoid of a weighted vote sum.

    With ``weights = 2 * alpha`` this reproduces the generative model's
    posterior exactly (see :class:`repro.core.SamplingFreeLabelModel`),
    which the tests use as a consistency check.
    """
    L = _as_matrix(L)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (L.shape[1],):
        raise ValueError(
            f"weights shape {weights.shape} does not match {L.shape[1]} LFs"
        )
    scores = L @ weights
    return 1.0 / (1.0 + np.exp(-np.clip(scores, -500, 500)))
