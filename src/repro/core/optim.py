"""Tiny first-order optimizers for the generative models.

The paper trains its static compute graph with stochastic gradient
methods; we keep the optimizers explicit and dependency-free so the label
model's training loop reads like the math. Adam is the workhorse; plain
SGD is kept for the speed benchmark (one multiply-add per parameter,
closest to the per-step cost the paper reports).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AdamState", "adam_step", "sgd_step"]


@dataclass
class AdamState:
    """First/second-moment accumulators for one parameter vector."""

    m: np.ndarray
    v: np.ndarray
    t: int = 0
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8

    @classmethod
    def like(cls, params: np.ndarray) -> "AdamState":
        return cls(m=np.zeros_like(params), v=np.zeros_like(params))


def adam_step(
    params: np.ndarray,
    grad: np.ndarray,
    state: AdamState,
    learning_rate: float,
) -> np.ndarray:
    """One Adam update; mutates ``state``, returns new parameters."""
    state.t += 1
    state.m = state.beta1 * state.m + (1 - state.beta1) * grad
    state.v = state.beta2 * state.v + (1 - state.beta2) * grad * grad
    m_hat = state.m / (1 - state.beta1 ** state.t)
    v_hat = state.v / (1 - state.beta2 ** state.t)
    return params - learning_rate * m_hat / (np.sqrt(v_hat) + state.eps)


def sgd_step(
    params: np.ndarray, grad: np.ndarray, learning_rate: float
) -> np.ndarray:
    """One plain SGD update."""
    return params - learning_rate * grad
