"""The paper's primary contribution: scalable, sampling-free generative
modeling of labeling-function accuracies, plus the combiners and baselines
the evaluation compares against.

Public surface:

* :class:`SamplingFreeLabelModel` — the Section 5.2 model: per-LF accuracy
  and propensity parameters in log space, trained by exact minibatch
  gradient descent on the marginal likelihood of the observed label matrix.
* :class:`OnlineLabelModel` — the streaming counterpart: vote-moment
  accumulation, incremental exact-gradient updates, and periodic full
  refits that reproduce the offline fit exactly (``repro.streaming``
  feeds it micro-batches).
* :class:`DriftMonitor` / :class:`DriftPolicy` — moment-based drift
  alarms for streaming deployments: tracked reference vs. recent
  windows over LF fire rates and the agreement matrix, with pluggable
  reactions (log, forced refit, reference reset).
* :class:`MulticlassLabelModel` — the categorical-target generalization
  mentioned in Section 2.
* :class:`GibbsLabelModel` — the original-Snorkel Gibbs-sampling trainer,
  kept as the speed baseline for the Section 5.2 comparison.
* :mod:`repro.core.combiners` — Logical-OR and equal-weight baselines used
  in Sections 6.3/6.4.
* :class:`StructuredLabelModel` — the low-tree-width dependency extension
  flagged as future work in Section 5.2.
* :class:`TripletLabelModel` — the matrix-factorization-style denoiser
  plug-in (reference [31]).
* :class:`LFAnalysis` — coverage/overlap/conflict/accuracy diagnostics
  (how Section 3.3's "previously unknown low-quality sources" were found).
"""

from repro.core.drift import DriftCheck, DriftMonitor, DriftPolicy
from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel
from repro.core.online_label_model import (
    OnlineLabelModel,
    OnlineLabelModelConfig,
)
from repro.core.multiclass import MulticlassLabelModel
from repro.core.gibbs import GibbsLabelModel
from repro.core.combiners import (
    equal_weight_probabilities,
    logical_or_labels,
    majority_vote_labels,
    weighted_vote_probabilities,
)
from repro.core.structure import StructuredLabelModel
from repro.core.matrix_completion import TripletLabelModel
from repro.core.analysis import LFAnalysis
from repro.core.noise_aware import (
    expected_log_loss,
    labels_to_soft_targets,
    soft_targets_to_weights,
)

__all__ = [
    "LabelModelConfig",
    "SamplingFreeLabelModel",
    "OnlineLabelModel",
    "OnlineLabelModelConfig",
    "DriftCheck",
    "DriftMonitor",
    "DriftPolicy",
    "MulticlassLabelModel",
    "GibbsLabelModel",
    "StructuredLabelModel",
    "TripletLabelModel",
    "LFAnalysis",
    "equal_weight_probabilities",
    "logical_or_labels",
    "majority_vote_labels",
    "weighted_vote_probabilities",
    "expected_log_loss",
    "labels_to_soft_targets",
    "soft_targets_to_weights",
]
