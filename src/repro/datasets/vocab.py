"""Vocabulary, entities, domains, and simulated translations.

Everything here is synthetic but structured: the coarse category keyword
lists feed the internal topic model, the entity lists feed the NER
lexicon, the product/brand lists feed the Knowledge Graph, and the domain
tables feed the crawler. The content generators compose documents from
these same lists, so each organizational resource correlates with the
latent task labels the way its real counterpart would.

Translations are simulated as ``word#lang`` surface forms (e.g.
``helmet#de``). Real translations are unavailable offline; what the
product application needs is only that (a) non-English documents use
surface forms the English keyword LFs cannot match, and (b) the Knowledge
Graph can map English keywords to exactly those forms. The ``#`` joiner
survives tokenization as a single token, preserving both properties.
"""

from __future__ import annotations

__all__ = [
    "FILLER_WORDS",
    "COARSE_CATEGORIES",
    "CELEBRITIES",
    "POLITICIANS",
    "ORGANIZATIONS",
    "LOCATIONS",
    "CELEB_KEYWORDS",
    "TOPIC_FILTER_KEYWORDS",
    "OFFTOPIC_KEYWORDS",
    "DOMAINS",
    "BIKE_PRODUCTS",
    "BIKE_ACCESSORIES",
    "CAR_ACCESSORIES",
    "PHONE_ACCESSORIES",
    "BIKE_BRANDS",
    "COMMERCE_WORDS",
    "LANGUAGES",
    "translate",
]

#: Generic filler tokens used by every document.
FILLER_WORDS = [
    "the", "a", "an", "of", "in", "on", "with", "for", "and", "but", "about",
    "after", "before", "during", "new", "latest", "today", "yesterday",
    "week", "year", "report", "reports", "update", "updates", "story",
    "people", "public", "official", "officials", "statement", "announced",
    "announcement", "shared", "revealed", "details", "sources", "according",
    "exclusive", "full", "read", "more", "watch", "video", "photos", "images",
    "first", "second", "third", "major", "minor", "big", "small", "early",
    "late", "recent", "recently", "now", "live", "breaking", "follow",
    "comment", "comments", "reaction", "reactions", "response", "change",
    "changes", "plan", "plans", "event", "events", "group", "team", "local",
    "national", "global", "world", "city", "state", "region", "community",
    "member", "members", "history", "future", "past", "moment", "time",
    "special", "everything", "anything", "something", "nothing", "best",
    "worst", "top", "list", "guide", "tips", "ways", "reasons", "things",
]

#: Coarse categories maintained by the internal topic model (Section 3.1:
#: "semantic categorizations far too coarse-grained for the targeted
#: task"). The fine-grained target classes (celebrity content, cycling
#: products) are deliberately NOT categories here.
COARSE_CATEGORIES: dict[str, list[str]] = {
    "entertainment": [
        "movie", "film", "show", "series", "episode", "season", "premiere",
        "trailer", "screen", "drama", "comedy", "theater",
    ],
    "music": [
        "album", "song", "single", "tour", "concert", "band", "lyrics",
        "chart", "playlist", "studio", "record", "stage",
    ],
    "sports": [
        "game", "match", "league", "championship", "playoff", "score",
        "coach", "player", "season", "tournament", "stadium", "goal",
    ],
    "finance": [
        "market", "stock", "shares", "earnings", "revenue", "investor",
        "trading", "economy", "inflation", "interest", "quarterly", "profit",
    ],
    "technology": [
        "software", "hardware", "startup", "device", "chip", "server",
        "cloud", "data", "platform", "update", "release", "developer",
    ],
    "automotive": [
        "car", "engine", "vehicle", "sedan", "suv", "truck", "horsepower",
        "dealership", "mileage", "hybrid", "electric", "driving",
    ],
    "travel": [
        "flight", "hotel", "destination", "vacation", "airport", "tourism",
        "itinerary", "beach", "resort", "passport", "luggage", "booking",
    ],
    "food": [
        "recipe", "restaurant", "chef", "menu", "ingredients", "baking",
        "dinner", "kitchen", "flavor", "dish", "cooking", "dessert",
    ],
    "health": [
        "doctor", "patient", "treatment", "symptoms", "vaccine", "clinic",
        "wellness", "diagnosis", "therapy", "hospital", "medicine", "study",
    ],
    "politics": [
        "election", "senate", "congress", "policy", "vote", "campaign",
        "legislation", "parliament", "minister", "debate", "bill", "party",
    ],
    "science": [
        "research", "experiment", "laboratory", "physics", "biology",
        "astronomy", "telescope", "species", "climate", "discovery",
        "journal", "hypothesis",
    ],
    "fashion": [
        "designer", "runway", "collection", "fabric", "style", "outfit",
        "couture", "model", "brand", "trend", "wardrobe", "accessories",
    ],
    "gaming": [
        "console", "gameplay", "multiplayer", "quest", "esports", "level",
        "studio", "patch", "controller", "streamer", "launch", "franchise",
    ],
    "realestate": [
        "property", "mortgage", "listing", "apartment", "housing", "rent",
        "broker", "square", "footage", "neighborhood", "buyer", "seller",
    ],
    "education": [
        "school", "students", "teacher", "curriculum", "university",
        "tuition", "classroom", "degree", "campus", "exam", "lecture",
        "scholarship",
    ],
    "cycling": [
        "ride", "trail", "pedal", "race", "gravel", "commute", "cyclist",
        "route", "climb", "sprint", "tour", "track",
    ],
    "outdoors": [
        "hiking", "camping", "tent", "backpack", "mountain", "river",
        "forest", "wildlife", "fishing", "kayak", "summit", "gear",
    ],
    "pets": [
        "dog", "cat", "puppy", "kitten", "veterinarian", "adoption",
        "leash", "grooming", "breed", "shelter", "training", "toys",
    ],
}

#: Synthetic celebrity roster (person entities correlated with the topic
#: task's positive class).
_CELEB_FIRST = [
    "Avery", "Blake", "Carmen", "Dakota", "Elle", "Flynn", "Gigi",
    "Harlow", "Indie", "Jolie", "Kendra", "Lennox", "Marlowe", "Nova",
    "Orion", "Presley", "Quinn", "Raven", "Sienna", "Tatum",
]
_CELEB_LAST = [
    "Sterling", "Monroe", "Valentine", "Storm", "Winters", "Fox",
    "Laurent", "Devereaux", "Knight", "Blaze",
]
CELEBRITIES = [
    f"{first} {last}" for first in _CELEB_FIRST for last in _CELEB_LAST
][:60]

#: People who are *not* celebrities — person entities that appear in
#: negative documents, keeping the NER-based LFs honest.
POLITICIANS = [
    "Walter Hargrove", "Edith Calloway", "Norman Whitfield", "Doris Penn",
    "Harold Eastman", "Margaret Shaw", "Clifford Boone", "Agnes Mercer",
    "Vernon Liddell", "Beatrice Crane", "Stanley Redmond", "Florence Gage",
    "Raymond Holt", "Wilma Prescott", "Chester Lowell", "Irene Fairbanks",
]

ORGANIZATIONS = [
    "Northbridge Capital", "Solara Motors", "Vexel Labs", "Pinewood Studios",
    "Crestline Media", "Halcyon Records", "Bluepeak Analytics",
    "Irongate Security", "Meridian Health", "Atlas Logistics",
    "Summit Broadcasting", "Lakeshore Ventures",
]

LOCATIONS = [
    "Westhaven", "Northfield", "Eastport", "Silver Falls", "Maple Ridge",
    "Crown Heights", "Harbor City", "Stonebrook", "Fairview", "Lakemont",
]

#: Fine-grained positive-class keywords for the topic task (celebrity
#: content). The topic model does NOT know these as a category.
CELEB_KEYWORDS = [
    "celebrity", "paparazzi", "red-carpet", "gossip", "stardom", "tabloid",
    "engagement", "breakup", "dating", "rumor", "spotted", "glamour",
    "premiere-party", "afterparty", "entourage", "fanbase", "icon",
    "superstar", "scandal", "interview",
]

#: Synonym vocabulary used by a slice of celebrity content. These words
#: are deliberately NOT in any labeling function's keyword list: the
#: discriminative classifier can learn them from raw content (it sees
#: them co-occur with weakly-labeled positives), but the keyword LFs and
#: hence the generative model cannot — this is the "learning to
#: generalize beyond the labeling functions" effect of Section 2.
CELEB_SYNONYMS = [
    "heartthrob", "diva", "limelight", "starlet", "socialite", "tinseltown",
    "met-gala", "debut", "biopic", "lovebirds", "whirlwind-romance",
    "wardrobe-moment",
]

#: The coarse keyword filter that built the unlabeled pool (Section 3.1:
#: "selected by a coarse-grained initial keyword-filtering step"). Every
#: pooled example — positive or negative — contains at least one of
#: these, which is exactly why keyword-only LFs are imprecise.
TOPIC_FILTER_KEYWORDS = [
    "star", "famous", "fame", "spotlight", "trending", "viral", "buzz",
    "headline", "style", "fans",
]

#: Strongly off-topic keywords used by the negative keyword LF — two to
#: three signature terms per unrelated coarse category, the way a
#: blunt-but-broad blocklist accretes in practice.
OFFTOPIC_KEYWORDS = [
    "earnings", "quarterly", "inflation", "trading",        # finance
    "mortgage", "listing", "housing",                       # real estate
    "horsepower", "dealership", "sedan",                    # automotive
    "vaccine", "diagnosis", "symptoms",                     # health
    "curriculum", "tuition", "classroom",                   # education
    "legislation", "senate", "parliament",                  # politics
    "telescope", "laboratory", "hypothesis",                # science
    "playoff", "league", "championship",                    # sports
    "itinerary", "airport", "passport",                     # travel
    "recipe", "chef", "ingredients",                        # food
    "gameplay", "console", "esports",                       # gaming
    "runway", "couture", "fabric",                          # fashion
    "startup", "server", "developer",                       # technology
]

#: Domain tables for URLs: domain -> (site category, quality score).
DOMAINS: dict[str, tuple[str, float]] = {
    # entertainment / gossip sites (positive-leaning for the topic task)
    "celebdaily.example": ("entertainment", 0.9),
    "starwatch.example": ("entertainment", 0.85),
    "glamfeed.example": ("entertainment", 0.8),
    "redcarpetwire.example": ("entertainment", 0.75),
    "fanbuzz.example": ("entertainment", 0.6),
    # general news
    "morningledger.example": ("news", 0.85),
    "citytribune.example": ("news", 0.8),
    "daybreakpost.example": ("news", 0.7),
    # category sites
    "marketpulse.example": ("finance", 0.85),
    "tradingdesk.example": ("finance", 0.8),
    "autotorque.example": ("automotive", 0.8),
    "gearhead.example": ("automotive", 0.7),
    "labnotes.example": ("science", 0.85),
    "pitchside.example": ("sports", 0.8),
    "stadiumecho.example": ("sports", 0.7),
    "tablefare.example": ("food", 0.75),
    "wanderlist.example": ("travel", 0.75),
    "chartline.example": ("music", 0.7),
    "screenroom.example": ("entertainment", 0.7),
    # shopping
    "dealcart.example": ("shopping", 0.65),
    "bargainbin.example": ("shopping", 0.5),
    "velodrome-shop.example": ("shopping", 0.8),
    # low-quality / spam
    "clickstorm.example": ("spam", 0.15),
    "viralmill.example": ("spam", 0.1),
    "buzzfarm.example": ("spam", 0.2),
}

ENTERTAINMENT_DOMAINS = [
    d for d, (cat, _) in DOMAINS.items() if cat == "entertainment"
]
SPAM_DOMAINS = [d for d, (cat, _) in DOMAINS.items() if cat == "spam"]
NEWS_DOMAINS = [d for d, (cat, _) in DOMAINS.items() if cat == "news"]

#: Product vocabulary for the product-classification task ("bicycles and
#: cycling accessories and parts" as the expanded category of interest).
BIKE_PRODUCTS = [
    "bicycle", "bike", "roadbike", "mountainbike", "tandem", "ebike",
    "fixie", "velocipede", "tricycle", "cyclocross",
]
BIKE_ACCESSORIES = [
    "helmet", "saddle", "pannier", "derailleur", "handlebar", "kickstand",
    "crankset", "chainring", "mudguard", "bikelock", "bottlecage",
    "cyclecomputer", "innertube", "spoke", "pedals",
]
#: Accessories of *other* categories — the confusers that made the
#: category expansion painful (they share commercial context and even
#: words like "mount" and "charger" with cycling accessories).
CAR_ACCESSORIES = [
    "dashcam", "floormat", "roofrack", "towbar", "carcharger", "seatcover",
    "windshield", "hubcap", "sparkplug", "wiperblade",
]
PHONE_ACCESSORIES = [
    "phonecase", "screenprotector", "powerbank", "earbuds", "charger",
    "carmount", "selfiestick", "cablekit", "wirelesspad", "stylus",
]

#: Niche cycling products missing from both the keyword lists and the
#: Knowledge Graph — the product-side analogue of CELEB_SYNONYMS: only a
#: classifier over raw content can learn to recall these (from brand /
#: commerce / cycling context co-occurring with weakly-labeled positives).
NOVEL_BIKE_PRODUCTS = [
    "recumbent", "velomobile", "cargobike", "gravelbike", "balancebike",
    "unicycle", "pennyfarthing", "foldingbike",
]

BIKE_BRANDS = [
    "Veloria", "Pedalcraft", "Spokesmith", "Ridgeline Cycles",
    "Tornado Bikes", "Chainforge",
]

COMMERCE_WORDS = [
    "buy", "price", "review", "sale", "deal", "shop", "order", "shipping",
    "discount", "bestseller", "compare", "unboxing",
]

#: The ten languages of the Knowledge-Graph translation expansion
#: (Section 3.2: "translations of keywords in ten languages").
LANGUAGES = ["de", "fr", "es", "it", "pt", "nl", "sv", "pl", "tr", "ja"]


def translate(word: str, language: str) -> str:
    """Simulated translation surface form (see module docstring).

    >>> translate("helmet", "de")
    'helmet#de'
    """
    if language not in LANGUAGES:
        raise ValueError(f"unknown language {language!r}")
    return f"{word}#{language}"
