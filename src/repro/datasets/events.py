"""Synthetic real-time events stream (Section 3.3).

The application: classify events "across two of Google's platforms",
where the incumbent approach uses offline, non-servable features
(aggregate statistics, relationship graphs) and therefore "induces
latency between when an event occurs and when it is identified".

World model
-----------
* **Sources** emit events. Each source has a latent badness rate, drawn
  from a good/bad mixture, and belongs to a community; bad sources
  cluster (communities share badness), which is what makes the
  relationship graph informative.
* **Aggregates** (volume, historical bad rate, account age, burst score,
  distinct targets) are batch-computed per source — but only for sources
  with history. A configurable slice of traffic comes from *fresh*
  sources with no aggregates at all: offline signals are structurally
  blind there, which is precisely the detection-latency gap the paper
  motivates (and why the Logical-OR baseline under-identifies events).
* **Offline models**: several small pre-existing classifiers score each
  source from its aggregates with varying noise — the "several smaller
  models that had previously been developed" used as weak labelers.
* **Servable features**: each event carries a real-time signal vector
  (some dimensions shifted under bad events, some weakly shifted, some
  pure noise) that is available at serving time with no aggregation
  delay. The cross-feature transfer trains a DNN on exactly these.

The label matrix regime this produces: ~140 weak sources, individually
low coverage, graph-based ones higher-recall/lower-precision (as stated
in Section 3.3), and a meaningful all-abstain slice where only the
real-time model can act.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.config import ScaleConfig, get_scale
from repro.services.aggregates import AggregateStore
from repro.types import Example

__all__ = ["EventsWorld", "EventsDataset", "generate_events_dataset"]

#: Names of the servable real-time signals (the DNN's feature view).
SERVABLE_SIGNALS = [f"rt_signal_{i}" for i in range(16)]

#: Aggregate statistics computed per source by the offline batch jobs.
AGGREGATE_STATS = [
    "volume_30d",
    "bad_rate_30d",
    "age_days",
    "burst_score",
    "distinct_targets",
]

#: Number of pre-existing offline model *families* used as weak labelers.
N_OFFLINE_MODELS = 8

#: Independent variants (versions/snapshots/retrainings) per model
#: family. Each weak-labeler rule thresholds its own variant — a large
#: organization's 140 sources are distinct artifacts, not 140 thresholds
#: over one score, and the conditionally-independent generative model is
#: only well-posed when votes are not bit-identical duplicates.
N_MODEL_VARIANTS = 8

#: Distinct graph-signal views (different teams' graph models).
N_GRAPH_VIEWS = 12


@dataclass
class EventsWorld:
    """Sources, their graph, aggregates, and offline models."""

    n_sources: int
    badness: np.ndarray                  # latent per-source bad rate
    platforms: np.ndarray                # "A" / "B" per source
    has_history: np.ndarray              # bool: aggregates exist
    graph: nx.Graph
    aggregate_store: AggregateStore
    aggregates: dict[str, dict[str, float]]
    neighbor_bad_rate: np.ndarray
    neighbor_bad_rate_2hop: np.ndarray
    weighted_neighbor_bad: np.ndarray
    graph_views: np.ndarray              # (n_sources, N_GRAPH_VIEWS)
    offline_model_scores: np.ndarray     # (n_sources, N_OFFLINE_MODELS * N_MODEL_VARIANTS)
    seed: int

    def source_id(self, index: int) -> str:
        return f"src-{index:05d}"


@dataclass
class EventsDataset:
    """The events benchmark: pools, world, and signal metadata."""

    unlabeled: list[Example]
    test: list[Example]
    world: EventsWorld
    signals: list[str] = field(default_factory=lambda: list(SERVABLE_SIGNALS))

    @property
    def unlabeled_gold(self) -> np.ndarray:
        return np.array([e.label for e in self.unlabeled])

    @property
    def test_gold(self) -> np.ndarray:
        return np.array([e.label for e in self.test])

    def stats(self) -> dict[str, object]:
        return {
            "task": "realtime_events",
            "n_unlabeled": len(self.unlabeled),
            "n_test": len(self.test),
            "n_sources": self.world.n_sources,
            "pct_positive_test": 100.0 * float((self.test_gold == 1).mean()),
            "fresh_source_events_pct": 100.0
            * float(
                np.mean(
                    [
                        not e.non_servable.get("has_history", False)
                        for e in self.unlabeled
                    ]
                )
            ),
        }


# ----------------------------------------------------------------------
# world construction
# ----------------------------------------------------------------------
def _build_world(n_sources: int, seed: int) -> EventsWorld:
    rng = np.random.default_rng(seed + 404)

    # Good/bad mixture with community structure. Bad events come almost
    # entirely from bad sources (event badness tracks source badness
    # closely below), so source-level offline signals are genuinely
    # informative — the paper's incumbent approach works, it is just
    # slow and blind to fresh sources.
    n_communities = max(20, n_sources // 12)
    community_of = rng.integers(0, n_communities, size=n_sources)
    community_bad = np.where(
        rng.random(n_communities) < 0.10,
        rng.beta(12.0, 1.5, size=n_communities),  # bad rings: near-pure abuse
        rng.beta(1.0, 25.0, size=n_communities),  # normal communities
    )
    individual = rng.beta(1.0, 18.0, size=n_sources)
    badness = np.clip(
        0.95 * community_bad[community_of] + 0.05 * individual, 0.0, 0.97
    )

    platforms = np.where(rng.random(n_sources) < 0.5, "A", "B")
    # Fresh sources (no aggregate history) skew bad: abusers rotate
    # identities, so the offline signals are blindest exactly where it
    # matters (the detection-latency gap of Section 3.3).
    fresh_prob = np.clip(0.10 + 0.5 * badness, 0.0, 0.85)
    has_history = rng.random(n_sources) >= fresh_prob

    # Relationship graph with homophily: mostly intra-community edges.
    graph = nx.Graph()
    graph.add_nodes_from(range(n_sources))
    for s in range(n_sources):
        same = np.flatnonzero(community_of == community_of[s])
        for _ in range(3):
            t = int(rng.choice(same))
            if t != s:
                graph.add_edge(s, t)
        t = int(rng.integers(0, n_sources))
        if t != s:
            graph.add_edge(s, t)

    # Aggregates (only for sources with history).
    aggregates: dict[str, dict[str, float]] = {}
    store = AggregateStore()
    volume = rng.lognormal(3.0, 1.0, size=n_sources)
    age = rng.exponential(500.0 * (1.0 - badness) + 40.0)
    burst = np.clip(0.55 * badness + rng.normal(0.0, 0.18, n_sources), 0.0, 1.0)
    bad_rate = np.clip(badness + rng.normal(0.0, 0.07, n_sources), 0.0, 1.0)
    targets = rng.poisson(4.0 + 50.0 * badness)
    for s in range(n_sources):
        if not has_history[s]:
            continue
        aggregates[f"src-{s:05d}"] = {
            "volume_30d": float(volume[s]),
            "bad_rate_30d": float(bad_rate[s]),
            "age_days": float(age[s]),
            "burst_score": float(burst[s]),
            "distinct_targets": float(targets[s]),
        }
    store.load_batch(aggregates)

    # Graph signals. Different graph models at the organization compute
    # different neighborhood statistics (1-hop vs 2-hop, degree-weighted,
    # ...); modeling them as distinct noisy views keeps the 30 graph LFs
    # from being bit-identical copies of one field.
    neighbor_bad_rate = np.zeros(n_sources)
    neighbor_bad_rate_2hop = np.zeros(n_sources)
    for s in range(n_sources):
        rates = [bad_rate[t] for t in graph.neighbors(s) if has_history[t]]
        neighbor_bad_rate[s] = float(np.mean(rates)) if rates else 0.0
        two_hop: set[int] = set()
        for t in graph.neighbors(s):
            two_hop.update(graph.neighbors(t))
        two_hop.discard(s)
        rates2 = [bad_rate[t] for t in two_hop if has_history[t]]
        neighbor_bad_rate_2hop[s] = float(np.mean(rates2)) if rates2 else 0.0
    weighted_neighbor_bad = np.clip(
        neighbor_bad_rate + rng.normal(0.0, 0.06, n_sources), 0.0, 1.0
    )
    base_graph = [neighbor_bad_rate, neighbor_bad_rate_2hop, weighted_neighbor_bad]
    graph_views = np.zeros((n_sources, N_GRAPH_VIEWS))
    for v in range(N_GRAPH_VIEWS):
        graph_views[:, v] = np.clip(
            base_graph[v % 3] + rng.normal(0.0, 0.05, n_sources), 0.0, 1.0
        )

    # Offline models: noisy linear-sigmoid scorers over the aggregates.
    features = np.column_stack([
        np.log1p(volume),
        bad_rate,
        np.log1p(age),
        burst,
        np.log1p(targets),
        weighted_neighbor_bad,
    ])
    standardized = (features - features.mean(axis=0)) / (features.std(axis=0) + 1e-9)
    #: Hand-set signs so every offline model family is positively oriented
    #: toward badness but attends to different signals with different noise.
    base_weights = np.array([
        [0.1, 1.6, -0.6, 0.7, 0.4, 0.5],
        [0.0, 1.2, -0.9, 0.2, 0.1, 0.9],
        [0.3, 0.8, -0.2, 1.1, 0.6, 0.1],
        [-0.2, 1.9, -0.4, 0.3, 0.2, 0.2],
        [0.2, 0.5, -1.1, 0.8, 0.9, 0.3],
        [0.1, 1.0, -0.5, 0.5, 0.3, 1.2],
        [0.4, 0.6, -0.3, 1.4, 0.2, 0.4],
        [0.0, 1.4, -0.7, 0.6, 0.5, 0.6],
    ])
    noise_levels = np.array([0.4, 0.5, 0.8, 0.45, 0.9, 0.55, 1.0, 0.6])
    model_scores = np.zeros((n_sources, N_OFFLINE_MODELS * N_MODEL_VARIANTS))
    for m in range(N_OFFLINE_MODELS):
        raw_base = standardized @ base_weights[m]
        for v in range(N_MODEL_VARIANTS):
            # Each variant (model version / retraining) draws its own
            # noise, so no two weak-labeler rules threshold an identical
            # score.
            raw = raw_base + rng.normal(0.0, noise_levels[m], n_sources)
            model_scores[:, m * N_MODEL_VARIANTS + v] = 1.0 / (1.0 + np.exp(-raw))
    # Fresh sources have no offline scores; mark with NaN.
    model_scores[~has_history] = np.nan
    graph_views[~has_history] = np.nan

    return EventsWorld(
        n_sources=n_sources,
        badness=badness,
        platforms=platforms,
        has_history=has_history,
        graph=graph,
        aggregate_store=store,
        aggregates=aggregates,
        neighbor_bad_rate=neighbor_bad_rate,
        neighbor_bad_rate_2hop=neighbor_bad_rate_2hop,
        weighted_neighbor_bad=weighted_neighbor_bad,
        graph_views=graph_views,
        offline_model_scores=model_scores,
        seed=seed,
    )


# ----------------------------------------------------------------------
# event emission
# ----------------------------------------------------------------------
def _emit_event(
    rng: np.random.Generator,
    world: EventsWorld,
    index: int,
) -> Example:
    s = int(rng.integers(0, world.n_sources))
    p_bad = float(np.clip(0.005 + 0.95 * world.badness[s], 0.0, 0.95))
    y = 1 if rng.random() < p_bad else -1

    # Real-time servable signals: 4 strong dims, 4 weak dims, 8 noise.
    signal = np.zeros(16)
    severity = rng.normal(1.0, 0.3) if y == 1 else 0.0
    signal[:4] = rng.normal(1.5 * severity, 1.0, size=4)
    signal[4:8] = rng.normal(0.6 * severity, 1.0, size=4)
    signal[8:] = rng.normal(0.0, 1.0, size=8)

    source_id = world.source_id(s)
    non_servable: dict[str, object] = {
        "has_history": bool(world.has_history[s]),
    }
    if world.has_history[s]:
        # Offline signals exist only for sources with history: fresh
        # sources are structurally invisible to every weak source, which
        # is the detection gap the real-time model closes.
        non_servable.update(world.aggregates[source_id])
        for v in range(N_GRAPH_VIEWS):
            non_servable[f"graph_view_{v}"] = float(world.graph_views[s, v])
        for k in range(N_OFFLINE_MODELS * N_MODEL_VARIANTS):
            non_servable[f"offline_model_{k}"] = float(
                world.offline_model_scores[s, k]
            )

    servable = {name: float(signal[i]) for i, name in enumerate(SERVABLE_SIGNALS)}
    servable["platform_a"] = 1.0 if world.platforms[s] == "A" else 0.0

    return Example(
        example_id=f"event-{index:07d}",
        fields={
            "event_id": f"event-{index:07d}",
            "source_id": source_id,
            "platform": str(world.platforms[s]),
        },
        servable=servable,
        non_servable=non_servable,
        label=y,
    )


def generate_events_dataset(
    scale: ScaleConfig | str | None = None,
    seed: int = 0,
    n_sources: int | None = None,
) -> EventsDataset:
    """Generate the two-platform real-time events benchmark."""
    scale = scale if isinstance(scale, ScaleConfig) else get_scale(scale)
    total = scale.events_unlabeled + scale.events_test
    if n_sources is None:
        n_sources = max(150, total // 40)
    world = _build_world(n_sources, seed)
    rng = np.random.default_rng(seed + 505)

    events = [_emit_event(rng, world, i) for i in range(total)]
    return EventsDataset(
        unlabeled=events[: scale.events_unlabeled],
        test=events[scale.events_unlabeled:],
        world=world,
    )
