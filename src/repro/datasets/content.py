"""Synthetic content corpora for the topic and product tasks.

Shape calibration (DESIGN.md Section 5): the generators are built so the
paper's qualitative results re-emerge from the mechanics rather than
being painted on —

* the unlabeled pools are **keyword-filtered** (every document, positive
  or negative, carries filter keywords), so servable keyword/URL LFs are
  recall-heavy and precision-poor, exactly the Table 3 "Servable LFs"
  regime;
* non-servable resources (NER person entities, the coarse topic model,
  crawled site profiles, KG translations, an internal related-model
  score) carry the *precision*: adding them produces the large Table 3
  lifts;
* positives are **rare** (Table 1: 0.86% / 1.48% of test at full scale),
  so a classifier trained on the small hand-labeled dev set is
  recall-starved — the regime in which weak supervision over a large
  pool wins (Table 2, Figure 5);
* some labeling functions are deliberately mediocre so that learned
  accuracy weights beat equal weights (Table 4), more so for topic than
  product — matching the paper's +7.7% vs +1.9% asymmetry;
* a slice of product documents is non-English with translated surface
  forms that only the Knowledge-Graph LF can match (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ScaleConfig, get_scale
from repro.datasets import vocab
from repro.services.knowledge_graph import KnowledgeGraph
from repro.services.nlp_server import NLPServer
from repro.services.topic_model import TopicModel
from repro.services.web_crawler import WebCrawler
from repro.types import Example

__all__ = [
    "ContentWorld",
    "ContentDataset",
    "build_content_world",
    "generate_topic_dataset",
    "generate_product_dataset",
]


# ----------------------------------------------------------------------
# the shared organizational world
# ----------------------------------------------------------------------
@dataclass
class ContentWorld:
    """The organizational resources shared by the content applications."""

    nlp_lexicon: dict[str, str]
    topic_model: TopicModel
    knowledge_graph: KnowledgeGraph
    crawler: WebCrawler
    seed: int

    def make_nlp_server(self) -> NLPServer:
        """Fresh NLP server instance (one per MapReduce node)."""
        return NLPServer(self.nlp_lexicon)


def build_content_world(seed: int = 0) -> ContentWorld:
    """Construct the NER lexicon, topic model, KG, and crawler tables."""
    lexicon: dict[str, str] = {}
    for person in vocab.CELEBRITIES + vocab.POLITICIANS:
        lexicon[person.lower()] = "person"
    for org in vocab.ORGANIZATIONS:
        lexicon[org.lower()] = "organization"
    for place in vocab.LOCATIONS:
        lexicon[place.lower()] = "location"
    for product in vocab.BIKE_PRODUCTS + vocab.BIKE_ACCESSORIES:
        lexicon[product.lower()] = "product"

    topic_model = TopicModel(vocab.COARSE_CATEGORIES)

    kg = KnowledgeGraph()
    kg.add_category("cycling")
    kg.add_category("automotive")
    kg.add_category("electronics")
    for product in vocab.BIKE_PRODUCTS:
        kg.add_product(product, "cycling", accessory=False)
    for accessory in vocab.BIKE_ACCESSORIES:
        kg.add_product(accessory, "cycling", accessory=True)
    for accessory in vocab.CAR_ACCESSORIES:
        kg.add_product(accessory, "automotive", accessory=True)
    for accessory in vocab.PHONE_ACCESSORIES:
        kg.add_product(accessory, "electronics", accessory=True)
    for i, brand in enumerate(vocab.BIKE_BRANDS):
        products = [vocab.BIKE_PRODUCTS[i % len(vocab.BIKE_PRODUCTS)]]
        kg.add_brand(brand, products)
    for word in vocab.BIKE_PRODUCTS + vocab.BIKE_ACCESSORIES:
        for language in vocab.LANGUAGES:
            kg.add_translation(word, language, vocab.translate(word, language))

    crawler = WebCrawler(vocab.DOMAINS)
    return ContentWorld(
        nlp_lexicon=lexicon,
        topic_model=topic_model,
        knowledge_graph=kg,
        crawler=crawler,
        seed=seed,
    )


@dataclass
class ContentDataset:
    """One content-classification benchmark: pools plus resources."""

    task: str
    unlabeled: list[Example]
    dev: list[Example]
    test: list[Example]
    world: ContentWorld

    @property
    def unlabeled_gold(self) -> np.ndarray:
        """Hidden gold labels of the pool (used only to simulate
        hand-labeling for the Figure 5 trade-off sweep)."""
        return np.array([e.label for e in self.unlabeled])

    def stats(self) -> dict[str, object]:
        """Table 1-style summary row."""
        test_labels = np.array([e.label for e in self.test])
        return {
            "task": self.task,
            "n_unlabeled": len(self.unlabeled),
            "n_dev": len(self.dev),
            "n_test": len(self.test),
            "pct_positive_test": 100.0 * float((test_labels == 1).mean()),
        }


# ----------------------------------------------------------------------
# document assembly helpers
# ----------------------------------------------------------------------
def _sample_tokens(rng: np.random.Generator, pool: list[str], count: int) -> list[str]:
    if count <= 0 or not pool:
        return []
    idx = rng.integers(0, len(pool), size=count)
    return [pool[i] for i in idx]


def _compose(
    rng: np.random.Generator, parts: list[list[str]], shuffle: bool = True
) -> str:
    tokens = [t for part in parts for t in part]
    if shuffle:
        order = rng.permutation(len(tokens))
        tokens = [tokens[i] for i in order]
    return " ".join(tokens)


def _pick(rng: np.random.Generator, pool: list[str]) -> str:
    return pool[int(rng.integers(0, len(pool)))]


# ----------------------------------------------------------------------
# topic classification (celebrity content)
# ----------------------------------------------------------------------
#: Coarse categories that negatives are drawn from (everything except the
#: entertainment-adjacent ones, which appear as hard negatives).
_TOPIC_NEGATIVE_CATEGORIES = [
    "sports", "finance", "technology", "automotive", "travel", "food",
    "health", "politics", "science", "fashion", "gaming", "realestate",
    "education",
]
_TOPIC_CONFUSER_CATEGORIES = ["entertainment", "music"]

_CATEGORY_DOMAINS = {
    "finance": ["marketpulse.example", "tradingdesk.example"],
    "automotive": ["autotorque.example", "gearhead.example"],
    "science": ["labnotes.example"],
    "sports": ["pitchside.example", "stadiumecho.example"],
    "food": ["tablefare.example"],
    "travel": ["wanderlist.example"],
    "music": ["chartline.example"],
    # Film/TV reviews mostly live on news and music-press sites in this
    # world; routing them to the gossip domains would make the URL LF
    # useless (its precision is what the ablation depends on).
    "entertainment": ["chartline.example", "daybreakpost.example"],
}


def _topic_positive(rng: np.random.Generator, world: ContentWorld, i: int) -> Example:
    # A slice of celebrity content uses synonym vocabulary no labeling
    # function knows; only a classifier over raw content can recall it
    # (the Section 2 generalization effect).
    synonym_style = rng.random() < 0.30

    celebs = _sample_tokens(rng, vocab.CELEBRITIES, int(rng.integers(1, 3)))
    keyword_pool = vocab.CELEB_SYNONYMS if synonym_style else vocab.CELEB_KEYWORDS
    celeb_kw = _sample_tokens(rng, keyword_pool, int(rng.integers(2, 5)))
    filters = _sample_tokens(rng, vocab.TOPIC_FILTER_KEYWORDS, int(rng.integers(1, 3)))
    confuser = _sample_tokens(
        rng,
        vocab.COARSE_CATEGORIES[_pick(rng, _TOPIC_CONFUSER_CATEGORIES)],
        int(rng.integers(0, 3)),
    )
    filler = _sample_tokens(rng, vocab.FILLER_WORDS, int(rng.integers(18, 32)))

    title = _compose(
        rng,
        [[_pick(rng, keyword_pool)], [_pick(rng, celebs)],
         _sample_tokens(rng, vocab.FILLER_WORDS, 3)],
    )
    body = _compose(rng, [celebs, celeb_kw, filters, confuser, filler])

    roll = rng.random()
    if synonym_style:
        # Synonym-style content skews to general-news sourcing, so the
        # URL and crawler signals miss it too.
        domain = (
            _pick(rng, vocab.NEWS_DOMAINS)
            if roll < 0.8
            else _pick(rng, vocab.ENTERTAINMENT_DOMAINS)
        )
    elif roll < 0.65:
        domain = _pick(rng, vocab.ENTERTAINMENT_DOMAINS)
    elif roll < 0.85:
        domain = _pick(rng, vocab.NEWS_DOMAINS)
    else:
        domain = _pick(rng, list(vocab.DOMAINS))
    url = f"https://{domain}/story/{i}"

    score_mean = 0.62 if synonym_style else 0.72
    related_score = float(np.clip(rng.normal(score_mean, 0.15), 0.0, 1.0))
    return Example(
        example_id=f"topic-{i}",
        fields={"title": title, "body": body, "url": url},
        servable={"doc_length": float(len(body.split()))},
        non_servable={"related_model_score": related_score},
        label=1,
    )


def _topic_negative(rng: np.random.Generator, world: ContentWorld, i: int) -> Example:
    if rng.random() < 0.2:
        category = _pick(rng, _TOPIC_CONFUSER_CATEGORIES)
    else:
        category = _pick(rng, _TOPIC_NEGATIVE_CATEGORIES)
    cat_tokens = _sample_tokens(
        rng, vocab.COARSE_CATEGORIES[category], int(rng.integers(4, 8))
    )
    filters = _sample_tokens(rng, vocab.TOPIC_FILTER_KEYWORDS, int(rng.integers(1, 3)))
    filler = _sample_tokens(rng, vocab.FILLER_WORDS, int(rng.integers(18, 32)))

    extras: list[list[str]] = []
    if rng.random() < 0.15:
        extras.append([_pick(rng, vocab.POLITICIANS)])
    if rng.random() < 0.08:
        extras.append([_pick(rng, vocab.CELEBRITIES)])  # hard negative
    if rng.random() < 0.02:
        extras.append(_sample_tokens(rng, vocab.CELEB_KEYWORDS, 1))
    if rng.random() < 0.3:
        extras.append([_pick(rng, vocab.ORGANIZATIONS)])

    title = _compose(
        rng,
        [_sample_tokens(rng, vocab.COARSE_CATEGORIES[category], 2),
         _sample_tokens(rng, vocab.FILLER_WORDS, 3)],
    )
    body = _compose(rng, [cat_tokens, filters, filler, *extras])

    roll = rng.random()
    domains = _CATEGORY_DOMAINS.get(category, vocab.NEWS_DOMAINS)
    if roll < 0.58:
        domain = _pick(rng, domains)
    elif roll < 0.68:
        domain = _pick(rng, vocab.SPAM_DOMAINS)
    elif roll < 0.69:
        domain = _pick(rng, vocab.ENTERTAINMENT_DOMAINS)  # hard negative
    else:
        domain = _pick(rng, vocab.NEWS_DOMAINS)
    url = f"https://{domain}/story/{i}"

    related_score = float(np.clip(rng.normal(0.33, 0.16), 0.0, 1.0))
    return Example(
        example_id=f"topic-{i}",
        fields={"title": title, "body": body, "url": url},
        servable={"doc_length": float(len(body.split()))},
        non_servable={"related_model_score": related_score},
        label=-1,
    )


def generate_topic_dataset(
    scale: ScaleConfig | str | None = None,
    seed: int = 0,
    positive_rate: float | None = None,
) -> ContentDataset:
    """The Section 3.1 topic-classification benchmark.

    ``positive_rate`` defaults to the Table 1 value (0.86%) at full scale
    and a variance-stabilized 6% at reduced scales (the dev/test splits
    shrink ~3x, so the positive *count* stays in the same regime as the
    paper's ~95 test positives).
    """
    scale = scale if isinstance(scale, ScaleConfig) else get_scale(scale)
    if positive_rate is None:
        positive_rate = 0.0086 if scale.is_full else 0.06
    world = build_content_world(seed)
    rng = np.random.default_rng(seed + 101)

    total = scale.topic_unlabeled + scale.topic_dev + scale.topic_test
    examples = []
    for i in range(total):
        if rng.random() < positive_rate:
            examples.append(_topic_positive(rng, world, i))
        else:
            examples.append(_topic_negative(rng, world, i))

    unlabeled = examples[: scale.topic_unlabeled]
    dev = examples[scale.topic_unlabeled: scale.topic_unlabeled + scale.topic_dev]
    test = examples[scale.topic_unlabeled + scale.topic_dev:]
    return ContentDataset("topic_classification", unlabeled, dev, test, world)


# ----------------------------------------------------------------------
# product classification (cycling products incl. accessories and parts)
# ----------------------------------------------------------------------
_PRODUCT_NEGATIVE_CATEGORIES = [
    "automotive", "technology", "fashion", "gaming", "food", "travel",
    "finance", "outdoors",
]


def _product_positive(rng: np.random.Generator, world: ContentWorld, i: int) -> Example:
    language = "en" if rng.random() < 0.6 else _pick(rng, vocab.LANGUAGES)
    # A slice of positives is about niche products missing from the
    # keyword lists and the Knowledge Graph (see NOVEL_BIKE_PRODUCTS).
    novel_style = rng.random() < 0.18

    core_pool = (
        vocab.NOVEL_BIKE_PRODUCTS
        if novel_style
        else vocab.BIKE_PRODUCTS + vocab.BIKE_ACCESSORIES
    )
    core = _sample_tokens(rng, core_pool, int(rng.integers(2, 5)))
    if language != "en":
        core = [vocab.translate(w, language) if w in vocab.BIKE_PRODUCTS
                or w in vocab.BIKE_ACCESSORIES else f"{w}#{language}"
                for w in core]
        # Non-English docs occasionally still carry one English term.
        if rng.random() < 0.25:
            core.append(_pick(rng, core_pool))

    commerce = _sample_tokens(rng, vocab.COMMERCE_WORDS, int(rng.integers(1, 4)))
    cycling_ctx = _sample_tokens(
        rng, vocab.COARSE_CATEGORIES["cycling"],
        int(rng.integers(1, 4)) if novel_style else int(rng.integers(0, 3)),
    )
    brand = [_pick(rng, vocab.BIKE_BRANDS)] if rng.random() < 0.35 else []
    filler = _sample_tokens(rng, vocab.FILLER_WORDS, int(rng.integers(14, 26)))

    title = _compose(
        rng, [[_pick(rng, vocab.COMMERCE_WORDS)], core[:1],
              _sample_tokens(rng, vocab.FILLER_WORDS, 2)],
    )
    body = _compose(rng, [core, commerce, cycling_ctx, brand, filler])

    domain = (
        "velodrome-shop.example" if rng.random() < 0.3
        else _pick(rng, ["dealcart.example", "bargainbin.example"])
    )
    related_score = float(np.clip(rng.normal(0.68, 0.17), 0.0, 1.0))
    return Example(
        example_id=f"product-{i}",
        fields={
            "title": title,
            "body": body,
            "url": f"https://{domain}/item/{i}",
            "language": language,
        },
        servable={"doc_length": float(len(body.split()))},
        non_servable={"related_model_score": related_score},
        label=1,
    )


def _product_negative(rng: np.random.Generator, world: ContentWorld, i: int) -> Example:
    language = "en" if rng.random() < 0.75 else _pick(rng, vocab.LANGUAGES)
    roll = rng.random()
    if roll < 0.30:
        # Accessory confusers: commercial content about accessories of
        # *other* categories (the painful part of the category expansion).
        # They also carry their home category's vocabulary — a dashcam
        # listing mentions cars — which is what lets the coarse topic
        # model veto them.
        pool = vocab.CAR_ACCESSORIES if rng.random() < 0.5 else vocab.PHONE_ACCESSORIES
        core = _sample_tokens(rng, pool, int(rng.integers(2, 5)))
        category = "automotive" if pool is vocab.CAR_ACCESSORIES else "technology"
        core += _sample_tokens(rng, vocab.COARSE_CATEGORIES[category],
                               int(rng.integers(2, 4)))
    else:
        category = _pick(rng, _PRODUCT_NEGATIVE_CATEGORIES)
        core = _sample_tokens(
            rng, vocab.COARSE_CATEGORIES[category], int(rng.integers(3, 7))
        )
    if language != "en":
        core = [f"{w}#{language}" for w in core]

    commerce = _sample_tokens(rng, vocab.COMMERCE_WORDS, int(rng.integers(1, 4)))
    filler = _sample_tokens(rng, vocab.FILLER_WORDS, int(rng.integers(14, 26)))
    extras: list[list[str]] = []
    if rng.random() < 0.06:
        # Hard negatives mentioning a cycling word in passing.
        extras.append(_sample_tokens(rng, vocab.COARSE_CATEGORIES["cycling"], 1))
    if rng.random() < 0.02:
        extras.append(_sample_tokens(rng, vocab.BIKE_ACCESSORIES, 1))

    title = _compose(
        rng, [[_pick(rng, vocab.COMMERCE_WORDS)], core[:1],
              _sample_tokens(rng, vocab.FILLER_WORDS, 2)],
    )
    body = _compose(rng, [core, commerce, filler, *extras])
    domain = _pick(rng, ["dealcart.example", "bargainbin.example",
                         "clickstorm.example"])
    related_score = float(np.clip(rng.normal(0.3, 0.16), 0.0, 1.0))
    return Example(
        example_id=f"product-{i}",
        fields={
            "title": title,
            "body": body,
            "url": f"https://{domain}/item/{i}",
            "language": language,
        },
        servable={"doc_length": float(len(body.split()))},
        non_servable={"related_model_score": related_score},
        label=-1,
    )


def generate_product_dataset(
    scale: ScaleConfig | str | None = None,
    seed: int = 0,
    positive_rate: float | None = None,
) -> ContentDataset:
    """The Section 3.2 product-classification benchmark."""
    scale = scale if isinstance(scale, ScaleConfig) else get_scale(scale)
    if positive_rate is None:
        positive_rate = 0.0148 if scale.is_full else 0.07
    world = build_content_world(seed)
    rng = np.random.default_rng(seed + 202)

    total = scale.product_unlabeled + scale.product_dev + scale.product_test
    examples = []
    for i in range(total):
        if rng.random() < positive_rate:
            examples.append(_product_positive(rng, world, i))
        else:
            examples.append(_product_negative(rng, world, i))

    unlabeled = examples[: scale.product_unlabeled]
    dev = examples[
        scale.product_unlabeled: scale.product_unlabeled + scale.product_dev
    ]
    test = examples[scale.product_unlabeled + scale.product_dev:]
    return ContentDataset("product_classification", unlabeled, dev, test, world)
