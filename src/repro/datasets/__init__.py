"""Synthetic Google-like datasets for the three case studies.

The paper evaluates on "benchmark data sets using Google data
representative of the production tasks" (Section 6) — data we cannot
have. Per the reproduction ground rules (see DESIGN.md Section 2), this
package builds seeded synthetic worlds that put every code path in the
same statistical regime:

* :mod:`repro.datasets.content` — the topic- and product-classification
  corpora (Table 1 regimes: rare positives, keyword-filtered pools,
  servable raw content + non-servable model/crawler/KG signals);
* :mod:`repro.datasets.events` — the real-time events stream over two
  platforms, with offline aggregate statistics, a source-relationship
  graph, and servable real-time signal vectors;
* :mod:`repro.datasets.vocab` — the shared vocabulary, entity lists,
  domain tables and simulated keyword translations.

Generators are deterministic given ``(seed, scale)``.
"""

from repro.datasets.content import (
    ContentDataset,
    ContentWorld,
    build_content_world,
    generate_product_dataset,
    generate_topic_dataset,
)
from repro.datasets.events import (
    EventsDataset,
    EventsWorld,
    generate_events_dataset,
)

__all__ = [
    "ContentDataset",
    "ContentWorld",
    "build_content_world",
    "generate_topic_dataset",
    "generate_product_dataset",
    "EventsDataset",
    "EventsWorld",
    "generate_events_dataset",
]
