"""Durable sinks: micro-batch outputs persisted to DFS record shards.

A sink is a callable the pipeline invokes once per finalized micro-batch
(``sink(seq, examples, votes)``), on the consumer thread, while the batch
still holds its residency permit. The sinks here make the stream's
outputs *durable*: each batch becomes one finalized record shard under
the sink's root, written through the DFS stage-then-publish path so a
crash mid-batch leaves no partial shard visible — a reader sees either
the whole batch or nothing (the invariant crash-resume is built on).

Shard-per-batch is deliberate: batch ``seq`` maps to exactly one file
(``{root}/{kind}/batch-{seq:06d}``), so recovery can reason about what
is durable by listing file names alone, and re-labeling a batch after a
crash rewrites byte-identical shards (record encoding is deterministic:
sorted keys, fixed separators).

* :class:`VoteSink` persists the raw LF votes per example — the
  streaming counterpart of the offline applier's vote shards.
* :class:`LabelSink` persists probabilistic labels per example, computed
  by a caller-supplied function from the batch's votes (typically the
  online label model's *current* posterior, i.e. the labels a downstream
  trainer consumed at that point in the stream).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Iterator

import numpy as np

from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.records import RecordWriter
from repro.types import Example

__all__ = ["RecordBatchSink", "VoteSink", "LabelSink", "batch_shard_seq"]

_BATCH_SHARD_RE = re.compile(r"/batch-(?P<seq>\d{6,})$")


def batch_shard_seq(path: str) -> int | None:
    """Parse the batch sequence number out of a sink shard path."""
    match = _BATCH_SHARD_RE.search(path)
    return None if match is None else int(match.group("seq"))


class RecordBatchSink:
    """Base class: one finalized record shard per micro-batch."""

    #: Subdirectory under the sink root; also the default counter name.
    kind = "batch"

    def __init__(
        self, dfs: DistributedFileSystem, root: str, name: str | None = None
    ) -> None:
        self._dfs = dfs
        self.root = root.rstrip("/")
        self.name = name or self.kind
        self.shards_written = 0
        self.records_written = 0

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def shard_path(self, seq: int) -> str:
        """The canonical shard path for batch ``seq`` under this sink."""
        return f"{self.root}/{self.kind}/batch-{seq:06d}"

    def batch_payloads(
        self, seq: int, examples: list[Example], votes: np.ndarray
    ) -> Iterator[dict[str, Any]]:
        """Yield the records one batch's shard contains (subclass hook).

        Args:
            seq: Batch sequence number.
            examples: The batch's examples, stream-ordered.
            votes: The batch's ``(B, m)`` vote matrix.

        Raises:
            NotImplementedError: Always, on the base class.
        """
        raise NotImplementedError

    def __call__(
        self, seq: int, examples: list[Example], votes: np.ndarray
    ) -> None:
        with RecordWriter(self._dfs, self.shard_path(seq)) as writer:
            for payload in self.batch_payloads(seq, examples, votes):
                writer.write(payload)
            written = writer.records_written
        self.shards_written += 1
        self.records_written += written

    # ------------------------------------------------------------------
    # recovery support
    # ------------------------------------------------------------------
    def existing_shards(self) -> list[str]:
        """Finalized shards under this sink's root, in batch order.

        Ordered by the parsed batch number: shard names outgrow their
        6-digit zero padding at batch 1,000,000, where lexicographic
        order would interleave 7-digit and 6-digit names.
        """
        matched = [
            (seq, path)
            for path in self._dfs.list(f"{self.root}/{self.kind}/")
            if (seq := batch_shard_seq(path)) is not None
        ]
        return [path for _, path in sorted(matched)]

    def delete_after(self, seq: int) -> list[str]:
        """Delete shards for batches newer than ``seq``; returns them.

        Recovery truncation: a crash between a shard's finalize and the
        next checkpoint leaves *orphan* shards the manifest knows nothing
        about. They are deleted (not trusted) so the resumed stream
        rewrites them from the restored state — byte-identical, but
        provably derived from checkpointed state rather than assumed.
        """
        orphans = [
            path
            for path in self.existing_shards()
            if (parsed := batch_shard_seq(path)) is not None and parsed > seq
        ]
        for path in orphans:
            self._dfs.delete(path)
        return orphans


class VoteSink(RecordBatchSink):
    """Persists each micro-batch's LF votes as one record shard.

    Shard layout: a meta record (batch seq, LF names, row count) followed
    by one ``{"example_id", "votes"}`` record per example, in stream
    order — self-describing enough that the shard set alone reconstructs
    the full label matrix.
    """

    kind = "votes"

    def __init__(
        self,
        dfs: DistributedFileSystem,
        root: str,
        lf_names: list[str],
        name: str | None = None,
    ) -> None:
        super().__init__(dfs, root, name)
        self.lf_names = list(lf_names)

    def batch_payloads(
        self, seq: int, examples: list[Example], votes: np.ndarray
    ) -> Iterator[dict[str, Any]]:
        """One meta record, then ``{example_id, votes}`` per example."""
        yield {
            "kind": "meta",
            "batch": seq,
            "lf_names": self.lf_names,
            "n": len(examples),
        }
        for example, row in zip(examples, votes):
            yield {
                "example_id": example.example_id,
                "votes": [int(v) for v in row],
            }


class LabelSink(RecordBatchSink):
    """Persists per-example probabilistic labels for each micro-batch.

    ``proba_fn(votes) -> (B,) array`` supplies the labels — wired to the
    online label model's ``predict_proba`` this records the posterior the
    stream actually produced at batch time (which is what makes resumed
    and uninterrupted runs byte-comparable: the restored model yields the
    same bits).
    """

    kind = "labels"

    def __init__(
        self,
        dfs: DistributedFileSystem,
        root: str,
        proba_fn: Callable[[np.ndarray], np.ndarray],
        name: str | None = None,
    ) -> None:
        super().__init__(dfs, root, name)
        self._proba_fn = proba_fn

    def batch_payloads(
        self, seq: int, examples: list[Example], votes: np.ndarray
    ) -> Iterator[dict[str, Any]]:
        """One meta record, then ``{example_id, proba}`` per example.

        Raises:
            ValueError: If ``proba_fn`` returns the wrong shape.
        """
        proba = np.asarray(self._proba_fn(votes), dtype=np.float64)
        if proba.shape != (len(examples),):
            raise ValueError(
                f"proba_fn returned shape {proba.shape} for a batch of "
                f"{len(examples)} examples"
            )
        yield {"kind": "meta", "batch": seq, "n": len(examples)}
        for example, p in zip(examples, proba):
            yield {"example_id": example.example_id, "proba": float(p)}
