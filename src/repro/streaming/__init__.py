"""Micro-batch streaming weak supervision.

The paper's deployment is an offline batch system: stage a corpus,
execute every labeling-function binary, fit the generative model, train
the end classifier. Production search/ads systems increasingly run the
same organizational-knowledge-to-labels conversion *continuously* over
live traffic (Vasudevan's weak-supervision-for-search deployment;
WRENCH's streaming workloads). This package turns the batched execution
engine of PR 1 into that continuous pipeline:

* :mod:`repro.streaming.sources` — incremental example sources: a
  bounded-memory reader over DFS record shards (records decode chunk by
  chunk, never as whole-shard blobs) that also reports seekable
  ``SourceCursor`` positions for O(1) resume, and an in-memory replay
  source for tests and benchmarks;
* :mod:`repro.streaming.pipeline` — :class:`MicroBatchPipeline`, a
  two-stage producer/consumer scheduler with bounded queues and
  admission-controlled backpressure (peak resident records is capped at
  a fixed number of micro-batches), driving the same block-labeling
  kernel as the offline applier so streamed votes are vote-for-vote
  identical to an offline run;
* :mod:`repro.streaming.sinks` — durable per-batch outputs: vote and
  probabilistic-label record shards published atomically per finalized
  micro-batch;
* :mod:`repro.streaming.checkpoint` — the fault-tolerance layer:
  checkpoint manifests (write-then-rename) snapshot the online model,
  the end model, and the source cursor, and
  :class:`CheckpointedStream` resumes an interrupted stream to
  byte-identical outputs;
* :class:`repro.core.online_label_model.OnlineLabelModel` — the
  incremental generative model the pipeline feeds (exported here for
  convenience), with cumulative / exponential-decay / sliding-window
  retention modes;
* :class:`repro.core.drift.DriftMonitor` — moment-based drift alarms
  (also re-exported): attach one to :class:`MicroBatchPipeline` or a
  :class:`CheckpointedStream` via a :class:`repro.core.drift.DriftPolicy`
  and read the ``drift/*`` counters off the stream report.

Everything downstream is unchanged: probabilistic labels flow to the
FTRL-trained discriminative models exactly as in the offline pipeline.
"""

from repro.core.drift import DriftCheck, DriftMonitor, DriftPolicy
from repro.core.online_label_model import (
    OnlineLabelModel,
    OnlineLabelModelConfig,
)
from repro.streaming.checkpoint import (
    Checkpoint,
    CheckpointManager,
    CheckpointedRunReport,
    CheckpointedStream,
    SimulatedCrash,
)
from repro.streaming.pipeline import (
    MicroBatchPipeline,
    PipelineStats,
    StreamReport,
)
from repro.streaming.sinks import LabelSink, RecordBatchSink, VoteSink
from repro.streaming.sources import (
    ExampleSource,
    MemorySource,
    RecordStreamSource,
    SourceCursor,
    iter_example_batches,
)

__all__ = [
    "ExampleSource",
    "MemorySource",
    "RecordStreamSource",
    "SourceCursor",
    "iter_example_batches",
    "MicroBatchPipeline",
    "PipelineStats",
    "StreamReport",
    "RecordBatchSink",
    "VoteSink",
    "LabelSink",
    "Checkpoint",
    "CheckpointManager",
    "CheckpointedStream",
    "CheckpointedRunReport",
    "SimulatedCrash",
    "OnlineLabelModel",
    "OnlineLabelModelConfig",
    "DriftCheck",
    "DriftMonitor",
    "DriftPolicy",
]
