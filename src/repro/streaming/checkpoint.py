"""Checkpointing + crash-resume for the micro-batch streaming pipeline.

This is what turns the streaming subsystem from an in-memory pipe into a
restartable production job: every finalized micro-batch's outputs are
durable (:mod:`repro.streaming.sinks`), and a *checkpoint manifest*
periodically snapshots everything else a resumed stream needs —

* the last finalized batch id and the source cursor (examples consumed,
  plus the seekable (shard, byte offset) position when the source
  supports it),
* the :class:`~repro.core.online_label_model.OnlineLabelModel`'s full
  mutable state: vote moments (including decay/window retention state),
  the dictionary-encoded pattern log, the minibatch sampler's RNG
  state, and both step counters,
* optionally the FTRL end model's per-coordinate optimizer state,
* optionally the :class:`~repro.core.drift.DriftMonitor`'s reference /
  recent windows and alarm counters, so a resumed stream scores and
  alarms on exactly the batches the uninterrupted run would have.

Manifests stay schema-compatible in both directions: a manifest written
without drift state (including every pre-drift manifest) restores into a
drift-aware stream — the online model falls back to cumulative-era
defaults and the monitor starts fresh — and the drift record is simply
absent when no policy is configured.

Manifests are written with the write-then-rename idiom
(:meth:`repro.dfs.filesystem.DistributedFileSystem.finalize_as`): staged
under a scratch name, renamed to ``ckpt-{batch:06d}`` in one step, so the
canonical name never points at a partial manifest. Manifests contain no
wall-clock state — the same stream prefix always produces the same bytes.

Recovery contract (asserted by the crash-resume tests and the
``bench_streaming`` gate): interrupt the stream after ANY finalized
micro-batch, resume with :meth:`CheckpointedStream.run`, and the vote /
label shards and final model posteriors are byte-identical to an
uninterrupted run. The mechanism:

1. resume loads the newest manifest and restores model state to the bit;
2. *orphan* shards newer than the manifest (finalized after the last
   checkpoint but before the crash) are deleted and re-derived — durable
   output is only ever trusted up to the manifest's batch;
3. the source restarts from the manifest's cursor — cursor-capable
   sources (:class:`repro.streaming.sources.RecordStreamSource`) *seek*
   to the stored (shard, byte offset) position and decode only
   unconsumed records, while plain iterables fall back to replaying and
   discarding the consumed prefix — and batch numbering continues from
   the manifest's batch id, so shard names, batch boundaries, RNG
   draws, and gradient steps all line up with the run that never
   crashed.

Refits scheduled by the stream (cadence or drift reaction) run through
:meth:`OnlineLabelModel.refit`, which by default trains directly on the
dictionary-encoded pattern log the manifest already snapshots
(pattern-compressed fitting — O(patterns x m) per step). The recovery
contract is unchanged: compressed refits are bitwise identical to the
expanded fit in the minibatch regime, so killed-and-resumed streams
still reproduce the uninterrupted run's shards and posteriors byte for
byte, manifests written before the compressed path existed restore and
refit identically, and ``REPRO_COMPRESSED_REFIT=0`` recovers the
expanded-matrix behavior exactly.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.drift import DriftMonitor, DriftPolicy
from repro.core.online_label_model import OnlineLabelModel, OnlineLabelModelConfig
from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.records import RecordWriter, read_records
from repro.discriminative.logistic import NoiseAwareLogisticRegression
from repro.lf.base import AbstractLabelingFunction
from repro.streaming.pipeline import MicroBatchPipeline, StreamReport
from repro.streaming.sinks import LabelSink, VoteSink
from repro.streaming.sources import SourceCursor
from repro.types import Example

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "CheckpointedStream",
    "CheckpointedRunReport",
    "SimulatedCrash",
]

#: Manifest schema version, bumped on incompatible layout changes.
MANIFEST_SCHEMA = 1

_MANIFEST_RE = re.compile(r"/ckpt-(?P<batch>\d{6,})$")


class SimulatedCrash(RuntimeError):
    """Injected failure for crash-recovery tests and benchmarks."""


@dataclass
class Checkpoint:
    """One loaded manifest: durable progress plus restorable state.

    ``drift_state`` is ``None`` for manifests written without a drift
    policy — including every pre-drift (schema-compatible) manifest.
    """

    path: str
    batch: int
    cursor: int
    meta: dict
    label_model_state: dict
    end_model_state: dict | None = None
    drift_state: dict | None = None


class CheckpointManager:
    """Reads and writes checkpoint manifests under ``{root}/checkpoints``."""

    def __init__(self, dfs: DistributedFileSystem, root: str) -> None:
        self._dfs = dfs
        self.root = root.rstrip("/")
        self.directory = f"{self.root}/checkpoints"

    def manifest_path(self, batch: int) -> str:
        """The canonical manifest path for a finalized batch number."""
        return f"{self.directory}/ckpt-{batch:06d}"

    # ------------------------------------------------------------------
    # write
    # ------------------------------------------------------------------
    def write(
        self,
        batch: int,
        cursor: int,
        label_model_state: dict,
        end_model_state: dict | None = None,
        meta: dict | None = None,
        drift_state: dict | None = None,
    ) -> str:
        """Atomically publish one manifest.

        Args:
            batch: Last finalized batch sequence number.
            cursor: Examples consumed up to and including ``batch``.
            label_model_state: :meth:`OnlineLabelModel.state_dict`.
            end_model_state: Optional end-model ``state_dict``.
            meta: Extra meta fields (batch size, LF names, source
                cursor position).
            drift_state: Optional :meth:`DriftMonitor.state_dict`;
                omitted records keep the manifest readable by any
                consumer (the record simply isn't there, exactly as in
                pre-drift manifests).

        Returns:
            The finalized manifest path.
        """
        final = self.manifest_path(batch)
        staged = f"{self.directory}/.staged-ckpt-{batch:06d}"
        # A writer that crashed after create() but before the rename
        # leaves an invisible staged file under this name; clear it.
        self._dfs.abandon(staged)
        with RecordWriter(self._dfs, staged, final_path=final) as writer:
            writer.write(
                {
                    "kind": "meta",
                    "schema": MANIFEST_SCHEMA,
                    "batch": batch,
                    "cursor": cursor,
                    **(meta or {}),
                }
            )
            writer.write({"kind": "label_model", "state": label_model_state})
            if end_model_state is not None:
                writer.write({"kind": "end_model", "state": end_model_state})
            if drift_state is not None:
                writer.write({"kind": "drift", "state": drift_state})
        return final

    # ------------------------------------------------------------------
    # read
    # ------------------------------------------------------------------
    def manifest_paths(self) -> list[str]:
        """All finalized manifests, oldest first.

        Ordered by the parsed batch id, not lexicographically — names
        grow past their 6-digit zero padding at batch 1,000,000, where
        string order would rank ``ckpt-1000000`` before ``ckpt-999999``.
        """
        matched = [
            (int(match.group("batch")), path)
            for path in self._dfs.list(f"{self.directory}/")
            if (match := _MANIFEST_RE.search(path))
        ]
        return [path for _, path in sorted(matched)]

    def latest_path(self) -> str | None:
        """Path of the newest manifest without decoding it."""
        paths = self.manifest_paths()
        return paths[-1] if paths else None

    def latest(self) -> Checkpoint | None:
        """The newest finalized manifest, or ``None`` on a fresh root."""
        path = self.latest_path()
        return None if path is None else self.load(path)

    def load(self, path: str) -> Checkpoint:
        """Decode one manifest into a :class:`Checkpoint`.

        Args:
            path: A finalized manifest path.

        Returns:
            The decoded :class:`Checkpoint` (drift/end-model states are
            ``None`` when their records are absent).

        Raises:
            ValueError: If the file is not a manifest, has an
                unsupported schema, or lacks the label-model record.
        """
        records = read_records(self._dfs, path)
        if not records or records[0].get("kind") != "meta":
            raise ValueError(f"{path} is not a checkpoint manifest")
        meta = records[0]
        if meta.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                f"{path} has manifest schema {meta.get('schema')!r}, "
                f"this reader supports {MANIFEST_SCHEMA}"
            )
        states = {r["kind"]: r["state"] for r in records[1:]}
        if "label_model" not in states:
            raise ValueError(f"{path} is missing the label-model state")
        return Checkpoint(
            path=path,
            batch=int(meta["batch"]),
            cursor=int(meta["cursor"]),
            meta={
                k: v
                for k, v in meta.items()
                if k not in ("kind", "schema", "batch", "cursor")
            },
            label_model_state=states["label_model"],
            end_model_state=states.get("end_model"),
            drift_state=states.get("drift"),
        )


@dataclass
class CheckpointedRunReport:
    """Everything one checkpointed (possibly resumed) run reports."""

    stream: StreamReport
    resumed_from_batch: int | None
    skipped_examples: int
    batches_finalized: int
    last_batch_seq: int
    checkpoints_written: int
    orphan_shards_deleted: list[str] = field(default_factory=list)
    manifest_path: str | None = None
    #: Examples decoded and *discarded* to reach the cursor. 0 when the
    #: source supports cursor seek (the manifest stored a shard/offset
    #: position); equals ``skipped_examples`` only on the legacy replay
    #: path (plain iterables, or manifests written before cursors).
    replayed_examples: int = 0


class _CursorTracker:
    """Records the source cursor at every micro-batch boundary.

    Wraps the source's ``(example, cursor)`` stream; consumed on the
    ingest thread, queried on the consumer thread when a manifest is
    written (by then ingest has necessarily decoded past the boundary,
    since the batch being checkpointed was fully decoded first).
    Positions below the last written checkpoint are pruned, so the map
    stays bounded by the pipeline's in-flight window.
    """

    def __init__(
        self,
        pairs: Iterable[tuple[Example, SourceCursor]],
        batch_size: int,
        base_count: int,
    ) -> None:
        self._pairs = pairs
        self._batch_size = batch_size
        self._base_count = base_count
        self._lock = threading.Lock()
        self._positions: dict[int, SourceCursor] = {}

    def __iter__(self) -> Iterator[Example]:
        count = self._base_count
        last: SourceCursor | None = None
        for example, cursor in self._pairs:
            count += 1
            last = cursor
            if count % self._batch_size == 0:
                with self._lock:
                    self._positions[count] = cursor
            yield example
        # The trailing partial batch ends at EOF; record it so the final
        # checkpoint can still carry a seekable position.
        if last is not None and count % self._batch_size != 0:
            with self._lock:
                self._positions[count] = last

    def position_for(self, count: int) -> SourceCursor | None:
        with self._lock:
            return self._positions.get(count)

    def prune_below(self, count: int) -> None:
        with self._lock:
            for key in [k for k in self._positions if k < count]:
                del self._positions[key]


class _CheckpointSink:
    """Pipeline sink that advances the cursor and writes manifests."""

    name = "checkpoint"

    def __init__(self, runner: "CheckpointedStream") -> None:
        self._runner = runner

    def __call__(
        self, seq: int, examples: list[Example], votes: np.ndarray
    ) -> None:
        self._runner._finalize_batch(seq, len(examples))


class CheckpointedStream:
    """Durable, resumable micro-batch labeling over an example source.

    Owns the online label model (and optionally a prequential FTRL end
    model), wires :class:`VoteSink` / :class:`LabelSink` into the
    pipeline's sink stage, checkpoints every ``checkpoint_every``
    finalized batches plus once at stream end, and — when the root
    already holds a manifest — resumes instead of restarting: restore
    state, drop orphan shards, skip consumed examples, continue batch
    numbering. ``run`` is idempotent; invoking it on a completed root
    replays nothing and rewrites nothing.
    """

    def __init__(
        self,
        dfs: DistributedFileSystem,
        lfs: Sequence[AbstractLabelingFunction],
        root: str,
        batch_size: int = 1024,
        max_resident_batches: int = 2,
        online_config: OnlineLabelModelConfig | None = None,
        checkpoint_every: int = 1,
        write_labels: bool = True,
        end_model: NoiseAwareLogisticRegression | None = None,
        featurizer=None,
        end_model_epochs: int = 1,
        workers: int = 1,
        suite_spec=None,
        executor=None,
        drift: DriftPolicy | None = None,
        telemetry=None,
        tracer=None,
    ) -> None:
        """Configure a durable, resumable stream.

        Args:
            dfs: The filesystem holding shards and manifests.
            lfs: Labeling-function suite (fixed for the root's life).
            root: Durable root; sinks and manifests live under it.
            batch_size: Micro-batch size (pinned by the first manifest).
            max_resident_batches: Residency-permit pool size.
            online_config: Online label model configuration, including
                its retention mode (cumulative / decay / window).
            checkpoint_every: Manifest cadence in finalized batches.
            write_labels: Also persist per-batch probabilistic labels.
            end_model: Optional prequential FTRL end model.
            featurizer: Required iff ``end_model`` is given.
            end_model_epochs: FTRL passes per micro-batch.
            workers: ``> 1`` labels batches on a process pool.
            suite_spec: Picklable LF-suite factory for workers.
            executor: A live, reusable parallel executor.
            drift: Optional :class:`repro.core.drift.DriftPolicy`. When
                set, each run owns a :class:`DriftMonitor` fed every
                finalized batch; the ``"refit"`` reaction forces an
                early :meth:`OnlineLabelModel.refit`, monitor state is
                snapshotted into every manifest (bit-exactly), and
                ``drift/*`` counters appear on the stream report.
            telemetry: Optional :class:`repro.obs.MetricsRegistry`
                shared with the pipeline (stage histograms) and fed
                ``stream/checkpoint_us`` per manifest written. Purely
                observational — manifests and shards stay byte-identical
                with or without it.
            tracer: Optional :class:`repro.obs.Tracer` shared with the
                pipeline; manifest writes emit ``stream.checkpoint``
                spans.

        Raises:
            ValueError: On a non-positive ``checkpoint_every`` or an
                ``end_model``/``featurizer`` mismatch.
        """
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if (end_model is None) != (featurizer is None):
            raise ValueError(
                "end_model and featurizer must be supplied together"
            )
        self._dfs = dfs
        self.lfs = list(lfs)
        self.root = root.rstrip("/")
        self.batch_size = batch_size
        self.max_resident_batches = max_resident_batches
        self.online_config = online_config or OnlineLabelModelConfig()
        self.checkpoint_every = checkpoint_every
        self.write_labels = write_labels
        self.end_model = end_model
        self.featurizer = featurizer
        self.end_model_epochs = end_model_epochs
        #: Multi-consumer labeling (process pool); sinks and manifests
        #: still finalize strictly in batch order, so durable bytes stay
        #: identical to a single-consumer run.
        self.workers = workers
        self.suite_spec = suite_spec
        self.executor = executor
        #: Drift policy; each run() builds a fresh monitor from it (and
        #: restores the manifest's monitor snapshot on resume).
        self.drift_policy = drift
        self.telemetry = telemetry
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        self.manager = CheckpointManager(dfs, self.root)
        self.online = OnlineLabelModel(self.online_config)
        self.drift_monitor: DriftMonitor | None = None
        # Per-run state, rebuilt by run().
        self._cursor = 0
        self._last_seq = -1
        self._last_checkpoint_seq = -1
        self._checkpoints_written = 0
        self._fail_after: int | None = None
        self._tracker: _CursorTracker | None = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        source: Iterable[Example],
        fail_after_batch: int | None = None,
    ) -> CheckpointedRunReport:
        """Fresh run or resume, decided by the manifest directory.

        ``fail_after_batch`` injects a :class:`SimulatedCrash` once the
        batch with that (absolute) sequence number is fully finalized —
        shards written, manifest written if due — which is exactly the
        failure envelope a real crash-resume must survive.
        """
        checkpoint = self.manager.latest()
        self.online = OnlineLabelModel(self.online_config)
        self.drift_monitor = None
        if self.drift_policy is not None:
            self.drift_monitor = DriftMonitor(
                self.drift_policy,
                refit_callback=lambda: self.online.refit(),
            )
        resumed_from: int | None = None
        cursor = 0
        lf_names = [lf.name for lf in self.lfs]
        if checkpoint is not None:
            stored = checkpoint.meta.get("batch_size")
            if stored is not None and stored != self.batch_size:
                raise ValueError(
                    f"cannot resume with batch_size={self.batch_size}; "
                    f"the manifest was written with batch_size={stored} "
                    "and resume must reproduce batch boundaries"
                )
            stored_lfs = checkpoint.meta.get("lf_names")
            if stored_lfs is not None and stored_lfs != lf_names:
                raise ValueError(
                    "cannot resume with a different LF suite: the "
                    f"manifest was written with {stored_lfs}, this run "
                    f"has {lf_names}; new shards would not be "
                    "column-compatible with the durable ones"
                )
            self.online.load_state(checkpoint.label_model_state)
            # Monitor state restores only when this run monitors drift
            # AND the manifest carries a snapshot; a pre-drift manifest
            # (or one written without a policy) starts the monitor
            # fresh, and a manifest written *with* drift state resumes
            # bit-exactly — same scores, same alarm batches.
            if (
                self.drift_monitor is not None
                and checkpoint.drift_state is not None
            ):
                self.drift_monitor.load_state(checkpoint.drift_state)
            if self.end_model is not None:
                if checkpoint.end_model_state is None:
                    raise ValueError(
                        "manifest has no end-model state but this run "
                        "trains an end model"
                    )
                self.end_model.load_state(checkpoint.end_model_state)
            resumed_from = checkpoint.batch
            cursor = checkpoint.cursor

        vote_sink = VoteSink(self._dfs, self.root, lf_names)
        sinks: list = [vote_sink]
        label_sink = None
        if self.write_labels:
            label_sink = LabelSink(self._dfs, self.root, self._label_proba)
            sinks.append(label_sink)
        sinks.append(_CheckpointSink(self))

        # Recovery truncation: durable output is only trusted up to the
        # manifest — anything newer was mid-flight when we died.
        last_durable = -1 if resumed_from is None else resumed_from
        orphans = vote_sink.delete_after(last_durable)
        if label_sink is not None:
            orphans += label_sink.delete_after(last_durable)

        self._cursor = cursor
        self._last_seq = last_durable
        self._last_checkpoint_seq = last_durable
        self._checkpoints_written = 0
        self._fail_after = fail_after_batch

        pipeline = MicroBatchPipeline(
            self.lfs,
            batch_size=self.batch_size,
            max_resident_batches=self.max_resident_batches,
            on_batch=self._learn,
            sinks=sinks,
            first_batch_seq=last_durable + 1,
            workers=self.workers,
            suite_spec=self.suite_spec,
            executor=self.executor,
            drift_monitor=self.drift_monitor,
            telemetry=self.telemetry,
            tracer=self.tracer,
        )
        # Source replay: seek when we can, replay-and-discard when we
        # must. A cursor-capable source resumes at the manifest's
        # (shard, byte offset) position and decodes O(1) work past it;
        # plain iterables — and manifests written before source cursors
        # existed — fall back to decoding and discarding the consumed
        # prefix (the old O(n) behaviour, kept for compatibility).
        replayed = 0
        self._tracker = None
        if hasattr(source, "iter_with_cursor"):
            start = (
                SourceCursor.from_meta(checkpoint.meta)
                if checkpoint is not None
                else None
            )
            pairs = source.iter_with_cursor(start)
            if start is None and cursor:
                pairs = islice(pairs, cursor, None)
                replayed = cursor
            self._tracker = _CursorTracker(pairs, self.batch_size, cursor)
            stream: Iterable[Example] = iter(self._tracker)
        else:
            stream = iter(source)
            if cursor:
                stream = islice(stream, cursor, None)
                replayed = cursor
        report = pipeline.run(stream)

        # Stream drained cleanly: pin the final state even when the last
        # batch fell between checkpoint cadences.
        if self._last_seq > self._last_checkpoint_seq:
            self._write_checkpoint(self._last_seq)
        if self.telemetry is not None:
            # Re-snapshot so the report sees the end-of-stream manifest
            # write too (the pipeline snapshots before it happens).
            report.telemetry = self.telemetry.snapshot()
        return CheckpointedRunReport(
            stream=report,
            resumed_from_batch=resumed_from,
            skipped_examples=cursor,
            batches_finalized=report.batches,
            last_batch_seq=self._last_seq,
            checkpoints_written=self._checkpoints_written,
            orphan_shards_deleted=orphans,
            manifest_path=self.manager.latest_path(),
            replayed_examples=replayed,
        )

    # ------------------------------------------------------------------
    # per-batch stages (consumer thread)
    # ------------------------------------------------------------------
    def _learn(
        self, seq: int, examples: list[Example], votes: np.ndarray
    ) -> None:
        """Model updates — runs before the durable sinks."""
        self.online.observe(votes)
        if self.end_model is None:
            return
        covered = np.abs(votes).sum(axis=1) > 0
        if covered.any():
            soft = self.online.predict_proba(votes[covered])
            X = self.featurizer.transform(
                [e for e, keep in zip(examples, covered) if keep]
            )
            self.end_model.partial_fit(X, soft, epochs=self.end_model_epochs)

    def _label_proba(self, votes: np.ndarray) -> np.ndarray:
        """Posterior from the *current* online model for the label sink."""
        model = self.online.model
        if model.alpha is None:
            # No parameters yet (steps_per_batch=0 before any refit):
            # every row carries only the configured class prior.
            return np.full(votes.shape[0], model.class_prior())
        return self.online.predict_proba(votes)

    def _finalize_batch(self, seq: int, n_examples: int) -> None:
        """Last sink stage: advance the cursor, checkpoint, maybe crash."""
        self._cursor += n_examples
        self._last_seq = seq
        if (seq + 1) % self.checkpoint_every == 0:
            self._write_checkpoint(seq)
        if self._fail_after is not None and seq >= self._fail_after:
            raise SimulatedCrash(
                f"injected crash after finalizing batch {seq}"
            )

    def _write_checkpoint(self, seq: int) -> str:
        # repro: allow[determinism] times the write for stream/checkpoint_us; checkpoint bytes are clock-free
        start = time.perf_counter()
        meta = {
            "batch_size": self.batch_size,
            "checkpoint_every": self.checkpoint_every,
            "lf_names": [lf.name for lf in self.lfs],
        }
        if self._tracker is not None:
            position = self._tracker.position_for(self._cursor)
            if position is not None:
                meta.update(position.as_meta())
            self._tracker.prune_below(self._cursor)
        path = self.manager.write(
            seq,
            self._cursor,
            self.online.state_dict(),
            end_model_state=(
                None if self.end_model is None else self.end_model.state_dict()
            ),
            meta=meta,
            drift_state=(
                None
                if self.drift_monitor is None
                else self.drift_monitor.state_dict()
            ),
        )
        self._last_checkpoint_seq = seq
        self._checkpoints_written += 1
        # repro: allow[determinism] telemetry payload only; not written into the checkpoint
        checkpoint_us = int((time.perf_counter() - start) * 1e6)
        if self.telemetry is not None:
            self.telemetry.record("stream/checkpoint_us", checkpoint_us)
        if self.tracer is not None:
            self.tracer.emit(
                "stream.checkpoint", checkpoint_us, seq=seq, path=path
            )
        return path
