"""Example sources for the micro-batch streaming pipeline.

A source is anything iterable over :class:`repro.types.Example` — the
pipeline assembles micro-batches from the iterator, so sources stay
trivially composable (a generator over a socket would work the same
way). Two concrete sources cover the repository's needs:

* :class:`RecordStreamSource` — replays staged DFS record shards with
  true incremental reads: each shard streams through
  :class:`repro.dfs.records.RecordReader` chunk by chunk, so an
  arbitrarily large shard set is ingested at O(chunk + one record)
  memory in the source itself (the pipeline's admission control bounds
  the decoded records downstream).
* :class:`MemorySource` — an in-memory replay source for tests and
  benchmarks. It can re-yield the same Example objects (cheap) or clone
  them per pass (``fresh=True``) so per-example token memos start cold,
  matching what decoding from records would produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Protocol, Sequence

from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.records import (
    DEFAULT_READ_CHUNK,
    stream_records_with_offsets,
)
from repro.types import Example

__all__ = [
    "ExampleSource",
    "SourceCursor",
    "RecordStreamSource",
    "MemorySource",
    "iter_example_batches",
]


@dataclass(frozen=True)
class SourceCursor:
    """A resumable position inside a shard set: *seek here, read on*.

    ``shard`` indexes the source's path list; ``offset`` is the absolute
    byte offset of the next unread record within that shard (record
    framing is length-prefixed, so offsets land exactly on record
    boundaries). Checkpoint manifests persist these two integers so a
    resumed stream decodes O(1) work past the cursor instead of
    re-decoding and discarding every consumed example.
    """

    shard: int
    offset: int

    def as_meta(self) -> dict[str, int]:
        """Manifest-friendly encoding (plain ints, schema-stable)."""
        return {"cursor_shard": self.shard, "cursor_offset": self.offset}

    @classmethod
    def from_meta(cls, meta: dict) -> "SourceCursor | None":
        """Inverse of :meth:`as_meta`; ``None`` when the manifest has no
        stored position (pre-cursor manifests)."""
        if "cursor_shard" not in meta or "cursor_offset" not in meta:
            return None
        return cls(int(meta["cursor_shard"]), int(meta["cursor_offset"]))


class ExampleSource(Protocol):
    """Anything that can be iterated for examples, possibly many times."""

    def __iter__(self) -> Iterator[Example]: ...


class RecordStreamSource:
    """Streams examples out of finalized DFS record shards.

    Iteration opens one shard at a time and decodes records through the
    chunked reader — no whole-shard blobs, no upfront materialization.
    Reiterable: each ``iter()`` starts a fresh pass over the shard set.

    The source is also *seekable*: :meth:`iter_with_cursor` reports a
    :class:`SourceCursor` alongside every example and accepts one to
    start mid-stream, seeking the chunked reader straight to the stored
    byte offset. This closes the resume-replay gap — a checkpointed
    stream restarts by decoding only unconsumed records, not by
    re-decoding and discarding the whole consumed prefix.
    """

    def __init__(
        self,
        dfs: DistributedFileSystem,
        paths: Sequence[str],
        chunk_size: int = DEFAULT_READ_CHUNK,
    ) -> None:
        self._dfs = dfs
        self._paths = list(paths)
        self._chunk_size = chunk_size

    def __iter__(self) -> Iterator[Example]:
        for example, _ in self.iter_with_cursor():
            yield example

    def iter_from(self, cursor: SourceCursor | None) -> Iterator[Example]:
        """Examples strictly after ``cursor`` (all of them for ``None``)."""
        for example, _ in self.iter_with_cursor(cursor):
            yield example

    def iter_with_cursor(
        self, start: SourceCursor | None = None
    ) -> Iterator[tuple[Example, SourceCursor]]:
        """Yield ``(example, cursor-after-it)`` pairs from ``start``.

        The yielded cursor names the position *after* the example, i.e.
        the exact argument a later call needs to continue with the next
        record. A ``start`` at a shard's EOF is equivalent to the next
        shard's offset 0.
        """
        first_shard = 0 if start is None else start.shard
        if first_shard < 0 or first_shard > len(self._paths):
            raise ValueError(
                f"cursor shard {first_shard} out of range for "
                f"{len(self._paths)} shards"
            )
        for index in range(first_shard, len(self._paths)):
            path = self._paths[index]
            # open_read stats the file, so missing shards fail fast here.
            handle = self._dfs.open_read(path)
            try:
                if start is not None and index == first_shard and start.offset:
                    if start.offset > handle.size:
                        raise ValueError(
                            f"cursor offset {start.offset} beyond {path} "
                            f"({handle.size} bytes)"
                        )
                    handle.seek(start.offset)
                for record, end in stream_records_with_offsets(
                    handle, self._chunk_size
                ):
                    yield Example.from_record(record), SourceCursor(index, end)
            finally:
                handle.close()


class MemorySource:
    """Replays an in-memory example list, optionally as fresh clones.

    ``fresh=True`` yields copies so that state an execution engine hangs
    off Example objects (the batch engine's token memos) never leaks
    between passes — the honest stand-in for records decoded off the
    wire.
    """

    def __init__(self, examples: Sequence[Example], fresh: bool = False) -> None:
        self._examples = list(examples)
        self._fresh = fresh

    def __len__(self) -> int:
        return len(self._examples)

    def __iter__(self) -> Iterator[Example]:
        if not self._fresh:
            yield from self._examples
            return
        for e in self._examples:
            yield Example(
                example_id=e.example_id,
                fields=dict(e.fields),
                servable=dict(e.servable),
                non_servable=dict(e.non_servable),
                label=e.label,
            )


def iter_example_batches(
    source: Iterable[Example], batch_size: int
) -> Iterator[list[Example]]:
    """Assemble a flat example iterator into micro-batches."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    batch: list[Example] = []
    for example in source:
        batch.append(example)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch
