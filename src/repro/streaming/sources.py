"""Example sources for the micro-batch streaming pipeline.

A source is anything iterable over :class:`repro.types.Example` — the
pipeline assembles micro-batches from the iterator, so sources stay
trivially composable (a generator over a socket would work the same
way). Two concrete sources cover the repository's needs:

* :class:`RecordStreamSource` — replays staged DFS record shards with
  true incremental reads: each shard streams through
  :class:`repro.dfs.records.RecordReader` chunk by chunk, so an
  arbitrarily large shard set is ingested at O(chunk + one record)
  memory in the source itself (the pipeline's admission control bounds
  the decoded records downstream).
* :class:`MemorySource` — an in-memory replay source for tests and
  benchmarks. It can re-yield the same Example objects (cheap) or clone
  them per pass (``fresh=True``) so per-example token memos start cold,
  matching what decoding from records would produce.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, Sequence

from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.records import DEFAULT_READ_CHUNK, RecordReader
from repro.types import Example

__all__ = [
    "ExampleSource",
    "RecordStreamSource",
    "MemorySource",
    "iter_example_batches",
]


class ExampleSource(Protocol):
    """Anything that can be iterated for examples, possibly many times."""

    def __iter__(self) -> Iterator[Example]: ...


class RecordStreamSource:
    """Streams examples out of finalized DFS record shards.

    Iteration opens one shard at a time and decodes records through the
    chunked reader — no whole-shard blobs, no upfront materialization.
    Reiterable: each ``iter()`` starts a fresh pass over the shard set.
    """

    def __init__(
        self,
        dfs: DistributedFileSystem,
        paths: Sequence[str],
        chunk_size: int = DEFAULT_READ_CHUNK,
    ) -> None:
        self._dfs = dfs
        self._paths = list(paths)
        self._chunk_size = chunk_size

    def __iter__(self) -> Iterator[Example]:
        for path in self._paths:
            reader = RecordReader(self._dfs, path, chunk_size=self._chunk_size)
            for record in reader:
                yield Example.from_record(record)


class MemorySource:
    """Replays an in-memory example list, optionally as fresh clones.

    ``fresh=True`` yields copies so that state an execution engine hangs
    off Example objects (the batch engine's token memos) never leaks
    between passes — the honest stand-in for records decoded off the
    wire.
    """

    def __init__(self, examples: Sequence[Example], fresh: bool = False) -> None:
        self._examples = list(examples)
        self._fresh = fresh

    def __len__(self) -> int:
        return len(self._examples)

    def __iter__(self) -> Iterator[Example]:
        if not self._fresh:
            yield from self._examples
            return
        for e in self._examples:
            yield Example(
                example_id=e.example_id,
                fields=dict(e.fields),
                servable=dict(e.servable),
                non_servable=dict(e.non_servable),
                label=e.label,
            )


def iter_example_batches(
    source: Iterable[Example], batch_size: int
) -> Iterator[list[Example]]:
    """Assemble a flat example iterator into micro-batches."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    batch: list[Example] = []
    for example in source:
        batch.append(example)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch
