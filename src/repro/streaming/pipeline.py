"""The micro-batch streaming scheduler.

:class:`MicroBatchPipeline` converts an example source into a continuous
labeling run: an ingest thread decodes examples and assembles
micro-batches; the caller's thread executes the same block-labeling
kernel the offline applier uses (:func:`repro.lf.applier.label_example_block`
— fused token-match executor plus per-LF batch kernels), then hands the
votes to a sink callback (online label model update, end-model training,
vote persistence).

Flow control is admission-based, not just queue-based: the ingest stage
must hold one *residency permit* per in-flight micro-batch before it may
decode the batch's records, and the permit is only returned after the
batch has been labeled and the sink has consumed it. With the default
``max_resident_batches=2`` the pipeline never holds more than two
micro-batches of decoded records — one being labeled, one staged — no
matter how fast the source is; a :class:`repro.mapreduce.counters.Gauge`
tracks the actual high-water mark so benchmarks can assert the bound
rather than trust it.

Per-stage observability reuses the MapReduce counter machinery: counts
("ingest/records", "label/votes", "ingest/backpressure_waits") and
microsecond timings ("ingest/decode_us", "queue/wait_us", "label/us",
"sink/us") land in one :class:`CounterSet`, summarized per stage by
:class:`PipelineStats` on the report.

Ordering is deterministic: one producer, one consumer, a FIFO queue —
micro-batches are labeled in source order, so streaming a dataset yields
a label matrix vote-for-vote identical to the offline applier (asserted
by the equivalence suite).
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.lf.applier import (
    fused_lf_columns,
    label_example_block,
    start_lf_resources,
    stop_lf_resources,
)
from repro.lf.base import AbstractLabelingFunction
from repro.mapreduce.counters import CounterSet, Gauge
from repro.streaming.sources import iter_example_batches
from repro.types import Example, LabelMatrix

__all__ = ["MicroBatchPipeline", "PipelineStats", "StreamReport"]

#: Sink callback: (batch_index, examples, votes) — runs on the consumer
#: thread, in batch order, while the batch still holds its residency
#: permit (the examples are guaranteed alive for the duration).
BatchSink = Callable[[int, list[Example], np.ndarray], None]


@dataclass
class _Batch:
    seq: int
    examples: list[Example]
    created: float
    enqueued: float = 0.0


@dataclass
class PipelineStats:
    """One stage's aggregate throughput numbers."""

    name: str
    batches: int
    records: int
    seconds: float

    @property
    def records_per_second(self) -> float:
        if self.seconds <= 0:
            return float("inf") if self.records else 0.0
        return self.records / self.seconds


@dataclass
class StreamReport:
    """Everything one pipeline run reports."""

    examples: int
    batches: int
    lf_count: int
    wall_seconds: float
    peak_resident_records: int
    max_resident_records: int
    backpressure_waits: int
    votes_emitted: int
    mean_batch_latency_seconds: float
    max_batch_latency_seconds: float
    counters: dict[str, int] = field(default_factory=dict)
    label_matrix: LabelMatrix | None = None

    @property
    def examples_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf") if self.examples else 0.0
        return self.examples / self.wall_seconds

    def stage(self, name: str) -> PipelineStats:
        """Summarize one stage ("ingest", "label", "sink") from counters."""
        time_key = {
            "ingest": "ingest/decode_us",
            "label": "label/us",
            "sink": "sink/us",
        }[name]
        return PipelineStats(
            name=name,
            batches=self.counters.get(f"{name}/batches", self.batches),
            records=self.counters.get("ingest/records", self.examples),
            seconds=self.counters.get(time_key, 0) / 1e6,
        )

    def stages(self) -> dict[str, PipelineStats]:
        return {name: self.stage(name) for name in ("ingest", "label", "sink")}


class MicroBatchPipeline:
    """Bounded-memory micro-batch labeling over an example stream."""

    def __init__(
        self,
        lfs: Sequence[AbstractLabelingFunction],
        batch_size: int = 1024,
        max_resident_batches: int = 2,
        on_batch: BatchSink | None = None,
        collect_votes: bool = False,
        sinks: Sequence[BatchSink] | None = None,
        first_batch_seq: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_resident_batches < 1:
            raise ValueError(
                f"max_resident_batches must be >= 1, got {max_resident_batches}"
            )
        if first_batch_seq < 0:
            raise ValueError(
                f"first_batch_seq must be >= 0, got {first_batch_seq}"
            )
        self.lfs = list(lfs)
        self.batch_size = batch_size
        self.max_resident_batches = max_resident_batches
        self.on_batch = on_batch
        self.collect_votes = collect_votes
        #: Ordered sink stage: each callable runs after ``on_batch``, on
        #: the consumer thread, while the batch holds its residency
        #: permit (sink time is therefore part of the backpressure
        #: accounting — a slow sink stalls ingest, it does not grow
        #: memory). Each sink gets its own counters keyed by its ``name``
        #: attribute (class name when absent).
        self.sinks = list(sinks) if sinks else []
        #: Batch numbering offset — a resumed stream continues the
        #: uninterrupted run's sequence so sink shard names line up.
        self.first_batch_seq = first_batch_seq

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, source: Iterable[Example]) -> StreamReport:
        """Drain the source through the pipeline; returns the report.

        The ingest stage runs on its own thread; labeling and the sink
        run on the calling thread, in batch order.
        """
        counters = CounterSet()
        resident = Gauge()
        permits = threading.Semaphore(self.max_resident_batches)
        handoff: queue_module.Queue[_Batch | None] = queue_module.Queue()
        stop = threading.Event()
        producer_error: list[BaseException | None] = [None]

        def counted(examples: Iterable[Example]):
            for example in examples:
                resident.add(1)
                yield example

        def produce() -> None:
            try:
                batches = iter_example_batches(
                    counted(iter(source)), self.batch_size
                )
                seq = self.first_batch_seq
                while not stop.is_set():
                    # Admission control: hold a residency permit BEFORE
                    # decoding the next batch's records.
                    if not permits.acquire(blocking=False):
                        counters.increment("ingest/backpressure_waits")
                        waited = time.perf_counter()
                        permits.acquire()
                        counters.increment(
                            "ingest/wait_us",
                            int((time.perf_counter() - waited) * 1e6),
                        )
                    if stop.is_set():
                        permits.release()
                        return
                    decode_start = time.perf_counter()
                    batch_examples = next(batches, None)
                    if batch_examples is None:
                        permits.release()
                        return
                    now = time.perf_counter()
                    counters.increment(
                        "ingest/decode_us", int((now - decode_start) * 1e6)
                    )
                    counters.increment("ingest/records", len(batch_examples))
                    counters.increment("ingest/batches")
                    batch = _Batch(seq, batch_examples, decode_start, now)
                    seq += 1
                    handoff.put(batch)
            except BaseException as error:  # surfaced on the consumer side
                producer_error[0] = error
            finally:
                handoff.put(None)

        fused_cols = fused_lf_columns(self.lfs)
        collected_votes: list[np.ndarray] = []
        collected_ids: list[str] = []
        votes_emitted = 0
        batches_done = 0
        examples_done = 0
        latency_sum = 0.0
        latency_max = 0.0

        wall_start = time.perf_counter()
        start_lf_resources(self.lfs)
        producer = threading.Thread(
            target=produce, name="microbatch-ingest", daemon=True
        )
        producer.start()
        try:
            while True:
                batch = handoff.get()
                if batch is None:
                    if producer_error[0] is not None:
                        raise producer_error[0]
                    break
                counters.increment(
                    "queue/wait_us",
                    int((time.perf_counter() - batch.enqueued) * 1e6),
                )
                label_start = time.perf_counter()
                votes = label_example_block(self.lfs, batch.examples, fused_cols)
                counters.increment(
                    "label/us", int((time.perf_counter() - label_start) * 1e6)
                )
                counters.increment("label/batches")
                batch_votes = int(np.count_nonzero(votes))
                votes_emitted += batch_votes
                counters.increment("label/votes", batch_votes)
                if self.on_batch is not None or self.sinks:
                    if self.on_batch is not None:
                        sink_start = time.perf_counter()
                        self.on_batch(batch.seq, batch.examples, votes)
                        counters.increment(
                            "sink/us",
                            int((time.perf_counter() - sink_start) * 1e6),
                        )
                    for sink in self.sinks:
                        sink_start = time.perf_counter()
                        sink(batch.seq, batch.examples, votes)
                        elapsed_us = int(
                            (time.perf_counter() - sink_start) * 1e6
                        )
                        name = getattr(
                            sink, "name", type(sink).__name__
                        )
                        counters.increment("sink/us", elapsed_us)
                        counters.increment(f"sink/{name}/us", elapsed_us)
                        counters.increment(f"sink/{name}/batches")
                        counters.increment(
                            f"sink/{name}/records", len(batch.examples)
                        )
                    counters.increment("sink/batches")
                if self.collect_votes:
                    collected_votes.append(votes)
                    collected_ids.extend(
                        e.example_id for e in batch.examples
                    )
                batches_done += 1
                examples_done += len(batch.examples)
                latency = time.perf_counter() - batch.created
                latency_sum += latency
                latency_max = max(latency_max, latency)
                # The batch's records leave the pipeline here; only now
                # may the ingest stage decode a replacement batch.
                resident.subtract(len(batch.examples))
                permits.release()
        except BaseException:
            # Wake the producer if it is blocked on a permit; with the
            # stop flag set it exits at the next check, so the join in
            # the finally block cannot hang.
            stop.set()
            permits.release()
            raise
        finally:
            producer.join()
            stop_lf_resources(self.lfs)
        wall = time.perf_counter() - wall_start

        label_matrix = None
        if self.collect_votes:
            stacked = (
                np.vstack(collected_votes)
                if collected_votes
                else np.zeros((0, len(self.lfs)), dtype=np.int8)
            )
            label_matrix = LabelMatrix(
                stacked, collected_ids, [lf.name for lf in self.lfs]
            )
        return StreamReport(
            examples=examples_done,
            batches=batches_done,
            lf_count=len(self.lfs),
            wall_seconds=wall,
            peak_resident_records=resident.peak,
            max_resident_records=self.max_resident_batches * self.batch_size,
            backpressure_waits=counters.value("ingest/backpressure_waits"),
            votes_emitted=votes_emitted,
            mean_batch_latency_seconds=(
                latency_sum / batches_done if batches_done else 0.0
            ),
            max_batch_latency_seconds=latency_max,
            counters=counters.as_dict(),
            label_matrix=label_matrix,
        )
