"""The micro-batch streaming scheduler.

:class:`MicroBatchPipeline` converts an example source into a continuous
labeling run: an ingest thread decodes examples and assembles
micro-batches; labeling runs the same block-labeling kernel the offline
applier uses (:func:`repro.lf.applier.label_example_block` — fused
token-match executor plus per-LF batch kernels); finalized votes are
handed to sink callbacks (online label model update, end-model training,
vote persistence) strictly in batch order.

Labeling has two execution modes:

* **single-consumer** (default): the caller's thread labels each batch
  as it leaves the handoff queue — one producer, one consumer, a FIFO
  queue.
* **multi-consumer** (``workers > 1``): the ingest thread dispatches
  each decoded batch to a :class:`repro.parallel.ParallelLabelExecutor`
  process pool; the caller's thread drains completions, restores batch
  order by sequence number, and finalizes. Sinks and checkpoints still
  observe batches strictly in order, so streamed votes, sink shards,
  and posteriors stay bit-exact with a serial run at any worker count
  (asserted by the equivalence suite).

Flow control is admission-based, not just queue-based: the ingest stage
must hold one *residency permit* per in-flight micro-batch before it may
decode the batch's records, and the permit is only returned after the
batch has been labeled and the sink has consumed it. With the default
``max_resident_batches=2`` the pipeline never holds more than two
micro-batches of decoded records no matter how fast the source is — and
in multi-consumer mode the same permits bound the batches in flight
*across all workers* (decoded, queued, labeling, or awaiting in-order
finalization). A :class:`repro.mapreduce.counters.Gauge` tracks the
actual high-water mark so benchmarks can assert the bound rather than
trust it.

Counter contract
----------------
Per-stage observability reuses the MapReduce counter machinery; one
:class:`CounterSet` collects everything and :class:`PipelineStats`
summarizes it per stage on the report. The keys every run produces are
listed in :data:`COUNTER_CONTRACT` (enforced by a test):

* ``ingest/records``, ``ingest/batches``, ``ingest/decode_us`` — the
  decode stage;
* ``label/records``, ``label/batches``, ``label/votes``, ``label/us`` —
  the labeling stage (in multi-consumer mode ``label/us`` sums
  *worker-side* labeling time across processes, so it can exceed wall
  time);
* ``queue/wait_us`` — producer-to-consumer handoff latency (in
  multi-consumer mode: dispatch-to-finalize latency, which includes
  worker compute).

Conditional keys (:data:`CONDITIONAL_COUNTER_KEYS`): backpressure stalls
land in ``ingest/backpressure_waits`` / ``ingest/wait_us`` — *not* in
``queue/wait_us``, which never measures backpressure — sink timing in
``sink/us`` / ``sink/batches`` / ``sink/records`` (plus per-sink
``sink/<name>/us|batches|records``), and multi-consumer runs add
``ingest/encode_us`` for the record-codec framing of each dispatched
batch.

Runs with a drift monitor attached (``drift_monitor=``) additionally
emit ``drift/batches`` (batches fed to the monitor), ``drift/checks``
(batches where both windows were full and a score was computed),
``drift/alarms`` (score over threshold), and — per reaction fired —
``drift/forced_refits`` / ``drift/reference_resets``. The monitor is
fed on the consumer thread, strictly in batch order, *after* the
``on_batch`` callback (so a model sink has already observed the batch
when a forced refit fires) and *before* the durable sinks (so label
sinks and checkpoint manifests see post-reaction state).
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.lf.applier import (
    fused_lf_columns,
    label_example_block,
    start_lf_resources,
    stop_lf_resources,
)
from repro.lf.base import AbstractLabelingFunction
from repro.mapreduce.counters import CounterSet, Gauge
from repro.streaming.sources import iter_example_batches
from repro.types import Example, LabelMatrix

__all__ = [
    "MicroBatchPipeline",
    "PipelineStats",
    "StreamReport",
    "COUNTER_CONTRACT",
    "CONDITIONAL_COUNTER_KEYS",
]

#: Sink callback: (batch_index, examples, votes) — runs on the consumer
#: thread, in batch order, while the batch still holds its residency
#: permit (the examples are guaranteed alive for the duration).
BatchSink = Callable[[int, list[Example], np.ndarray], None]

#: Bound on the shutdown join of the ingest thread. On every exit path
#: the stop flag is set and a residency permit released before joining,
#: so the producer unblocks within one queue/permit wait; exceeding
#: this bound means it is wedged and the error must surface.
_JOIN_TIMEOUT_S = 5.0


def _join_producer(producer: threading.Thread) -> None:
    """Join the ingest thread within the shutdown bound or fail loudly.

    Raises:
        RuntimeError: If the producer is still alive after the bound.
    """
    producer.join(timeout=_JOIN_TIMEOUT_S)
    if producer.is_alive():
        raise RuntimeError(
            "microbatch-ingest thread failed to stop within "
            f"{_JOIN_TIMEOUT_S:.0f}s"
        )

#: Counter keys every non-empty run records (see module docstring).
COUNTER_CONTRACT = (
    "ingest/records",
    "ingest/batches",
    "ingest/decode_us",
    "label/records",
    "label/batches",
    "label/votes",
    "label/us",
    "queue/wait_us",
)

#: Keys recorded only when their condition occurs: backpressure stalls,
#: a configured sink stage, multi-consumer dispatch, or an attached
#: drift monitor (the ``drift/*`` family).
CONDITIONAL_COUNTER_KEYS = (
    "ingest/backpressure_waits",
    "ingest/wait_us",
    "ingest/encode_us",
    "sink/us",
    "sink/batches",
    "sink/records",
    "drift/batches",
    "drift/checks",
    "drift/alarms",
    "drift/forced_refits",
    "drift/reference_resets",
)


@dataclass
class _Batch:
    seq: int
    examples: list[Example]
    created: float
    enqueued: float = 0.0


@dataclass
class _Tallies:
    """Mutable per-run aggregates shared by both execution modes."""

    batches_done: int = 0
    examples_done: int = 0
    votes_emitted: int = 0
    latency_sum: float = 0.0
    latency_max: float = 0.0


@dataclass
class PipelineStats:
    """One stage's aggregate throughput numbers."""

    name: str
    batches: int
    records: int
    seconds: float

    @property
    def records_per_second(self) -> float:
        """Stage throughput; a stage that recorded no time reports 0.0
        — never inf, which the report once produced for a sink stage
        that never ran."""
        if self.seconds <= 0:
            return 0.0
        return self.records / self.seconds


@dataclass
class StreamReport:
    """Everything one pipeline run reports."""

    examples: int
    batches: int
    lf_count: int
    wall_seconds: float
    peak_resident_records: int
    max_resident_records: int
    backpressure_waits: int
    votes_emitted: int
    mean_batch_latency_seconds: float
    max_batch_latency_seconds: float
    counters: dict[str, int] = field(default_factory=dict)
    label_matrix: LabelMatrix | None = None
    workers: int = 1
    #: Final telemetry-registry snapshot (``None`` when the run had no
    #: registry attached) — counters, gauges, and stage histograms with
    #: p50/p90/p99, per the key contract in ``repro.obs``.
    telemetry: dict | None = None

    @property
    def examples_per_second(self) -> float:
        """End-to-end sustained throughput over the run's wall time."""
        if self.wall_seconds <= 0:
            return float("inf") if self.examples else 0.0
        return self.examples / self.wall_seconds

    def stage(self, name: str) -> PipelineStats:
        """Summarize one stage ("ingest", "label", "sink") from counters.

        Every stage reads its *own* record/batch counters — the sink
        stage of a sink-less run reports zeros, not the ingest volume
        (and never an infinite rate).
        """
        time_key = {
            "ingest": "ingest/decode_us",
            "label": "label/us",
            "sink": "sink/us",
        }[name]
        return PipelineStats(
            name=name,
            batches=self.counters.get(f"{name}/batches", 0),
            records=self.counters.get(f"{name}/records", 0),
            seconds=self.counters.get(time_key, 0) / 1e6,
        )

    def stages(self) -> dict[str, PipelineStats]:
        """All three stage summaries, keyed ``ingest``/``label``/``sink``."""
        return {name: self.stage(name) for name in ("ingest", "label", "sink")}


class MicroBatchPipeline:
    """Bounded-memory micro-batch labeling over an example stream."""

    def __init__(
        self,
        lfs: Sequence[AbstractLabelingFunction],
        batch_size: int = 1024,
        max_resident_batches: int = 2,
        on_batch: BatchSink | None = None,
        collect_votes: bool = False,
        sinks: Sequence[BatchSink] | None = None,
        first_batch_seq: int = 0,
        workers: int = 1,
        suite_spec=None,
        executor=None,
        drift_monitor=None,
        telemetry=None,
        tracer=None,
    ) -> None:
        """Configure the pipeline.

        Args:
            lfs: The labeling-function suite, applied per micro-batch
                through the same block kernel as the offline applier.
            batch_size: Examples per micro-batch.
            max_resident_batches: Residency-permit pool size — the hard
                bound on decoded micro-batches in flight.
            on_batch: Callback ``(seq, examples, votes)`` run first per
                finalized batch (model updates).
            collect_votes: Keep every batch's votes and return them as
                one :class:`~repro.types.LabelMatrix` on the report.
            sinks: Ordered durable sinks, run after ``on_batch`` while
                the batch holds its residency permit.
            first_batch_seq: Batch numbering offset (resume support).
            workers: ``> 1`` labels batches on a process pool
                (multi-consumer mode).
            suite_spec: Picklable LF-suite factory for worker processes.
            executor: A live, reusable
                :class:`repro.parallel.ParallelLabelExecutor`.
            drift_monitor: Optional
                :class:`repro.core.drift.DriftMonitor` fed every
                finalized batch's votes, in order, between ``on_batch``
                and the sinks; its activity lands in the ``drift/*``
                counters.
            telemetry: Optional :class:`repro.obs.MetricsRegistry`.
                When set, each stage records per-batch latency
                histograms (``stream/decode_us``, ``stream/label_us``,
                ``stream/queue_wait_us``, ``stream/sink_us``,
                ``stream/batch_latency_us``, plus ``stream/drift_score``
                when a monitor is attached), the run's counters and
                residency gauge fold into the registry, and the report
                carries a final snapshot. Telemetry never perturbs
                votes, shards, or posteriors.
            tracer: Optional :class:`repro.obs.Tracer`. When enabled it
                emits per-batch ``stream.ingest`` / ``stream.label`` /
                ``stream.sink`` spans (sampling and ids are
                deterministic — no RNG is touched).

        Raises:
            ValueError: On non-positive sizes, a negative
                ``first_batch_seq``, or ``workers > 1`` without a
                ``suite_spec`` or ``executor``.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_resident_batches < 1:
            raise ValueError(
                f"max_resident_batches must be >= 1, got {max_resident_batches}"
            )
        if first_batch_seq < 0:
            raise ValueError(
                f"first_batch_seq must be >= 0, got {first_batch_seq}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and suite_spec is None and executor is None:
            raise ValueError(
                "workers > 1 needs a suite_spec (LFs are rebuilt inside "
                "each worker process) or a live executor"
            )
        self.lfs = list(lfs)
        self.batch_size = batch_size
        self.max_resident_batches = max_resident_batches
        self.on_batch = on_batch
        self.collect_votes = collect_votes
        #: Ordered sink stage: each callable runs after ``on_batch``, on
        #: the consumer thread, while the batch holds its residency
        #: permit (sink time is therefore part of the backpressure
        #: accounting — a slow sink stalls ingest, it does not grow
        #: memory). Each sink gets its own counters keyed by its ``name``
        #: attribute (class name when absent).
        self.sinks = list(sinks) if sinks else []
        #: Batch numbering offset — a resumed stream continues the
        #: uninterrupted run's sequence so sink shard names line up.
        self.first_batch_seq = first_batch_seq
        #: Multi-consumer mode: >1 labels batches on a process pool.
        self.workers = workers
        self.suite_spec = suite_spec
        self.executor = executor
        #: Drift monitor fed per finalized batch (consumer thread, batch
        #: order) — between ``on_batch`` and the sink stage, so forced
        #: refits mutate model state before anything durable observes it.
        self.drift_monitor = drift_monitor
        #: Optional telemetry registry (stage histograms + folded
        #: counters) and span tracer; both are pure observers.
        self.telemetry = telemetry
        self.tracer = tracer

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, source: Iterable[Example]) -> StreamReport:
        """Drain the source through the pipeline; returns the report.

        The ingest stage runs on its own thread. In single-consumer mode
        labeling and the sinks run on the calling thread; in
        multi-consumer mode labeling runs on the worker pool and the
        calling thread reassembles, so sinks still see batch order.
        """
        if self.workers > 1 or self.executor is not None:
            return self._run_parallel(source)
        return self._run_serial(source)

    # ------------------------------------------------------------------
    # shared pieces
    # ------------------------------------------------------------------
    def _counted(self, examples: Iterable[Example], resident: Gauge):
        for example in examples:
            resident.add(1)
            yield example

    def _active_tracer(self):
        """The configured tracer when tracing is on, else ``None``.

        Hot loops branch on this once per batch, so a disabled tracer
        (the default) costs a single attribute check.
        """
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            return tracer
        return None

    def _acquire_permit(
        self,
        permits: threading.Semaphore,
        counters: CounterSet,
    ) -> None:
        """Admission control, with backpressure stalls counted."""
        if not permits.acquire(blocking=False):
            counters.increment("ingest/backpressure_waits")
            waited = time.perf_counter()
            permits.acquire()
            counters.increment(
                "ingest/wait_us",
                int((time.perf_counter() - waited) * 1e6),
            )

    def _finish_batch(
        self,
        batch: _Batch,
        votes: np.ndarray,
        counters: CounterSet,
        resident: Gauge,
        permits: threading.Semaphore,
        tallies: _Tallies,
        collected_votes: list[np.ndarray],
        collected_ids: list[str],
    ) -> None:
        """Post-labeling stages, identical in both modes: counters,
        ordered sinks, vote collection, latency, permit return."""
        telemetry = self.telemetry
        tracer = self._active_tracer()
        sink_elapsed_us = 0
        counters.increment("label/records", len(batch.examples))
        batch_votes = int(np.count_nonzero(votes))
        tallies.votes_emitted += batch_votes
        counters.increment("label/votes", batch_votes)
        if self.on_batch is not None:
            sink_start = time.perf_counter()
            self.on_batch(batch.seq, batch.examples, votes)
            on_batch_us = int((time.perf_counter() - sink_start) * 1e6)
            sink_elapsed_us += on_batch_us
            counters.increment("sink/us", on_batch_us)
        if self.drift_monitor is not None:
            check = self.drift_monitor.observe_batch(votes)
            counters.increment("drift/batches")
            if check.checked:
                counters.increment("drift/checks")
                if telemetry is not None:
                    telemetry.record("stream/drift_score", check.score)
            if check.alarmed:
                counters.increment("drift/alarms")
            for reaction in check.reactions:
                if reaction == "refit":
                    counters.increment("drift/forced_refits")
                elif reaction == "reset_reference":
                    counters.increment("drift/reference_resets")
        if self.on_batch is not None or self.sinks:
            for sink in self.sinks:
                sink_start = time.perf_counter()
                sink(batch.seq, batch.examples, votes)
                elapsed_us = int((time.perf_counter() - sink_start) * 1e6)
                sink_elapsed_us += elapsed_us
                name = getattr(sink, "name", type(sink).__name__)
                counters.increment("sink/us", elapsed_us)
                counters.increment(f"sink/{name}/us", elapsed_us)
                counters.increment(f"sink/{name}/batches")
                counters.increment(
                    f"sink/{name}/records", len(batch.examples)
                )
            counters.increment("sink/batches")
            counters.increment("sink/records", len(batch.examples))
            if telemetry is not None:
                telemetry.record("stream/sink_us", sink_elapsed_us)
            if tracer is not None:
                tracer.emit(
                    "stream.sink",
                    sink_elapsed_us,
                    seq=batch.seq,
                    records=len(batch.examples),
                )
        if self.collect_votes:
            collected_votes.append(votes)
            collected_ids.extend(e.example_id for e in batch.examples)
        tallies.batches_done += 1
        tallies.examples_done += len(batch.examples)
        latency = time.perf_counter() - batch.created
        tallies.latency_sum += latency
        tallies.latency_max = max(tallies.latency_max, latency)
        if telemetry is not None:
            telemetry.record("stream/batch_latency_us", int(latency * 1e6))
        # The batch's records leave the pipeline here; only now may the
        # ingest stage decode a replacement batch.
        resident.subtract(len(batch.examples))
        permits.release()

    def _build_report(
        self,
        counters: CounterSet,
        resident: Gauge,
        tallies: _Tallies,
        wall: float,
        collected_votes: list[np.ndarray],
        collected_ids: list[str],
    ) -> StreamReport:
        label_matrix = None
        if self.collect_votes:
            stacked = (
                np.vstack(collected_votes)
                if collected_votes
                else np.zeros((0, len(self.lfs)), dtype=np.int8)
            )
            label_matrix = LabelMatrix(
                stacked, collected_ids, [lf.name for lf in self.lfs]
            )
        telemetry_snapshot = None
        if self.telemetry is not None:
            # Fold this run's counters and residency gauge into the
            # registry, then snapshot — the registry outlives the run,
            # so a long-lived service accumulates across streams.
            self.telemetry.counters.merge(counters)
            self.telemetry.gauge("stream/resident_records").merge(resident)
            telemetry_snapshot = self.telemetry.snapshot()
        return StreamReport(
            examples=tallies.examples_done,
            batches=tallies.batches_done,
            lf_count=len(self.lfs),
            wall_seconds=wall,
            peak_resident_records=resident.peak,
            max_resident_records=self.max_resident_batches * self.batch_size,
            backpressure_waits=counters.value("ingest/backpressure_waits"),
            votes_emitted=tallies.votes_emitted,
            mean_batch_latency_seconds=(
                tallies.latency_sum / tallies.batches_done
                if tallies.batches_done
                else 0.0
            ),
            max_batch_latency_seconds=tallies.latency_max,
            counters=counters.as_dict(),
            label_matrix=label_matrix,
            workers=max(
                self.workers,
                self.executor.workers if self.executor is not None else 1,
            ),
            telemetry=telemetry_snapshot,
        )

    # ------------------------------------------------------------------
    # single-consumer mode
    # ------------------------------------------------------------------
    def _run_serial(self, source: Iterable[Example]) -> StreamReport:
        counters = CounterSet()
        resident = Gauge()
        permits = threading.Semaphore(self.max_resident_batches)
        handoff: queue_module.Queue[_Batch | None] = queue_module.Queue()
        stop = threading.Event()
        producer_error: list[BaseException | None] = [None]
        telemetry = self.telemetry
        tracer = self._active_tracer()

        def produce() -> None:
            try:
                batches = iter_example_batches(
                    self._counted(iter(source), resident), self.batch_size
                )
                seq = self.first_batch_seq
                while not stop.is_set():
                    # Admission control: hold a residency permit BEFORE
                    # decoding the next batch's records.
                    self._acquire_permit(permits, counters)
                    if stop.is_set():
                        permits.release()
                        return
                    decode_start = time.perf_counter()
                    batch_examples = next(batches, None)
                    if batch_examples is None:
                        permits.release()
                        return
                    now = time.perf_counter()
                    decode_us = int((now - decode_start) * 1e6)
                    counters.increment("ingest/decode_us", decode_us)
                    counters.increment("ingest/records", len(batch_examples))
                    counters.increment("ingest/batches")
                    if telemetry is not None:
                        telemetry.record("stream/decode_us", decode_us)
                    if tracer is not None:
                        tracer.emit(
                            "stream.ingest",
                            decode_us,
                            seq=seq,
                            records=len(batch_examples),
                        )
                    batch = _Batch(seq, batch_examples, decode_start, now)
                    seq += 1
                    handoff.put(batch)
            except BaseException as error:  # surfaced on the consumer side
                producer_error[0] = error
            finally:
                handoff.put(None)

        fused_cols = fused_lf_columns(self.lfs)
        collected_votes: list[np.ndarray] = []
        collected_ids: list[str] = []
        tallies = _Tallies()

        wall_start = time.perf_counter()
        start_lf_resources(self.lfs)
        producer = threading.Thread(
            target=produce, name="microbatch-ingest", daemon=True
        )
        producer.start()
        try:
            while True:
                batch = handoff.get()
                if batch is None:
                    if producer_error[0] is not None:
                        raise producer_error[0]
                    break
                wait_us = int((time.perf_counter() - batch.enqueued) * 1e6)
                counters.increment("queue/wait_us", wait_us)
                label_start = time.perf_counter()
                votes = label_example_block(self.lfs, batch.examples, fused_cols)
                label_us = int((time.perf_counter() - label_start) * 1e6)
                counters.increment("label/us", label_us)
                counters.increment("label/batches")
                if telemetry is not None:
                    telemetry.record("stream/queue_wait_us", wait_us)
                    telemetry.record("stream/label_us", label_us)
                if tracer is not None:
                    tracer.emit(
                        "stream.label",
                        label_us,
                        seq=batch.seq,
                        records=len(batch.examples),
                    )
                self._finish_batch(
                    batch,
                    votes,
                    counters,
                    resident,
                    permits,
                    tallies,
                    collected_votes,
                    collected_ids,
                )
        except BaseException:
            # Wake the producer if it is blocked on a permit; with the
            # stop flag set it exits at the next check, so the join in
            # the finally block cannot hang.
            stop.set()
            permits.release()
            raise
        finally:
            _join_producer(producer)
            stop_lf_resources(self.lfs)
        wall = time.perf_counter() - wall_start
        return self._build_report(
            counters, resident, tallies, wall, collected_votes, collected_ids
        )

    # ------------------------------------------------------------------
    # multi-consumer mode
    # ------------------------------------------------------------------
    def _run_parallel(self, source: Iterable[Example]) -> StreamReport:
        """One admission-controlled ingest feeding N labeling workers.

        The ingest thread dispatches each decoded batch straight to the
        process pool (record-codec round-trip); the calling thread
        drains completions in whatever order workers finish, buffers
        out-of-order batches, and finalizes strictly by sequence number
        — so the sink stage (and therefore checkpoints and durable
        shards) observes exactly the order a serial run produces.
        """
        from repro.parallel import ParallelLabelExecutor

        owned = self.executor is None
        executor = self.executor
        if owned:
            executor = ParallelLabelExecutor(
                self.suite_spec, self.workers, telemetry=self.telemetry
            )
        # Start the pool before the ingest thread exists: forked workers
        # must never inherit a half-running pipeline.
        executor.start()

        telemetry = self.telemetry
        tracer = self._active_tracer()
        counters = CounterSet()
        resident = Gauge()
        permits = threading.Semaphore(self.max_resident_batches)
        stop = threading.Event()
        finished = threading.Event()
        producer_error: list[BaseException | None] = [None]
        #: seq -> (created, dispatched) timestamps; written by the ingest
        #: thread, consumed once by the finalizer (disjoint keys).
        batch_times: dict[int, tuple[float, float]] = {}

        def produce() -> None:
            try:
                batches = iter_example_batches(
                    self._counted(iter(source), resident), self.batch_size
                )
                seq = self.first_batch_seq
                while not stop.is_set():
                    self._acquire_permit(permits, counters)
                    if stop.is_set():
                        permits.release()
                        return
                    decode_start = time.perf_counter()
                    batch_examples = next(batches, None)
                    if batch_examples is None:
                        permits.release()
                        return
                    now = time.perf_counter()
                    decode_us = int((now - decode_start) * 1e6)
                    counters.increment("ingest/decode_us", decode_us)
                    counters.increment("ingest/records", len(batch_examples))
                    counters.increment("ingest/batches")
                    if telemetry is not None:
                        telemetry.record("stream/decode_us", decode_us)
                    if tracer is not None:
                        tracer.emit(
                            "stream.ingest",
                            decode_us,
                            seq=seq,
                            records=len(batch_examples),
                        )
                    # Timestamps must be visible BEFORE the submit: a
                    # fast worker can complete the block (and the
                    # consumer finalize it) before this thread runs
                    # another line.
                    batch_times[seq] = (decode_start, now)
                    executor.submit(seq, batch_examples)
                    counters.increment(
                        "ingest/encode_us",
                        int((time.perf_counter() - now) * 1e6),
                    )
                    seq += 1
            except BaseException as error:  # surfaced on the consumer side
                producer_error[0] = error
            finally:
                finished.set()

        collected_votes: list[np.ndarray] = []
        collected_ids: list[str] = []
        tallies = _Tallies()
        reorder: dict[int, tuple[list[Example], np.ndarray]] = {}
        next_seq = self.first_batch_seq

        wall_start = time.perf_counter()
        producer = threading.Thread(
            target=produce, name="microbatch-ingest", daemon=True
        )
        producer.start()
        try:
            while True:
                if finished.is_set() and producer_error[0] is not None:
                    # The ingest thread died (source error, failed
                    # dispatch): surface it now rather than waiting on
                    # worker completions that may never drain.
                    break
                if (
                    finished.is_set()
                    and executor.pending() == 0
                    and not reorder
                ):
                    break
                try:
                    seq, examples, votes, label_us = executor.next_completed(
                        timeout=0.05
                    )
                except queue_module.Empty:
                    continue
                if votes.shape[1] != len(self.lfs):
                    raise ValueError(
                        f"worker suite produced {votes.shape[1]} vote "
                        f"columns; this pipeline has {len(self.lfs)} LFs "
                        "— the suite_spec must rebuild the same suite"
                    )
                counters.increment("label/us", label_us)
                counters.increment("label/batches")
                if telemetry is not None:
                    telemetry.record("stream/label_us", label_us)
                if tracer is not None:
                    tracer.emit(
                        "stream.label", label_us, seq=seq, records=len(examples)
                    )
                reorder[seq] = (examples, votes)
                while next_seq in reorder:
                    examples, votes = reorder.pop(next_seq)
                    created, dispatched = batch_times.pop(next_seq)
                    wait_us = int((time.perf_counter() - dispatched) * 1e6)
                    counters.increment("queue/wait_us", wait_us)
                    if telemetry is not None:
                        telemetry.record("stream/queue_wait_us", wait_us)
                    self._finish_batch(
                        _Batch(next_seq, examples, created, dispatched),
                        votes,
                        counters,
                        resident,
                        permits,
                        tallies,
                        collected_votes,
                        collected_ids,
                    )
                    next_seq += 1
        except BaseException:
            stop.set()
            permits.release()
            raise
        finally:
            _join_producer(producer)
            if owned:
                executor.close()
            else:
                # A shared (warm) executor must not carry this run's
                # blocks into the caller's next run — a failed run would
                # otherwise leave in-flight state that collides with or
                # stalls the resume (reset after join: the ingest thread
                # can no longer submit).
                executor.reset()
        if producer_error[0] is not None:
            raise producer_error[0]
        wall = time.perf_counter() - wall_start
        return self._build_report(
            counters, resident, tallies, wall, collected_votes, collected_ids
        )
