"""Evaluation metrics and the paper's relative normalization.

"Due to the sensitive nature of these applications, we report relative
improvement to our baselines" (Section 6): every number in Tables 2-4 is
a precision/recall/F1 *ratio* against the classifier trained directly on
the hand-labeled development set, at a prediction threshold of 0.5.
:func:`relative_metrics` reproduces that normalization; the benchmark
harness prints both absolute and relative values so EXPERIMENTS.md can
record the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BinaryMetrics",
    "binary_metrics",
    "pr_curve",
    "average_precision",
    "relative_metrics",
    "score_histogram",
    "recall_at_precision",
]


@dataclass
class BinaryMetrics:
    """Precision / recall / F1 with the underlying confusion counts."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    def as_dict(self) -> dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


def binary_metrics(
    y_true: np.ndarray,
    scores: np.ndarray,
    threshold: float = 0.5,
) -> BinaryMetrics:
    """Compute P/R/F1 from scores at a probability threshold.

    ``y_true`` uses {-1, +1}; ``scores`` are probabilities of the
    positive class (pass hard predictions as 0/1 scores if needed).
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape:
        raise ValueError(
            f"y_true shape {y_true.shape} does not match scores {scores.shape}"
        )
    if not np.all(np.isin(np.unique(y_true), (-1, 1))):
        raise ValueError("y_true must contain only -1/+1")

    predicted_positive = scores >= threshold
    actual_positive = y_true == 1
    tp = int(np.sum(predicted_positive & actual_positive))
    fp = int(np.sum(predicted_positive & ~actual_positive))
    fn = int(np.sum(~predicted_positive & actual_positive))
    tn = int(np.sum(~predicted_positive & ~actual_positive))

    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return BinaryMetrics(precision, recall, f1, tp, fp, fn, tn)


def pr_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision and recall at every distinct score threshold.

    Returns ``(precision, recall, thresholds)`` sorted by decreasing
    threshold.
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    order = np.argsort(-scores, kind="stable")
    sorted_true = (y_true[order] == 1).astype(np.float64)
    tp_cum = np.cumsum(sorted_true)
    fp_cum = np.cumsum(1.0 - sorted_true)
    total_pos = sorted_true.sum()

    precision = tp_cum / np.maximum(tp_cum + fp_cum, 1e-12)
    recall = tp_cum / max(total_pos, 1e-12)
    return precision, recall, scores[order]


def average_precision(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the PR curve (step interpolation)."""
    precision, recall, _ = pr_curve(y_true, scores)
    recall = np.concatenate([[0.0], recall])
    return float(np.sum(np.diff(recall) * precision))


def recall_at_precision(
    y_true: np.ndarray, scores: np.ndarray, min_precision: float
) -> float:
    """Best recall achievable at or above a precision floor.

    Used for the events comparison (Section 6.4): "identifies an
    additional 58% of events of interest" is a recall gain at matched
    operating quality.
    """
    precision, recall, _ = pr_curve(y_true, scores)
    eligible = precision >= min_precision
    if not eligible.any():
        return 0.0
    return float(recall[eligible].max())


def relative_metrics(
    metrics: BinaryMetrics, baseline: BinaryMetrics
) -> dict[str, float]:
    """The paper's normalization: each score divided by the baseline's.

    Returns percentages, e.g. ``{"precision": 100.6, "recall": 132.1,
    "f1": 117.5, "lift": 17.5}`` where lift is the relative F1 change.
    """
    def ratio(value: float, base: float) -> float:
        if base <= 0:
            return float("nan")
        return 100.0 * value / base

    rel_f1 = ratio(metrics.f1, baseline.f1)
    return {
        "precision": ratio(metrics.precision, baseline.precision),
        "recall": ratio(metrics.recall, baseline.recall),
        "f1": rel_f1,
        "lift": rel_f1 - 100.0 if not np.isnan(rel_f1) else float("nan"),
    }


def score_histogram(
    scores: np.ndarray, bins: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of predicted probabilities over [0, 1] (Figure 6)."""
    scores = np.asarray(scores, dtype=np.float64)
    counts, edges = np.histogram(scores, bins=bins, range=(0.0, 1.0))
    return counts, edges
