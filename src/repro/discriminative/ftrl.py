"""FTRL-Proximal optimizer (McMahan et al., KDD 2013 — the paper's [22]).

Section 6.1 trains the content classifiers "using the FTLR optimization
algorithm, a variant of stochastic gradient descent that tunes
per-coordinate learning rates, with an initial step size of 0.2". This is
the "Follow The (Proximally) Regularized Leader" algorithm from the ad
click prediction paper; we implement the standard per-coordinate form:

    sigma_i  = (sqrt(n_i + g_i^2) - sqrt(n_i)) / alpha
    z_i     += g_i - sigma_i * w_i
    n_i     += g_i^2
    w_i      = 0                                  if |z_i| <= lambda1
             = -(z_i - sign(z_i) lambda1)
               / ((beta + sqrt(n_i)) / alpha + lambda2)   otherwise

The lazy, per-coordinate updates make it efficient on hashed sparse text
features; L1 gives the sparse final weight vectors production serving
likes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FTRLProximal"]


class FTRLProximal:
    """Per-coordinate FTRL-Proximal state for a linear model."""

    def __init__(
        self,
        dimension: int,
        alpha: float = 0.2,
        beta: float = 1.0,
        l1: float = 0.0,
        l2: float = 0.0,
    ) -> None:
        if dimension < 1:
            raise ValueError("dimension must be positive")
        if alpha <= 0:
            raise ValueError("alpha (initial step size) must be positive")
        self.dimension = dimension
        self.alpha = alpha
        self.beta = beta
        self.l1 = l1
        self.l2 = l2
        self.z = np.zeros(dimension)
        self.n = np.zeros(dimension)
        self._w = np.zeros(dimension)
        self._dirty = np.zeros(dimension, dtype=bool)

    # ------------------------------------------------------------------
    # weights
    # ------------------------------------------------------------------
    def weights_for(self, indices: np.ndarray) -> np.ndarray:
        """Current weights at the given coordinates (lazily materialized)."""
        self._materialize(indices)
        return self._w[indices]

    def dense_weights(self) -> np.ndarray:
        """Materialize and return the full weight vector."""
        self._materialize(np.arange(self.dimension))
        return self._w.copy()

    def _materialize(self, indices: np.ndarray) -> None:
        dirty = indices[self._dirty[indices]]
        if len(dirty) == 0:
            return
        z = self.z[dirty]
        n = self.n[dirty]
        w = np.zeros(len(dirty))
        active = np.abs(z) > self.l1
        if active.any():
            za = z[active]
            na = n[active]
            w[active] = -(za - np.sign(za) * self.l1) / (
                (self.beta + np.sqrt(na)) / self.alpha + self.l2
            )
        self._w[dirty] = w
        self._dirty[dirty] = False

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update(self, indices: np.ndarray, gradients: np.ndarray) -> None:
        """Apply per-coordinate gradients at sparse positions."""
        indices = np.asarray(indices)
        gradients = np.asarray(gradients, dtype=np.float64)
        if indices.shape != gradients.shape:
            raise ValueError("indices and gradients must align")
        self._materialize(indices)
        g2 = gradients * gradients
        n = self.n[indices]
        sigma = (np.sqrt(n + g2) - np.sqrt(n)) / self.alpha
        self.z[indices] += gradients - sigma * self._w[indices]
        self.n[indices] = n + g2
        self._dirty[indices] = True

    def nonzero_weights(self) -> int:
        """Count of active (non-zero) weights — L1 sparsity measure."""
        return int(np.count_nonzero(self.dense_weights()))

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Bit-exact snapshot of the optimizer state.

        ``n`` (the accumulated squared gradients) *is* FTRL's
        per-coordinate learning-rate schedule, so restoring it verbatim
        is what keeps step sizes from resetting on a resumed stream.
        """
        from repro.dfs.records import encode_ndarray

        return {
            "dimension": self.dimension,
            "z": encode_ndarray(self.z),
            "n": encode_ndarray(self.n),
            "w": encode_ndarray(self._w),
            "dirty": encode_ndarray(self._dirty),
        }

    def load_state(self, state: dict) -> "FTRLProximal":
        """Restore a :meth:`state_dict` snapshot onto this instance."""
        from repro.dfs.records import decode_ndarray

        if state["dimension"] != self.dimension:
            raise ValueError(
                f"snapshot has dimension {state['dimension']}, "
                f"optimizer has {self.dimension}"
            )
        self.z = decode_ndarray(state["z"])
        self.n = decode_ndarray(state["n"])
        self._w = decode_ndarray(state["w"])
        self._dirty = decode_ndarray(state["dirty"])
        return self
