"""Noise-aware multilayer perceptron (the events-application DNN).

Section 6.4 trains "a deep neural network (DNN) discriminative classifier
over the servable features" of real-time events. TFX supplied the DNN at
Google; here it is a NumPy MLP with ReLU hidden layers, a sigmoid output,
Adam optimization, and the same noise-aware expected log loss as the
logistic model — gradients against a soft target ``p`` are
``(sigma(logit) - p)`` at the output, so weak labels flow through
backprop unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.noise_aware import expected_log_loss

__all__ = ["MLPConfig", "NoiseAwareMLP"]


@dataclass
class MLPConfig:
    """Architecture and training settings."""

    hidden_sizes: tuple[int, ...] = (32, 16)
    n_epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 1e-3
    l2: float = 1e-5
    seed: int = 0


class NoiseAwareMLP:
    """ReLU MLP with sigmoid output and expected-log-loss training."""

    def __init__(self, input_dim: int, config: MLPConfig | None = None) -> None:
        if input_dim < 1:
            raise ValueError("input_dim must be positive")
        self.config = config or MLPConfig()
        self.input_dim = input_dim
        rng = np.random.default_rng(self.config.seed)

        sizes = [input_dim, *self.config.hidden_sizes, 1]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))

        self._adam_m = [np.zeros_like(w) for w in self.weights]
        self._adam_v = [np.zeros_like(w) for w in self.weights]
        self._adam_mb = [np.zeros_like(b) for b in self.biases]
        self._adam_vb = [np.zeros_like(b) for b in self.biases]
        self._adam_t = 0
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------
    def _forward(self, X: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = [X]
        out = X
        for layer, (w, b) in enumerate(zip(self.weights, self.biases)):
            out = out @ w + b
            if layer < len(self.weights) - 1:
                out = np.maximum(out, 0.0)
            activations.append(out)
        logits = activations[-1].ravel()
        return logits, activations

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """``P(y = +1 | x)`` per row."""
        X = self._validate(X)
        logits, _ = self._forward(X)
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -500, 500)))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return np.where(self.predict_proba(X) >= threshold, 1, -1).astype(np.int8)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, soft_targets: np.ndarray) -> "NoiseAwareMLP":
        X = self._validate(X)
        soft = np.asarray(soft_targets, dtype=np.float64)
        if len(soft) != len(X):
            raise ValueError(f"{len(X)} rows but {len(soft)} targets")
        if np.any(soft < 0) or np.any(soft > 1):
            raise ValueError("soft targets must lie in [0, 1]")

        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        m = len(X)
        for epoch in range(cfg.n_epochs):
            order = rng.permutation(m)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, m, cfg.batch_size):
                idx = order[start:start + cfg.batch_size]
                epoch_loss += self._train_batch(X[idx], soft[idx])
                batches += 1
            self.loss_history.append(epoch_loss / max(batches, 1))
        return self

    def _train_batch(self, X: np.ndarray, soft: np.ndarray) -> float:
        cfg = self.config
        logits, activations = self._forward(X)
        probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -500, 500)))
        batch = len(X)

        # Output-layer gradient of expected log loss: sigma(z) - p.
        delta = ((probs - soft) / batch).reshape(-1, 1)
        grads_w = []
        grads_b = []
        for layer in range(len(self.weights) - 1, -1, -1):
            upstream = activations[layer]
            grads_w.append(upstream.T @ delta + cfg.l2 * self.weights[layer])
            grads_b.append(delta.sum(axis=0))
            if layer > 0:
                delta = delta @ self.weights[layer].T
                delta = delta * (activations[layer] > 0)
        grads_w.reverse()
        grads_b.reverse()
        self._adam_update(grads_w, grads_b)
        return expected_log_loss(probs, soft)

    def _adam_update(
        self, grads_w: list[np.ndarray], grads_b: list[np.ndarray]
    ) -> None:
        cfg = self.config
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        self._adam_t += 1
        t = self._adam_t
        for layer in range(len(self.weights)):
            for params, grads, m_acc, v_acc in (
                (self.weights, grads_w, self._adam_m, self._adam_v),
                (self.biases, grads_b, self._adam_mb, self._adam_vb),
            ):
                m_acc[layer] = beta1 * m_acc[layer] + (1 - beta1) * grads[layer]
                v_acc[layer] = beta2 * v_acc[layer] + (1 - beta2) * grads[layer] ** 2
                m_hat = m_acc[layer] / (1 - beta1 ** t)
                v_hat = v_acc[layer] / (1 - beta2 ** t)
                params[layer] = params[layer] - cfg.learning_rate * m_hat / (
                    np.sqrt(v_hat) + eps
                )

    # ------------------------------------------------------------------
    def _validate(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.input_dim:
            raise ValueError(
                f"expected (n, {self.input_dim}) inputs, got {X.shape}"
            )
        return X
