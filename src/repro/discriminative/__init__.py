"""End discriminative models (Sections 5.3 and 6.1).

The probabilistic training labels produced by the generative model train
an end classifier over servable features:

* :class:`NoiseAwareLogisticRegression` — the content-classification
  model: logistic regression trained with the FTRL optimizer
  ("the FTLR optimization algorithm [22], a variant of stochastic
  gradient descent that tunes per-coordinate learning rates, with an
  initial step size of 0.2 ... All experiments use a batch size of 64").
* :class:`NoiseAwareMLP` — the events-application model: a deep neural
  network over real-time event-level features.
* :mod:`repro.discriminative.metrics` — precision/recall/F1 plus the
  relative normalization the paper reports everything in.
"""

from repro.discriminative.ftrl import FTRLProximal
from repro.discriminative.logistic import NoiseAwareLogisticRegression
from repro.discriminative.dnn import NoiseAwareMLP
from repro.discriminative.metrics import (
    BinaryMetrics,
    binary_metrics,
    pr_curve,
    average_precision,
    relative_metrics,
    score_histogram,
)

__all__ = [
    "FTRLProximal",
    "NoiseAwareLogisticRegression",
    "NoiseAwareMLP",
    "BinaryMetrics",
    "binary_metrics",
    "pr_curve",
    "average_precision",
    "relative_metrics",
    "score_histogram",
]
