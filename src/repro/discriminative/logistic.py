"""Noise-aware logistic regression trained with FTRL.

This is the content-classification end model of Section 6.1: "we used the
probabilistic training labels estimated by Snorkel DryBell to train
logistic regression discriminative classifiers with servable features
similar to those used in production", trained with FTRL at initial step
size 0.2 and batch size 64, for a task-dependent number of iterations.

Noise-aware loss: for a soft target ``p`` (the generative model's
posterior), the expected log loss has gradient ``(sigma(w.x) - p) * x``
per example — hard labels are just the degenerate case ``p in {0, 1}``,
so the supervised baselines share this exact training path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.noise_aware import clip_probabilities, expected_log_loss
from repro.discriminative.ftrl import FTRLProximal

__all__ = ["LogisticConfig", "NoiseAwareLogisticRegression"]


@dataclass
class LogisticConfig:
    """Training configuration mirroring the paper's regime."""

    n_iterations: int = 10_000
    batch_size: int = 64
    alpha: float = 0.2        # FTRL initial step size (paper's value)
    beta: float = 1.0
    l1: float = 0.0
    l2: float = 1e-6
    seed: int = 0
    fit_intercept: bool = True


class NoiseAwareLogisticRegression:
    """Sparse logistic regression with expected-loss training."""

    def __init__(self, dimension: int, config: LogisticConfig | None = None) -> None:
        self.config = config or LogisticConfig()
        self.dimension = dimension
        self._ftrl = FTRLProximal(
            dimension + (1 if self.config.fit_intercept else 0),
            alpha=self.config.alpha,
            beta=self.config.beta,
            l1=self.config.l1,
            l2=self.config.l2,
        )
        self._intercept_index = dimension if self.config.fit_intercept else None
        self.iterations_run = 0

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(
        self,
        X: sparse.csr_matrix,
        soft_targets: np.ndarray,
        sample_weights: np.ndarray | None = None,
    ) -> "NoiseAwareLogisticRegression":
        """Run ``n_iterations`` minibatch FTRL steps.

        ``soft_targets`` are probabilities in [0, 1]; hard ±1 labels
        should be converted with
        :func:`repro.core.noise_aware.labels_to_soft_targets` first.
        """
        X = sparse.csr_matrix(X)
        soft = np.asarray(soft_targets, dtype=np.float64)
        if X.shape[0] != soft.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but {soft.shape[0]} targets"
            )
        if np.any(soft < 0) or np.any(soft > 1):
            raise ValueError("soft targets must lie in [0, 1]")
        if sample_weights is None:
            weights = np.ones(len(soft))
        else:
            weights = np.asarray(sample_weights, dtype=np.float64)

        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        m = X.shape[0]
        for _ in range(cfg.n_iterations):
            batch = rng.integers(0, m, size=min(cfg.batch_size, m))
            for i in batch:
                self._update_one(X, int(i), soft[i], weights[i])
            self.iterations_run += 1
        return self

    def partial_fit(
        self,
        X: sparse.csr_matrix,
        soft_targets: np.ndarray,
        epochs: int = 1,
    ) -> "NoiseAwareLogisticRegression":
        """One (or a few) FTRL passes over a micro-batch, in row order.

        The streaming path: probabilistic labels arrive one micro-batch
        at a time and FTRL is already an online, per-coordinate
        algorithm, so the end model trains as the stream flows — no
        buffered dataset, no iteration budget. State accumulates across
        calls exactly as it does across :meth:`fit` iterations.
        """
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        X = sparse.csr_matrix(X)
        soft = np.asarray(soft_targets, dtype=np.float64)
        if X.shape[0] != soft.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but {soft.shape[0]} targets"
            )
        if soft.size and (np.any(soft < 0) or np.any(soft > 1)):
            raise ValueError("soft targets must lie in [0, 1]")
        for _ in range(epochs):
            for i in range(X.shape[0]):
                self._update_one(X, i, soft[i], 1.0)
        self.iterations_run += epochs
        return self

    def _update_one(
        self, X: sparse.csr_matrix, i: int, target: float, weight: float
    ) -> None:
        start, end = X.indptr[i], X.indptr[i + 1]
        indices = X.indices[start:end]
        values = X.data[start:end]
        if self._intercept_index is not None:
            indices = np.concatenate([indices, [self._intercept_index]])
            values = np.concatenate([values, [1.0]])
        w = self._ftrl.weights_for(indices)
        margin = float(w @ values)
        predicted = 1.0 / (1.0 + np.exp(-np.clip(margin, -500, 500)))
        gradient = weight * (predicted - target) * values
        self._ftrl.update(indices, gradient)

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def decision_function(self, X: sparse.csr_matrix) -> np.ndarray:
        X = sparse.csr_matrix(X)
        w = self._ftrl.dense_weights()
        margins = X @ w[: self.dimension]
        if self._intercept_index is not None:
            margins = margins + w[self._intercept_index]
        return np.asarray(margins).ravel()

    def predict_proba(self, X: sparse.csr_matrix) -> np.ndarray:
        """``P(y = +1 | x)`` per row."""
        margins = self.decision_function(X)
        return 1.0 / (1.0 + np.exp(-np.clip(margins, -500, 500)))

    def predict(self, X: sparse.csr_matrix, threshold: float = 0.5) -> np.ndarray:
        """Hard labels in {-1, +1} (paper's prediction threshold is 0.5)."""
        return np.where(self.predict_proba(X) >= threshold, 1, -1).astype(np.int8)

    def loss(self, X: sparse.csr_matrix, soft_targets: np.ndarray) -> float:
        """Noise-aware log loss on a dataset."""
        return expected_log_loss(
            clip_probabilities(self.predict_proba(X)), soft_targets
        )

    def nonzero_weights(self) -> int:
        return self._ftrl.nonzero_weights()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the end model: FTRL state plus ``iterations_run``.

        The iteration counter rides along so schedules and budgets keyed
        on it (and any diagnostics) continue rather than reset when a
        checkpointed stream resumes.
        """
        return {
            "dimension": self.dimension,
            "fit_intercept": self.config.fit_intercept,
            "iterations_run": self.iterations_run,
            "ftrl": self._ftrl.state_dict(),
        }

    def load_state(self, state: dict) -> "NoiseAwareLogisticRegression":
        """Restore a :meth:`state_dict` snapshot onto this instance."""
        if state["dimension"] != self.dimension:
            raise ValueError(
                f"snapshot has dimension {state['dimension']}, "
                f"model has {self.dimension}"
            )
        if bool(state["fit_intercept"]) != self.config.fit_intercept:
            raise ValueError(
                "snapshot and model disagree on fit_intercept"
            )
        self.iterations_run = int(state["iterations_run"])
        self._ftrl.load_state(state["ftrl"])
        return self
