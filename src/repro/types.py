"""Core value types shared across the DryBell reproduction.

The paper's pipeline moves three kinds of data between components:

* unlabeled **examples** with heterogeneous fields (content, URLs, event
  signals, ...) split into *servable* and *non-servable* feature views
  (Section 4 of the paper),
* **labeling-function votes** in ``{-1, 0, +1}`` (0 = abstain) for binary
  tasks, or ``{0, 1..k}`` for categorical tasks (Section 2),
* the **label matrix** ``Lambda`` with one row per example and one column
  per labeling function (Section 2).

These types are deliberately small and dependency-free: labeling functions
are independent executables in the paper's architecture, so everything that
crosses a process boundary must serialize to plain dictionaries (see
:mod:`repro.dfs.records`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

__all__ = [
    "ABSTAIN",
    "NEGATIVE",
    "POSITIVE",
    "LFVote",
    "Example",
    "LabelMatrix",
    "coverage",
    "polarity",
]

#: Vote constants mirroring the C++ ``LFVote`` enum in Section 5.1.
ABSTAIN = 0
NEGATIVE = -1
POSITIVE = 1


class LFVote(enum.IntEnum):
    """Enumerated labeling-function vote for the binary setting.

    Mirrors the ``LFVote`` values returned by the paper's C++ template
    functions (``return NEGATIVE; ... return ABSTAIN;``).
    """

    NEGATIVE = -1
    ABSTAIN = 0
    POSITIVE = 1


@dataclass
class Example:
    """A single data point flowing through the DryBell pipeline.

    Parameters
    ----------
    example_id:
        Unique identifier; also the shard/sort key in the distributed
        filesystem.
    fields:
        Arbitrary raw fields (``title``, ``body``, ``url``, event signal
        names, ...). Labeling functions read these; the discriminative
        model never sees non-servable fields at serving time.
    servable:
        The servable feature view (cheap, real-time signals available in
        production; Section 4).
    non_servable:
        The non-servable feature view (aggregate statistics, expensive
        model outputs, crawler content; development-time only).
    label:
        Ground-truth label when known (dev/test splits); ``None`` for the
        unlabeled pool.
    """

    example_id: str
    fields: dict[str, Any] = field(default_factory=dict)
    servable: dict[str, Any] = field(default_factory=dict)
    non_servable: dict[str, Any] = field(default_factory=dict)
    label: int | None = None

    def to_record(self) -> dict[str, Any]:
        """Serialize to a plain dictionary for record-file storage."""
        return {
            "example_id": self.example_id,
            "fields": self.fields,
            "servable": self.servable,
            "non_servable": self.non_servable,
            "label": self.label,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "Example":
        """Inverse of :meth:`to_record`."""
        return cls(
            example_id=record["example_id"],
            fields=dict(record.get("fields") or {}),
            servable=dict(record.get("servable") or {}),
            non_servable=dict(record.get("non_servable") or {}),
            label=record.get("label"),
        )


class LabelMatrix:
    """The matrix ``Lambda`` of labeling-function outputs (Section 2).

    ``Lambda[i, j] = lambda_j(X_i)`` with 0 meaning *abstain*. Rows are
    keyed by example id so that votes emitted by independently executed
    labeling-function binaries (each writing its own output files to the
    distributed filesystem) can be joined deterministically.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        example_ids: list[str],
        lf_names: list[str],
    ) -> None:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError(f"label matrix must be 2-D, got shape {matrix.shape}")
        if matrix.shape[0] != len(example_ids):
            raise ValueError(
                f"{matrix.shape[0]} rows but {len(example_ids)} example ids"
            )
        if matrix.shape[1] != len(lf_names):
            raise ValueError(
                f"{matrix.shape[1]} columns but {len(lf_names)} labeling functions"
            )
        self.matrix = matrix.astype(np.int8, copy=False)
        self.example_ids = list(example_ids)
        self.lf_names = list(lf_names)
        self._id_index = {eid: i for i, eid in enumerate(self.example_ids)}
        if len(self._id_index) != len(self.example_ids):
            raise ValueError("duplicate example ids in label matrix")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_votes(
        cls,
        votes_by_lf: Mapping[str, Mapping[str, int]],
        example_ids: Iterable[str],
    ) -> "LabelMatrix":
        """Join per-LF vote dictionaries into a matrix.

        ``votes_by_lf`` maps LF name -> {example_id -> vote}; missing
        entries are treated as abstains, which matches the paper's
        behaviour for labeling functions that skip examples entirely.
        """
        ids = list(example_ids)
        names = sorted(votes_by_lf)
        matrix = np.zeros((len(ids), len(names)), dtype=np.int8)
        id_index = {eid: i for i, eid in enumerate(ids)}
        for j, name in enumerate(names):
            for eid, vote in votes_by_lf[name].items():
                row = id_index.get(eid)
                if row is not None:
                    matrix[row, j] = vote
        return cls(matrix, ids, names)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    @property
    def n_examples(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_lfs(self) -> int:
        return self.matrix.shape[1]

    def column(self, lf_name: str) -> np.ndarray:
        """Return the vote vector of one labeling function."""
        return self.matrix[:, self.lf_names.index(lf_name)]

    def row_for(self, example_id: str) -> np.ndarray:
        """Return the vote vector for one example."""
        return self.matrix[self._id_index[example_id]]

    def select_lfs(self, lf_names: Iterable[str]) -> "LabelMatrix":
        """Project onto a subset of labeling functions (used by the
        servability ablation in Section 6.3)."""
        names = list(lf_names)
        cols = [self.lf_names.index(name) for name in names]
        return LabelMatrix(self.matrix[:, cols], self.example_ids, names)

    def select_examples(self, example_ids: Iterable[str]) -> "LabelMatrix":
        """Project onto a subset of examples."""
        ids = list(example_ids)
        rows = [self._id_index[eid] for eid in ids]
        return LabelMatrix(self.matrix[rows], ids, self.lf_names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LabelMatrix(n_examples={self.n_examples}, n_lfs={self.n_lfs}, "
            f"coverage={coverage(self.matrix):.3f})"
        )


def coverage(matrix: np.ndarray) -> float:
    """Fraction of examples with at least one non-abstain vote."""
    matrix = np.asarray(matrix)
    if matrix.size == 0:
        return 0.0
    return float(np.mean(np.any(matrix != ABSTAIN, axis=1)))


def polarity(column: np.ndarray) -> tuple[int, ...]:
    """The set of distinct non-abstain labels emitted by one LF."""
    values = np.unique(np.asarray(column))
    return tuple(int(v) for v in values if v != ABSTAIN)
