"""End-to-end DryBell orchestration (Figure 4).

The four numbered stages of the paper's system figure:

1. labeling functions are defined from the template library,
2. engineers' per-example vote functions run
3. as independent binaries over the distributed compute environment,
4. and the generative model turns the joined vote matrix into
   probabilistic training labels consumed by production ML systems.

:class:`DryBellPipeline` wires those stages to a dataset: it stages the
unlabeled pool to the simulated DFS, executes every LF as its own
MapReduce job (or through the in-memory fast path), fits the
sampling-free generative model, and hands soft labels to the TFX-style
training pipeline which stages the deployment model in a registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.label_model import LabelModelConfig, SamplingFreeLabelModel
from repro.dfs.filesystem import DistributedFileSystem
from repro.lf.applier import ApplyReport, LFApplier, apply_lfs_in_memory, stage_examples
from repro.lf.base import AbstractLabelingFunction
from repro.serving.model_registry import ModelRegistry
from repro.serving.tfx import PipelineRun, TFXPipeline, TrainerSpec
from repro.types import Example, LabelMatrix

__all__ = ["DryBellArtifacts", "DryBellPipeline"]


@dataclass
class DryBellArtifacts:
    """Everything one end-to-end run produces."""

    label_matrix: LabelMatrix
    label_model: SamplingFreeLabelModel
    probabilistic_labels: np.ndarray
    pipeline_run: PipelineRun | None
    apply_report: ApplyReport | None
    wall_seconds: float

    @property
    def model(self) -> Any:
        if self.pipeline_run is None:
            raise RuntimeError("this run trained no discriminative model")
        return self.pipeline_run.model_version.model


class DryBellPipeline:
    """Orchestrates LF execution -> generative model -> TFX training."""

    def __init__(
        self,
        lfs: Sequence[AbstractLabelingFunction],
        featurizer: Any = None,
        trainer: TrainerSpec | None = None,
        label_model_config: LabelModelConfig | None = None,
        registry: ModelRegistry | None = None,
        use_mapreduce: bool = False,
        dfs: DistributedFileSystem | None = None,
        num_shards: int = 8,
        parallelism: int = 2,
        model_name: str = "drybell-model",
    ) -> None:
        if not lfs:
            raise ValueError("pipeline needs at least one labeling function")
        self.lfs = list(lfs)
        self.featurizer = featurizer
        self.trainer = trainer
        self.label_model_config = label_model_config or LabelModelConfig()
        self.registry = registry or ModelRegistry()
        self.use_mapreduce = use_mapreduce
        self.dfs = dfs or DistributedFileSystem()
        self.num_shards = num_shards
        self.parallelism = parallelism
        self.model_name = model_name

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def label(self, examples: Sequence[Example]) -> tuple[LabelMatrix, ApplyReport | None]:
        """Stages 2-3: execute every LF, join votes into the matrix."""
        if not self.use_mapreduce:
            return apply_lfs_in_memory(self.lfs, examples), None
        run_id = f"run-{int(time.time() * 1000)}"
        paths = stage_examples(
            self.dfs, list(examples), f"/data/{run_id}/examples", self.num_shards
        )
        applier = LFApplier(
            self.dfs,
            paths,
            run_root=f"/runs/{run_id}",
            parallelism=self.parallelism,
        )
        report = applier.apply(self.lfs)
        return report.label_matrix, report

    def fit_label_model(self, matrix: LabelMatrix) -> SamplingFreeLabelModel:
        """Stage 4: fit the sampling-free generative model."""
        model = SamplingFreeLabelModel(self.label_model_config)
        model.fit(matrix.matrix)
        return model

    def run(
        self,
        train_examples: Sequence[Example],
        eval_examples: Sequence[Example] | None = None,
        eval_labels: np.ndarray | None = None,
    ) -> DryBellArtifacts:
        """Full pipeline: label -> generative model -> TFX training."""
        start = time.perf_counter()
        matrix, report = self.label(train_examples)
        label_model = self.fit_label_model(matrix)
        soft_labels = label_model.predict_proba(matrix.matrix)

        pipeline_run = None
        if self.featurizer is not None:
            tfx = TFXPipeline(
                name=self.model_name,
                featurizer=self.featurizer,
                registry=self.registry,
                trainer=self.trainer,
            )
            # Align examples to the label matrix's row order: the
            # MapReduce path returns rows in shard-interleaved order,
            # not input order, and soft_labels follows the matrix.
            by_id = {e.example_id: e for e in train_examples}
            ordered_examples = [by_id[eid] for eid in matrix.example_ids]
            # All-abstain examples carry zero supervision signal
            # (posterior = prior); drop them from end-model training,
            # the standard Snorkel practice.
            covered = np.abs(matrix.matrix).sum(axis=1) > 0
            covered_examples = [
                example
                for example, keep in zip(ordered_examples, covered)
                if keep
            ]
            pipeline_run = tfx.run(
                covered_examples,
                soft_labels[covered],
                eval_examples=list(eval_examples) if eval_examples else None,
                eval_labels=eval_labels,
            )

        return DryBellArtifacts(
            label_matrix=matrix,
            label_model=label_model,
            probabilistic_labels=soft_labels,
            pipeline_run=pipeline_run,
            apply_report=report,
            wall_seconds=time.perf_counter() - start,
        )
