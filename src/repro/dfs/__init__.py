"""Simulated distributed filesystem substrate.

The paper's labeling functions are independent binaries that exchange data
through Google's distributed filesystem (Section 5.4): each LF reads the
unlabeled-example files and writes sharded vote files, which the generative
model later joins. This package reproduces the pieces the template library
codes against — sharded record files, namespaces, atomic renames, and
immutable-once-finalized semantics — as an in-process filesystem that can
optionally persist to local disk.
"""

from repro.dfs.filesystem import DistributedFileSystem, DFSError, FileNotFound
from repro.dfs.records import RecordReader, RecordWriter, read_records, write_records

__all__ = [
    "DistributedFileSystem",
    "DFSError",
    "FileNotFound",
    "RecordReader",
    "RecordWriter",
    "read_records",
    "write_records",
]
