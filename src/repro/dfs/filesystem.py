"""An in-process stand-in for Google's distributed filesystem.

The LF template library (Section 5.1) "handles all input and output to
Google's distributed filesystem" so that engineers only write per-example
logic. To reproduce that design we need a filesystem object with the
semantics that MapReduce-era Google infrastructure provides and the
templates rely on:

* hierarchical paths under a namespace (``/ns/app/run-0/part-00003``),
* *sharded file sets* addressed by a pattern (``...@16`` meaning 16 parts),
* write-once semantics: writers stage data under a temporary name and
  atomically ``finalize`` (rename) it, so readers never observe partial
  files — this is what makes independently-scheduled LF binaries safe,
* listing/globbing so the vote-joining step can discover LF outputs.

Data lives in memory by default; a ``root`` directory can be supplied to
spill bytes to local disk (used by the scale benchmarks so memory stays
bounded).
"""

from __future__ import annotations

import fnmatch
import os
import re
import threading

__all__ = [
    "DistributedFileSystem",
    "DFSReadHandle",
    "DFSError",
    "FileNotFound",
    "shard_name",
    "shard_pattern",
]


class DFSError(Exception):
    """Base error for distributed-filesystem operations."""


class FileNotFound(DFSError):
    """Raised when reading a path that does not exist."""


_SHARD_RE = re.compile(r"^(?P<base>.*)@(?P<count>\d+)$")


def shard_name(base: str, index: int, count: int) -> str:
    """Canonical shard file name, e.g. ``part-00003-of-00016``.

    >>> shard_name("/app/votes", 3, 16)
    '/app/votes-00003-of-00016'
    """
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} out of range for {count} shards")
    return f"{base}-{index:05d}-of-{count:05d}"


def shard_pattern(base: str, count: int) -> list[str]:
    """All shard names for a sharded file set."""
    return [shard_name(base, i, count) for i in range(count)]


def parse_sharded(path: str) -> tuple[str, int] | None:
    """Parse ``base@N`` shard-set notation; return ``None`` for plain paths.

    >>> parse_sharded("/app/votes@4")
    ('/app/votes', 4)
    >>> parse_sharded("/app/votes") is None
    True
    """
    match = _SHARD_RE.match(path)
    if match is None:
        return None
    return match.group("base"), int(match.group("count"))


def _normalize(path: str) -> str:
    if not path.startswith("/"):
        raise DFSError(f"DFS paths must be absolute, got {path!r}")
    # Collapse duplicate slashes; forbid relative components.
    parts = [p for p in path.split("/") if p]
    if any(p in (".", "..") for p in parts):
        raise DFSError(f"relative components not allowed in {path!r}")
    return "/" + "/".join(parts)


class DistributedFileSystem:
    """Thread-safe simulated distributed filesystem.

    All mutating operations take an internal lock so that simulated
    MapReduce workers running in threads can write shards concurrently,
    mirroring the real system's independent writers.
    """

    def __init__(self, root: str | None = None) -> None:
        self._lock = threading.Lock()
        self._files: dict[str, bytes] = {}
        self._staged: dict[str, bytearray] = {}
        self._root = root
        if root is not None:
            os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    # write path: stage -> append -> finalize
    # ------------------------------------------------------------------
    def create(self, path: str) -> None:
        """Open a staged (temporary) file for writing."""
        path = _normalize(path)
        with self._lock:
            if path in self._files:
                raise DFSError(f"{path} already finalized; DFS files are immutable")
            if path in self._staged:
                raise DFSError(f"{path} already staged by another writer")
            self._staged[path] = bytearray()

    def append(self, path: str, data: bytes) -> None:
        """Append bytes to a staged file."""
        path = _normalize(path)
        with self._lock:
            try:
                self._staged[path].extend(data)
            except KeyError:
                raise DFSError(f"{path} is not staged for writing") from None

    def finalize(self, path: str) -> None:
        """Atomically publish a staged file (rename temp -> final)."""
        path = _normalize(path)
        with self._lock:
            try:
                data = bytes(self._staged.pop(path))
            except KeyError:
                raise DFSError(f"{path} is not staged for writing") from None
            self._files[path] = data
            if self._root is not None:
                self._spill(path, data)

    def finalize_as(self, staged_path: str, final_path: str) -> None:
        """Atomically publish a staged file under a *different* name.

        The write-then-rename idiom checkpoint writers depend on: data is
        staged under a scratch name (``.staged-ckpt-00004``) and renamed
        to its canonical name (``ckpt-00004``) in one step, so a reader
        either sees the complete checkpoint or none at all — never a
        half-written manifest. A crash before the rename leaves only the
        invisible staged file, which the next writer can ``abandon``.
        """
        staged_path = _normalize(staged_path)
        final_path = _normalize(final_path)
        with self._lock:
            if final_path in self._files:
                raise DFSError(
                    f"{final_path} already finalized; DFS files are immutable"
                )
            try:
                data = bytes(self._staged.pop(staged_path))
            except KeyError:
                raise DFSError(
                    f"{staged_path} is not staged for writing"
                ) from None
            self._files[final_path] = data
            if self._root is not None:
                self._spill(final_path, data)

    def abandon(self, path: str) -> None:
        """Discard a staged file (a crashed writer's temp output)."""
        path = _normalize(path)
        with self._lock:
            self._staged.pop(path, None)

    def write_file(self, path: str, data: bytes) -> None:
        """Convenience: stage, write, and finalize in one call."""
        self.create(path)
        self.append(path, data)
        self.finalize(path)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read_file(self, path: str) -> bytes:
        """Read a finalized file. Staged files are invisible to readers."""
        path = _normalize(path)
        with self._lock:
            try:
                return self._files[path]
            except KeyError:
                raise FileNotFound(path) from None

    def read_at(self, path: str, offset: int, size: int) -> bytes:
        """Read up to ``size`` bytes of a finalized file from ``offset``.

        This is the positional-read primitive real distributed
        filesystems expose (``pread``): readers pull one chunk at a time
        instead of materializing whole shards, which is what keeps
        streaming consumers at bounded memory. Short reads at EOF return
        the available suffix; reads past EOF return ``b""``.
        """
        if offset < 0 or size < 0:
            raise DFSError(
                f"read_at needs offset/size >= 0, got ({offset}, {size})"
            )
        path = _normalize(path)
        with self._lock:
            try:
                data = self._files[path]
            except KeyError:
                raise FileNotFound(path) from None
            return data[offset:offset + size]

    def open_read(self, path: str) -> "DFSReadHandle":
        """Open a sequential read handle on a finalized file."""
        return DFSReadHandle(self, path, self.size(path))

    def exists(self, path: str) -> bool:
        path = _normalize(path)
        with self._lock:
            return path in self._files

    def size(self, path: str) -> int:
        path = _normalize(path)
        with self._lock:
            try:
                return len(self._files[path])
            except KeyError:
                raise FileNotFound(path) from None

    def delete(self, path: str) -> None:
        path = _normalize(path)
        with self._lock:
            if self._files.pop(path, None) is None:
                raise FileNotFound(path)
            if self._root is not None:
                spill = self._spill_path(path)
                if os.path.exists(spill):
                    os.remove(spill)

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------
    def list(self, prefix: str) -> list[str]:
        """List finalized files under a path prefix, sorted."""
        prefix = _normalize(prefix)
        with self._lock:
            return sorted(
                p for p in self._files
                if p == prefix or p.startswith(prefix.rstrip("/") + "/")
                or p.startswith(prefix)
            )

    def glob(self, pattern: str) -> list[str]:
        """Glob finalized files, supporting ``*``/``?`` and ``base@N``."""
        sharded = parse_sharded(pattern)
        if sharded is not None:
            base, count = sharded
            names = shard_pattern(_normalize(base), count)
            missing = [n for n in names if not self.exists(n)]
            if missing:
                raise FileNotFound(
                    f"shard set {pattern} incomplete; missing {missing[:3]}"
                )
            return names
        pattern = _normalize(pattern)
        with self._lock:
            return sorted(p for p in self._files if fnmatch.fnmatch(p, pattern))

    def delete_recursive(self, prefix: str) -> int:
        """Delete every finalized file under a prefix; returns count."""
        paths = self.list(prefix)
        for path in paths:
            self.delete(path)
        return len(paths)

    # ------------------------------------------------------------------
    # disk spill (optional persistence)
    # ------------------------------------------------------------------
    def _spill_path(self, path: str) -> str:
        assert self._root is not None
        return os.path.join(self._root, path.lstrip("/").replace("/", "__"))

    def _spill(self, path: str, data: bytes) -> None:
        spill = self._spill_path(path)
        with open(spill, "wb") as handle:
            handle.write(data)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._files.values())

    def file_count(self) -> int:
        with self._lock:
            return len(self._files)

    def staged_paths(self) -> list[str]:
        with self._lock:
            return sorted(self._staged)

    def copy_tree(self, src_prefix: str, dst_prefix: str) -> list[str]:
        """Copy every file under ``src_prefix`` to ``dst_prefix``."""
        src_prefix = _normalize(src_prefix)
        dst_prefix = _normalize(dst_prefix)
        copied = []
        for path in self.list(src_prefix):
            rel = path[len(src_prefix):]
            dst = dst_prefix + rel
            self.write_file(dst, self.read_file(path))
            copied.append(dst)
        return copied


class DFSReadHandle:
    """Sequential read cursor over one finalized DFS file.

    Every ``read`` goes through :meth:`DistributedFileSystem.read_at`, so
    a consumer holding a handle keeps only its current chunk in its own
    memory — the streaming record reader and the micro-batch ingestion
    path are built on this. DFS files are immutable once finalized, so a
    handle never observes concurrent mutation.
    """

    def __init__(
        self, dfs: "DistributedFileSystem", path: str, size: int
    ) -> None:
        self._dfs = dfs
        self.path = path
        self.size = size
        self._offset = 0
        self._closed = False

    def read(self, size: int) -> bytes:
        """Read up to ``size`` bytes; ``b""`` at EOF."""
        if self._closed:
            raise DFSError(f"read on closed handle for {self.path}")
        chunk = self._dfs.read_at(self.path, self._offset, size)
        self._offset += len(chunk)
        return chunk

    def tell(self) -> int:
        return self._offset

    def seek(self, offset: int) -> None:
        """Reposition the cursor (absolute). Used by resume cursors to
        skip straight past already-consumed records; DFS files are
        immutable, so a stored offset stays valid forever."""
        if offset < 0:
            raise DFSError(f"seek offset must be >= 0, got {offset}")
        if self._closed:
            raise DFSError(f"seek on closed handle for {self.path}")
        self._offset = offset

    @property
    def remaining(self) -> int:
        return max(0, self.size - self._offset)

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "DFSReadHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
