"""Record-file serialization for the distributed filesystem.

Google's MapReduce pipelines exchange data as record files (SSTable /
RecordIO). The LF template library reads unlabeled-example records and
writes vote records; the generative model reads the votes back. We
reproduce a minimal length-prefixed record format with CRC integrity
checks so corrupt shards are detected rather than silently mis-parsed
(exercised by the failure-injection tests).

Format per record::

    [4-byte big-endian length][4-byte big-endian CRC32][payload]

Payloads are JSON (UTF-8). JSON keeps records language-neutral, matching
the paper's loosely-coupled architecture in which labeling functions are
independent executables.
"""

from __future__ import annotations

import base64
import json
import struct
import zlib
from typing import Any, Iterable, Iterator

import numpy as np

from repro.dfs.filesystem import DistributedFileSystem

__all__ = [
    "RecordWriter",
    "RecordReader",
    "RecordCorruption",
    "write_records",
    "read_records",
    "stream_records",
    "stream_records_with_offsets",
    "iter_record_blobs",
    "iter_record_blocks",
    "encode_ndarray",
    "decode_ndarray",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_READ_CHUNK",
]

#: Default chunk size for block iteration; large enough to amortize
#: per-call Python overhead, small enough to keep a block resident in
#: cache alongside its decoded payloads.
DEFAULT_BLOCK_SIZE = 1024

#: Bytes pulled from the filesystem per positional read while streaming.
#: Peak reader memory is one chunk plus one in-flight record, regardless
#: of shard size.
DEFAULT_READ_CHUNK = 256 * 1024

_HEADER = struct.Struct(">II")


class RecordCorruption(Exception):
    """Raised when a record fails its CRC or framing check."""


def encode_record(payload: dict[str, Any]) -> bytes:
    """Frame one JSON payload with length and CRC."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def encode_ndarray(array: np.ndarray) -> dict[str, Any]:
    """JSON-safe, *bit-exact* encoding of a NumPy array.

    Checkpoint manifests must restore model state to the byte — a
    float64 that drifts in the last ulp breaks the resumed-run ==
    uninterrupted-run guarantee — so arrays travel as base64 of their
    raw buffer plus dtype/shape, never as decimal strings.
    """
    array = np.ascontiguousarray(array)
    return {
        "__ndarray__": base64.b64encode(array.tobytes()).decode("ascii"),
        "dtype": str(array.dtype),
        "shape": list(array.shape),
    }


def decode_ndarray(payload: dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_ndarray`; returns a writable array."""
    raw = base64.b64decode(payload["__ndarray__"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(payload["shape"]).copy()


def decode_records(blob: bytes) -> Iterator[dict[str, Any]]:
    """Yield payloads from a framed byte blob, verifying CRCs."""
    offset = 0
    total = len(blob)
    while offset < total:
        if offset + _HEADER.size > total:
            raise RecordCorruption(
                f"truncated header at offset {offset} of {total}"
            )
        length, crc = _HEADER.unpack_from(blob, offset)
        offset += _HEADER.size
        if offset + length > total:
            raise RecordCorruption(
                f"record of {length} bytes overruns file (offset {offset})"
            )
        body = blob[offset:offset + length]
        offset += length
        if zlib.crc32(body) != crc:
            raise RecordCorruption(f"CRC mismatch at offset {offset - length}")
        yield json.loads(body.decode("utf-8"))


class RecordWriter:
    """Streams records into one staged DFS file.

    Usable as a context manager; the file only becomes visible to readers
    when the writer exits cleanly (finalize-on-close), reproducing the
    write-once publish semantics LF binaries depend on. When
    ``final_path`` is given, records are staged under ``path`` and
    atomically renamed to ``final_path`` on close (write-then-rename) —
    the checkpoint-manifest idiom where the canonical name must never
    name a partial file.
    """

    def __init__(
        self,
        dfs: DistributedFileSystem,
        path: str,
        final_path: str | None = None,
    ) -> None:
        self._dfs = dfs
        self._path = path
        self._final_path = final_path
        self._count = 0
        self._open = True
        dfs.create(path)

    @property
    def final_path(self) -> str:
        """Where the records will be visible after a clean close."""
        return self._final_path or self._path

    def write(self, payload: dict[str, Any]) -> None:
        if not self._open:
            raise ValueError("writer already closed")
        self._dfs.append(self._path, encode_record(payload))
        self._count += 1

    def close(self) -> None:
        if self._open:
            if self._final_path is not None:
                self._dfs.finalize_as(self._path, self._final_path)
            else:
                self._dfs.finalize(self._path)
            self._open = False

    def abandon(self) -> None:
        """Discard the staged file (simulates a crashed writer)."""
        if self._open:
            self._dfs.abandon(self._path)
            self._open = False

    @property
    def records_written(self) -> int:
        return self._count

    def __enter__(self) -> "RecordWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abandon()


def stream_records_with_offsets(
    handle, chunk_size: int = DEFAULT_READ_CHUNK
) -> Iterator[tuple[dict[str, Any], int]]:
    """Yield ``(payload, end_offset)`` from a sequential read handle.

    ``end_offset`` is the absolute file offset one byte past the record
    just yielded — i.e. where the *next* record's header starts. This is
    the primitive behind source-side resume cursors: a reader that
    ``seek``s a handle to a previously reported ``end_offset`` decodes
    exactly the remaining records, no replay. Decoding starts at the
    handle's current position, so a seeked handle works transparently.

    Bytes are pulled ``chunk_size`` at a time and the parse buffer is
    trimmed after every record, so peak memory is one chunk plus one
    in-flight record no matter how large the shard is. The record
    sequence (and every corruption diagnostic) is identical to
    whole-blob decoding.
    """
    if chunk_size < _HEADER.size:
        raise ValueError(
            f"chunk_size must be >= {_HEADER.size}, got {chunk_size}"
        )
    total = handle.size
    buffer = bytearray()
    consumed = handle.tell()  # absolute offset of buffer[0] within the file

    def _fill(needed: int) -> bool:
        """Grow the buffer to ``needed`` bytes; False at clean EOF."""
        while len(buffer) < needed:
            chunk = handle.read(max(chunk_size, needed - len(buffer)))
            if not chunk:
                return False
            buffer.extend(chunk)
        return True

    while True:
        if not buffer and not _fill(1):
            return
        offset = consumed
        if not _fill(_HEADER.size):
            raise RecordCorruption(
                f"truncated header at offset {offset} of {total}"
            )
        length, crc = _HEADER.unpack_from(buffer, 0)
        if offset + _HEADER.size + length > total or not _fill(
            _HEADER.size + length
        ):
            raise RecordCorruption(
                f"record of {length} bytes overruns file "
                f"(offset {offset + _HEADER.size})"
            )
        body = bytes(buffer[_HEADER.size:_HEADER.size + length])
        del buffer[:_HEADER.size + length]
        consumed = offset + _HEADER.size + length
        if zlib.crc32(body) != crc:
            raise RecordCorruption(
                f"CRC mismatch at offset {offset + _HEADER.size}"
            )
        yield json.loads(body.decode("utf-8")), consumed


def stream_records(
    handle, chunk_size: int = DEFAULT_READ_CHUNK
) -> Iterator[dict[str, Any]]:
    """Yield payloads from a sequential read handle, verifying CRCs.

    Incremental counterpart of :func:`decode_records`; see
    :func:`stream_records_with_offsets` for the offset-reporting variant
    the streaming resume cursor is built on.
    """
    for payload, _ in stream_records_with_offsets(handle, chunk_size):
        yield payload


class RecordReader:
    """Iterates records from one finalized DFS file.

    Reads stream through a :class:`repro.dfs.filesystem.DFSReadHandle` in
    ``chunk_size`` slices — the reader never materializes the shard blob,
    so iterating an arbitrarily large file holds one chunk plus one
    record in memory (the streaming subsystem and the MapReduce mappers
    both depend on this bound). A reader is reiterable; each iteration
    opens a fresh handle.
    """

    def __init__(
        self,
        dfs: DistributedFileSystem,
        path: str,
        chunk_size: int = DEFAULT_READ_CHUNK,
    ) -> None:
        self._dfs = dfs
        self._path = path
        self._chunk_size = chunk_size
        # Fail fast on missing files, like the blob reader did.
        self._size = dfs.size(path)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return stream_records(self._dfs.open_read(self._path), self._chunk_size)

    def iter_blocks(
        self, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Iterator[list[dict[str, Any]]]:
        """Yield records in lists of up to ``block_size``.

        This is the chunked-iteration primitive behind the batched mapper
        path: consumers amortize per-record dispatch over a whole block
        while record order (and therefore output bytes) stays identical
        to one-at-a-time iteration.
        """
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        block: list[dict[str, Any]] = []
        for record in self:
            block.append(record)
            if len(block) >= block_size:
                yield block
                block = []
        if block:
            yield block


def write_records(
    dfs: DistributedFileSystem,
    path: str,
    payloads: Iterable[dict[str, Any]],
) -> int:
    """Write an iterable of payloads to one file; returns record count."""
    with RecordWriter(dfs, path) as writer:
        for payload in payloads:
            writer.write(payload)
        return writer.records_written


def read_records(dfs: DistributedFileSystem, path: str) -> list[dict[str, Any]]:
    """Read all records from one file."""
    return list(RecordReader(dfs, path))


def iter_record_blobs(
    dfs: DistributedFileSystem, paths: Iterable[str]
) -> Iterator[dict[str, Any]]:
    """Iterate records across many files (e.g. a whole shard set).

    Despite the historical name, iteration is streamed: each shard is
    read in bounded chunks through the filesystem layer, never as one
    blob, so a consumer that processes records as they arrive holds O(1)
    file bytes regardless of shard-set size.
    """
    for path in paths:
        yield from RecordReader(dfs, path)


def iter_record_blocks(
    dfs: DistributedFileSystem,
    paths: Iterable[str],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[list[dict[str, Any]]]:
    """Iterate records across many files in blocks of up to ``block_size``.

    Blocks never span a file boundary, so a shard set read block-wise
    concatenates to exactly the same record sequence as
    :func:`iter_record_blobs`.
    """
    for path in paths:
        yield from RecordReader(dfs, path).iter_blocks(block_size)
