"""Checkpoint-backed serving registry with atomic generation hot-swap.

The streaming tier (PR 3) already publishes bit-exact deployable
artifacts: every :class:`~repro.streaming.checkpoint.CheckpointManager`
manifest snapshots the online label model (and optionally the FTRL end
model) with write-then-rename atomicity. This module closes the loop the
paper describes for TFX — "once trained, we use TFX to automatically
stage it for serving" — by treating the newest manifest under a durable
root as the unit of deployment:

* :class:`CheckpointModelRegistry` watches the root and, when a newer
  manifest appears, loads it, rebuilds the offline-exact label model via
  :meth:`~repro.core.online_label_model.OnlineLabelModel.refit`, and
  swaps the new :class:`ServingGeneration` in with a single reference
  assignment — readers never block and never observe a half-loaded
  generation;
* every swap increments the ``serving/swaps`` counter and advances
  ``serving/active_generation``, so operators can watch deployments
  through the same :class:`~repro.mapreduce.counters.CounterSet`
  surface as every other subsystem;
* generations are immutable (frozen dataclass): an in-flight request
  batch that snapshotted generation N keeps scoring against N even if
  N+1 activates mid-batch — the no-torn-reads contract the serving
  tests hammer.

Because cumulative-mode ``refit`` reproduces the offline
:class:`~repro.core.label_model.SamplingFreeLabelModel` fit on the
stream prefix exactly, posteriors served from a generation are bitwise
equal to an offline fit of the snapshot's prefix (the ARCHITECTURE
invariant the serving benchmark enforces). That invariant survives the
pattern-compressed refit path (the default): restore-time refits train
on the manifest's dictionary-encoded pattern log at O(patterns x m) per
step, and in the minibatch regime the result is bitwise identical to
fitting the expanded matrix — so generation activation gets cheaper as
streams grow without moving a single served posterior bit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Callable

from repro.core.label_model import SamplingFreeLabelModel
from repro.core.online_label_model import (
    OnlineLabelModel,
    OnlineLabelModelConfig,
)
from repro.dfs.filesystem import DistributedFileSystem
from repro.mapreduce.counters import CounterSet
from repro.streaming.checkpoint import Checkpoint, CheckpointManager

__all__ = ["ServingGeneration", "CheckpointModelRegistry"]


@dataclass(frozen=True)
class ServingGeneration:
    """One immutable deployed snapshot, built from a single manifest.

    A generation is the unit of hot swap: the registry builds it fully
    off the request path, then publishes it with one atomic reference
    assignment. Requests that captured an older generation finish
    against that object — nothing here mutates after construction.
    """

    generation: int
    """Monotonic deployment number (1 = first manifest ever served)."""
    manifest_path: str
    """The durable manifest this generation was loaded from."""
    batch: int
    """Last finalized stream batch covered by the snapshot."""
    cursor: int
    """Examples consumed by the stream up to and including ``batch``."""
    lf_names: tuple[str, ...]
    """LF suite recorded in the manifest (empty for legacy manifests)."""
    label_model: SamplingFreeLabelModel
    """Offline-exact generative model (post-``refit``), scoring-ready."""
    end_model: object | None
    """Restored end model, or ``None`` when the manifest carries no
    end-model state (or no factory was configured)."""
    n_patterns: int
    """Distinct vote patterns retained by the snapshot's pattern log."""


class CheckpointModelRegistry:
    """Loads and hot-swaps serving generations from checkpoint manifests.

    The registry polls (via :meth:`refresh`, typically driven by a
    :class:`~repro.serving.service.LabelServer` watcher thread) the
    durable root written by a
    :class:`~repro.streaming.checkpoint.CheckpointedStream`. When the
    newest manifest path differs from the active generation's, it loads
    the manifest, restores the online label model with the *same*
    configuration the stream used, refits to offline-exact parameters,
    and atomically swaps the active generation.
    """

    def __init__(
        self,
        dfs: DistributedFileSystem,
        root: str,
        online_config: OnlineLabelModelConfig | None = None,
        end_model_factory: Callable[[], object] | None = None,
        counters: CounterSet | None = None,
    ) -> None:
        """Point a registry at a durable root.

        Args:
            dfs: Filesystem holding the checkpoint manifests.
            root: Durable root (manifests under ``{root}/checkpoints``).
            online_config: Label-model configuration, which must match
                the configuration the stream that wrote the manifests
                used — snapshot state only restores into an identically
                configured model. Defaults to the stream default.
            end_model_factory: Zero-argument callable returning a fresh
                end model exposing ``load_state``; called only for
                manifests that carry end-model state. ``None`` leaves
                end models undeployed.
            counters: Shared counter surface; a private
                :class:`~repro.mapreduce.counters.CounterSet` is created
                when omitted.
        """
        self.manager = CheckpointManager(dfs, root)
        self.online_config = online_config or OnlineLabelModelConfig()
        self.end_model_factory = end_model_factory
        self.counters = counters if counters is not None else CounterSet()
        self._swap_lock = threading.Lock()
        self._active: ServingGeneration | None = None

    # ------------------------------------------------------------------
    # read side (request path — lock-free)
    # ------------------------------------------------------------------
    def active(self) -> ServingGeneration | None:
        """The currently deployed generation, or ``None`` before the
        first manifest loads (the degraded regime).

        Lock-free: a single reference read, safe from any thread. The
        returned object is immutable — callers score whole request
        batches against one captured generation.
        """
        return self._active

    @property
    def generation(self) -> int:
        """Active generation number; 0 while no generation is deployed."""
        active = self._active
        return 0 if active is None else active.generation

    def abstain_prior(self) -> float:
        """The degraded-mode posterior: the configured class prior.

        Mirrors :meth:`CheckpointedStream._label_proba`'s fallback —
        before any parameters exist, every example carries only the
        prior ``P(y = +1)`` of the configured label model.
        """
        return float(
            SamplingFreeLabelModel(
                replace(self.online_config.base)
            ).class_prior()
        )

    # ------------------------------------------------------------------
    # write side (watcher / deploy path)
    # ------------------------------------------------------------------
    def refresh(self) -> ServingGeneration | None:
        """Deploy the newest manifest if it differs from the active one.

        Returns:
            The active generation after the check — the freshly swapped
            one when a newer manifest was found, the unchanged current
            one otherwise, or ``None`` when the root has no manifest
            yet.

        Raises:
            ValueError: If the newest manifest decodes but has the wrong
                schema or no label-model state; the active generation is
                left untouched.
            repro.dfs.records.RecordCorruption: If the newest manifest's
                record framing is torn; the active generation is left
                untouched. (The server's watcher counts both cases as
                ``serving/refresh_errors`` and keeps serving.)
        """
        with self._swap_lock:
            path = self.manager.latest_path()
            if path is None:
                return self._active
            active = self._active
            if active is not None and active.manifest_path == path:
                return active
            generation = self._load_generation(
                self.manager.load(path),
                1 if active is None else active.generation + 1,
            )
            # The swap: one reference assignment. In-flight batches that
            # captured the previous generation keep scoring against it.
            self._active = generation
            self.counters.increment("serving/swaps")
            self.counters.increment(
                "serving/active_generation",
                generation.generation
                - (0 if active is None else active.generation),
            )
            return generation

    def _load_generation(
        self, checkpoint: Checkpoint, number: int
    ) -> ServingGeneration:
        """Rebuild scoring-ready models from one decoded manifest."""
        online = OnlineLabelModel(self.online_config)
        online.load_state(checkpoint.label_model_state)
        # Offline-exact parameters: cumulative-mode refit reproduces the
        # offline fit of the snapshot's stream prefix bit for bit.
        label_model = online.refit()
        end_model = None
        if (
            checkpoint.end_model_state is not None
            and self.end_model_factory is not None
        ):
            end_model = self.end_model_factory()
            end_model.load_state(checkpoint.end_model_state)
        return ServingGeneration(
            generation=number,
            manifest_path=checkpoint.path,
            batch=checkpoint.batch,
            cursor=checkpoint.cursor,
            lf_names=tuple(checkpoint.meta.get("lf_names") or ()),
            label_model=label_model,
            end_model=end_model,
            n_patterns=online.n_patterns,
        )
