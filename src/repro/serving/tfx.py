"""The TFX-style training pipeline.

Section 5.3 describes the hand-off: Snorkel DryBell's probabilistic
labels go to TFX, which trains a model with a noise-aware loss, evaluates
it, and stages it for serving. :class:`TFXPipeline` reproduces the
component chain:

* **ExampleGen** — examples plus their soft labels (from the generative
  model) arrive as in-memory sequences or DFS record paths;
* **Transform** — a featurizer maps examples to model inputs (the
  servable feature view);
* **Trainer** — logistic regression (FTRL) or the MLP, both noise-aware;
* **Evaluator** — P/R/F1 on a labeled eval split; the model is *blessed*
  only if F1 clears ``blessing_threshold`` (and any previously blessed
  version, if ``require_improvement``);
* **Pusher** — blessed models are staged to the :class:`ModelRegistry`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.discriminative.dnn import MLPConfig, NoiseAwareMLP
from repro.discriminative.logistic import (
    LogisticConfig,
    NoiseAwareLogisticRegression,
)
from repro.discriminative.metrics import BinaryMetrics, binary_metrics
from repro.features.spec import NonServableAccessError
from repro.serving.model_registry import ModelRegistry, ModelVersion
from repro.types import Example

__all__ = ["TrainerSpec", "PipelineRun", "TFXPipeline"]


@dataclass
class TrainerSpec:
    """Which model to train and with what configuration."""

    kind: str = "logistic"  # "logistic" | "mlp"
    logistic: LogisticConfig = field(default_factory=LogisticConfig)
    mlp: MLPConfig = field(default_factory=MLPConfig)


@dataclass
class PipelineRun:
    """Artifacts of one pipeline execution."""

    model_version: ModelVersion
    eval_metrics: BinaryMetrics | None
    blessed: bool
    wall_seconds: float
    train_examples: int


class TFXPipeline:
    """ExampleGen -> Transform -> Trainer -> Evaluator -> Pusher."""

    def __init__(
        self,
        name: str,
        featurizer: Any,
        registry: ModelRegistry,
        trainer: TrainerSpec | None = None,
        blessing_threshold: float = 0.0,
        require_improvement: bool = False,
        enforce_servable: bool = True,
    ) -> None:
        """Configure the component chain.

        Args:
            name: Model name used for registry staging.
            featurizer: Transform component (servable view only, unless
                ``enforce_servable`` is disabled for tests).
            registry: Pusher target.
            trainer: Trainer selection + configuration.
            blessing_threshold: Minimum eval F1 for blessing.
            require_improvement: Also require beating the incumbent
                blessed version's F1.
            enforce_servable: Reject non-servable featurizers.

        Raises:
            NonServableAccessError: If the featurizer reads the
                non-servable view while ``enforce_servable`` is on.
        """
        self.name = name
        self.featurizer = featurizer
        self.registry = registry
        self.trainer = trainer or TrainerSpec()
        self.blessing_threshold = blessing_threshold
        self.require_improvement = require_improvement
        if enforce_servable and not featurizer.spec.servable:
            raise NonServableAccessError(
                f"pipeline {name!r} was configured with non-servable "
                f"featurizer {featurizer.spec.name!r}; deployment models "
                f"must use servable features (Section 4)"
            )

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(
        self,
        train_examples: Sequence[Example],
        soft_labels: np.ndarray,
        eval_examples: Sequence[Example] | None = None,
        eval_labels: np.ndarray | None = None,
    ) -> PipelineRun:
        """Train, evaluate, and stage a model.

        Args:
            train_examples: Training examples (ExampleGen).
            soft_labels: Probabilistic labels from the generative model.
            eval_examples: Optional labeled eval split; omitting it
                auto-blesses (no Evaluator configured).
            eval_labels: Hard labels for ``eval_examples``.

        Returns:
            The :class:`PipelineRun` with the staged version and its
            blessing decision.

        Raises:
            ValueError: On an example/label count mismatch or an
                unknown trainer kind.
        """
        start = time.perf_counter()
        soft = np.asarray(soft_labels, dtype=np.float64)
        if len(soft) != len(train_examples):
            raise ValueError(
                f"{len(train_examples)} examples but {len(soft)} labels"
            )

        # Transform
        X_train = self.featurizer.transform(train_examples)

        # Trainer
        model = self._train(X_train, soft)

        # Evaluator
        eval_metrics: BinaryMetrics | None = None
        blessed = True
        if eval_examples is not None and eval_labels is not None:
            X_eval = self.featurizer.transform(eval_examples)
            scores = model.predict_proba(X_eval)
            eval_metrics = binary_metrics(np.asarray(eval_labels), scores)
            blessed = eval_metrics.f1 >= self.blessing_threshold
            if blessed and self.require_improvement:
                incumbent = self.registry.latest_blessed(self.name)
                if incumbent is not None:
                    prior_f1 = incumbent.metrics.get("f1", 0.0)
                    blessed = eval_metrics.f1 >= prior_f1

        # Pusher
        version = self.registry.stage(
            self.name,
            model=model,
            featurizer=self.featurizer,
            metrics=eval_metrics.as_dict() if eval_metrics else {},
            blessed=blessed,
            notes=f"trainer={self.trainer.kind}",
        )
        return PipelineRun(
            model_version=version,
            eval_metrics=eval_metrics,
            blessed=blessed,
            wall_seconds=time.perf_counter() - start,
            train_examples=len(train_examples),
        )

    # ------------------------------------------------------------------
    def _train(self, X_train: Any, soft: np.ndarray) -> Any:
        kind = self.trainer.kind
        if kind == "logistic":
            model = NoiseAwareLogisticRegression(
                dimension=self.featurizer.spec.dimension,
                config=self.trainer.logistic,
            )
            return model.fit(X_train, soft)
        if kind == "mlp":
            model = NoiseAwareMLP(
                input_dim=self.featurizer.spec.dimension,
                config=self.trainer.mlp,
            )
            return model.fit(np.asarray(X_train), soft)
        raise ValueError(f"unknown trainer kind {kind!r}")
