"""Low-latency label serving: micro-batched requests over hot-swapped
generations.

The offline pipeline labels millions of examples per batch; an online
label service sees one example per request. Scoring each request alone
would abandon the vectorized ``label_batch`` kernels and the fused
token-match executor that make the offline path fast, so
:class:`LabelServer` *micro-batches*: concurrent requests queue behind a
single batcher thread that drains up to ``max_batch`` of them (or
whatever arrived within the ``flush_ms`` deadline), labels the block
through :func:`repro.lf.applier.label_example_block`, and scores all
posteriors with one vectorized
:meth:`~repro.core.label_model.SamplingFreeLabelModel.predict_proba`
call against the generation captured once per batch.

Operational contract:

* **admission control** — a residency-permit semaphore bounds pending
  requests at ``max_pending`` (the streaming pipeline's ``Gauge``
  pattern measures the actual peak); submitters past the bound wait,
  counted as ``serving/backpressure_waits``;
* **graceful degradation** — while the registry has no generation, every
  request is answered (never erred) with the configured class prior and
  ``degraded=True``, counted as ``serving/degraded``;
* **bounded latency** — :meth:`LabelServer.predict` waits at most
  ``timeout_ms`` for its result; expiry raises :class:`ServeTimeout`
  and increments ``serving/timeouts``;
* **hot swap safety** — the batcher captures the active generation once
  per micro-batch, so every response in a batch is scored by exactly
  one immutable generation even if the watcher swaps mid-batch;
* **bitwise reproducibility** — vote blocks are zero-padded to a
  multiple of 32 rows before scoring so BLAS takes the same vectorized
  row-block path as offline full-matrix scoring; served posteriors are
  bitwise equal to the generation's offline fit regardless of how
  requests happened to coalesce into batches.

Every knob reads its default from a serving environment variable
documented in ``docs/OPERATIONS.md``; the counter families above are
pinned by :data:`SERVING_COUNTER_CONTRACT` /
:data:`SERVING_CONDITIONAL_COUNTER_KEYS` and enforced against the
documentation by ``tests/test_docs.py``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.dfs.records import RecordCorruption
from repro.lf.applier import (
    fused_lf_columns,
    label_example_block,
    start_lf_resources,
    stop_lf_resources,
)
from repro.lf.base import AbstractLabelingFunction
from repro.mapreduce.counters import Gauge
from repro.serving.registry import CheckpointModelRegistry, ServingGeneration
from repro.types import Example

__all__ = [
    "ServeConfig",
    "ServeResult",
    "ServeTimeout",
    "LabelServer",
    "SERVING_COUNTER_CONTRACT",
    "SERVING_CONDITIONAL_COUNTER_KEYS",
]

#: Counter keys every served load reports (request path basics).
SERVING_COUNTER_CONTRACT = (
    "serving/requests",
    "serving/batches",
)

#: Counter keys that appear only when their condition occurs: a manifest
#: deploys (swaps / active generation), the registry is empty (degraded),
#: a request outlives its deadline (timeouts), admission control stalls a
#: submitter (backpressure), or a refresh hits an unreadable manifest.
SERVING_CONDITIONAL_COUNTER_KEYS = (
    "serving/swaps",
    "serving/active_generation",
    "serving/degraded",
    "serving/timeouts",
    "serving/backpressure_waits",
    "serving/refresh_errors",
)

#: Vote blocks are zero-padded to a multiple of this many rows before
#: ``predict_proba``. BLAS gemv kernels process rows in small vector
#: blocks and fall back to a scalar loop for the remainder, which can
#: round the last ULP differently than the vectorized path; padding
#: keeps every *real* row on the vectorized path, making served
#: posteriors bitwise equal to offline full-matrix scoring for any
#: micro-batch composition. Zero rows are valid votes (all-abstain) and
#: are sliced off after scoring.
_SCORE_PAD_ROWS = 32

#: Bound on every shutdown join. The batcher and watcher re-check the
#: stop flag at least every flush/poll interval (milliseconds), so a
#: thread that outlives this bound is wedged and must be surfaced, not
#: waited on forever.
_JOIN_TIMEOUT_S = 5.0


def _join_or_raise(thread: threading.Thread, name: str) -> None:
    """Join ``thread`` within the shutdown bound or fail loudly.

    Raises:
        RuntimeError: If the thread is still alive after the bound.
    """
    thread.join(timeout=_JOIN_TIMEOUT_S)
    if thread.is_alive():
        raise RuntimeError(
            f"{name} thread failed to stop within {_JOIN_TIMEOUT_S:.0f}s"
        )


class ServeTimeout(TimeoutError):
    """A request's result did not arrive within its deadline."""


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs for :class:`LabelServer`.

    Each field's default comes from its serving environment variable
    via :meth:`from_env` (explicit constructor arguments win).
    """

    max_batch: int = 256
    """Maximum requests coalesced into one scoring micro-batch
    (``REPRO_SERVE_MAX_BATCH``)."""
    flush_ms: float = 2.0
    """How long the batcher waits for more requests after the first one
    arrives before flushing a partial batch (``REPRO_SERVE_FLUSH_MS``)."""
    timeout_ms: float = 5000.0
    """Default per-request result deadline (``REPRO_SERVE_TIMEOUT_MS``)."""
    max_pending: int = 1024
    """Admission-control bound on resident (queued + scoring) requests
    (``REPRO_SERVE_MAX_PENDING``)."""
    poll_ms: float = 25.0
    """Watcher cadence for polling the registry's durable root for new
    manifests (``REPRO_SERVE_POLL_MS``)."""

    def __post_init__(self) -> None:
        """Validate bounds.

        Raises:
            ValueError: On a non-positive ``max_batch``, ``max_pending``,
                ``timeout_ms``, or ``poll_ms``, or a negative
                ``flush_ms``.
        """
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.flush_ms < 0:
            raise ValueError(f"flush_ms must be >= 0, got {self.flush_ms}")
        if self.timeout_ms <= 0:
            raise ValueError(
                f"timeout_ms must be > 0, got {self.timeout_ms}"
            )
        if self.poll_ms <= 0:
            raise ValueError(f"poll_ms must be > 0, got {self.poll_ms}")

    @classmethod
    def from_env(cls) -> "ServeConfig":
        """Build a config from the serving environment knobs."""
        return cls(
            max_batch=int(os.environ.get("REPRO_SERVE_MAX_BATCH", "256")),
            flush_ms=float(os.environ.get("REPRO_SERVE_FLUSH_MS", "2.0")),
            timeout_ms=float(
                os.environ.get("REPRO_SERVE_TIMEOUT_MS", "5000")
            ),
            max_pending=int(
                os.environ.get("REPRO_SERVE_MAX_PENDING", "1024")
            ),
            poll_ms=float(os.environ.get("REPRO_SERVE_POLL_MS", "25")),
        )


@dataclass(frozen=True)
class ServeResult:
    """One answered request."""

    example_id: str
    """The request's example id."""
    posterior: float
    """Served ``P(y = +1)`` — the generation's offline-exact posterior,
    or the class prior in the degraded regime."""
    generation: int | None
    """Generation that scored the request; ``None`` when degraded."""
    degraded: bool
    """True when no generation was deployed and the prior was served."""
    fired: int
    """Labeling functions that voted non-abstain on the example
    (0 in the degraded regime — LFs are not executed)."""
    latency_ms: float
    """Submit-to-resolve latency measured by the server."""


class _Pending:
    """One queued request: the example plus its completion signal."""

    __slots__ = ("example", "event", "result", "enqueued")

    def __init__(self, example: Example) -> None:
        self.example = example
        self.event = threading.Event()
        self.result: ServeResult | None = None
        # repro: allow[determinism] queue-latency measurement; labels depend only on the model generation
        self.enqueued = time.perf_counter()


class LabelServer:
    """Micro-batching label service over a checkpoint-backed registry.

    Lifecycle: construct, :meth:`start` (spawns the batcher thread and,
    by default, a registry watcher), serve via :meth:`predict` from any
    number of client threads, :meth:`stop` (drains the queue, resolves
    every pending request, joins the threads). Also usable as a context
    manager.
    """

    def __init__(
        self,
        registry: CheckpointModelRegistry,
        lfs: list[AbstractLabelingFunction],
        config: ServeConfig | None = None,
        telemetry=None,
        tracer=None,
    ) -> None:
        """Wire a server to its registry and LF suite.

        Args:
            registry: Source of scoring generations; the server shares
                its :class:`~repro.mapreduce.counters.CounterSet` so the
                whole tier reports one counter surface.
            lfs: Labeling-function suite — must match the suite the
                manifests' stream ran, or votes (and posteriors) are
                meaningless.
            config: Serving knobs; ``None`` reads the environment via
                :meth:`ServeConfig.from_env`.
            telemetry: Optional :class:`repro.obs.MetricsRegistry`;
                when set, every request records ``serving/latency_us``
                and every flush records ``serving/batch_size``
                (:data:`repro.obs.HISTOGRAM_CONTRACT` keys), and
                :meth:`report` embeds the registry snapshot.
            tracer: Optional :class:`repro.obs.Tracer`; batcher flushes
                emit ``serving.flush`` spans.

        Raises:
            ValueError: If ``lfs`` is empty.
        """
        if not lfs:
            raise ValueError("LabelServer needs at least one labeling function")
        self.registry = registry
        self.lfs = list(lfs)
        self.config = config or ServeConfig.from_env()
        self.counters = registry.counters
        self.telemetry = telemetry
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        self.resident = Gauge()
        self._fused_cols = fused_lf_columns(self.lfs)
        self._abstain_prior = registry.abstain_prior()
        self._queue: deque[_Pending] = deque()
        self._wake = threading.Condition(threading.Lock())
        self._permits = threading.Semaphore(self.config.max_pending)
        self._stop = threading.Event()
        self._batcher: threading.Thread | None = None
        self._watcher: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, watch: bool = True) -> "LabelServer":
        """Start serving: LF resources, batcher, optional watcher.

        Performs one synchronous :meth:`CheckpointModelRegistry.refresh`
        so a root that already holds a manifest serves it from the very
        first request.

        Args:
            watch: Also spawn the watcher thread that polls the durable
                root every ``poll_ms`` for new manifests (hot swap).
                Pass ``False`` to drive :meth:`refresh
                <CheckpointModelRegistry.refresh>` manually.

        Returns:
            ``self``, for chaining.

        Raises:
            RuntimeError: If the server was already started.
        """
        if self._batcher is not None:
            raise RuntimeError("LabelServer is already started")
        start_lf_resources(self.lfs)
        self.registry.refresh()
        self._stop.clear()
        self._batcher = threading.Thread(
            target=self._run_batches, name="label-serve-batcher", daemon=True
        )
        self._batcher.start()
        if watch:
            self._watcher = threading.Thread(
                target=self._watch, name="label-serve-watcher", daemon=True
            )
            self._watcher.start()
        return self

    def stop(self) -> None:
        """Stop serving: drain the queue, resolve everything, join.

        Idempotent; requests submitted after ``stop`` raise
        ``RuntimeError``.
        """
        if self._batcher is None:
            return
        self._stop.set()
        with self._wake:
            self._wake.notify_all()
        _join_or_raise(self._batcher, "label-serve-batcher")
        if self._watcher is not None:
            _join_or_raise(self._watcher, "label-serve-watcher")
        self._batcher = None
        self._watcher = None
        stop_lf_resources(self.lfs)

    def __enter__(self) -> "LabelServer":
        """Start the server on context entry."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop (and drain) the server on context exit."""
        self.stop()

    # ------------------------------------------------------------------
    # request path (any client thread)
    # ------------------------------------------------------------------
    def predict(
        self, example: Example, timeout_ms: float | None = None
    ) -> ServeResult:
        """Serve one example, blocking until its micro-batch resolves.

        Args:
            example: The example to label.
            timeout_ms: Per-call result deadline; ``None`` uses the
                configured ``timeout_ms``.

        Returns:
            The :class:`ServeResult` (degraded when no generation is
            deployed — never an error).

        Raises:
            ServeTimeout: If the result missed the deadline (counted as
                ``serving/timeouts``; the request still resolves later
                and its permit is released by the batcher).
            RuntimeError: If the server is stopped.
        """
        pending = self._submit(example)
        budget = (
            self.config.timeout_ms if timeout_ms is None else timeout_ms
        )
        if not pending.event.wait(budget / 1000.0):
            self.counters.increment("serving/timeouts")
            raise ServeTimeout(
                f"no result for {example.example_id!r} within {budget}ms"
            )
        assert pending.result is not None
        return pending.result

    def _submit(self, example: Example) -> _Pending:
        """Admit and enqueue one request; returns its pending handle."""
        if self._stop.is_set() or self._batcher is None:
            raise RuntimeError("LabelServer is not running")
        # Admission control: non-blocking fast path, counted wait
        # otherwise — the streaming pipeline's residency-permit idiom.
        if not self._permits.acquire(blocking=False):
            self.counters.increment("serving/backpressure_waits")
            self._permits.acquire()
        self.resident.add(1)
        pending = _Pending(example)
        with self._wake:
            self._queue.append(pending)
            self._wake.notify()
        self.counters.increment("serving/requests")
        return pending

    # ------------------------------------------------------------------
    # batcher thread
    # ------------------------------------------------------------------
    def _take_batch(self) -> list[_Pending] | None:
        """Block for the next micro-batch; ``None`` means shut down.

        The first request opens a ``flush_ms`` window; the batch closes
        when the window expires or ``max_batch`` requests coalesced,
        whichever comes first.
        """
        with self._wake:
            while not self._queue:
                if self._stop.is_set():
                    return None
                self._wake.wait(0.05)
            batch = [self._queue.popleft()]
            # repro: allow[determinism] flush_ms batching deadline — latency SLO, not label math
            deadline = time.perf_counter() + self.config.flush_ms / 1000.0
            while len(batch) < self.config.max_batch:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                # repro: allow[determinism] remaining wait in the flush window; affects batching, not labels
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or self._stop.is_set():
                    break
                self._wake.wait(remaining)
            return batch

    def _run_batches(self) -> None:
        """Batcher main loop: take, score, resolve, until drained."""
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._score_batch(batch)

    def _score_batch(self, batch: list[_Pending]) -> None:
        """Label + score one micro-batch against one captured generation."""
        # repro: allow[determinism] trace-span timing; posteriors are pure functions of the generation
        flush_start = time.perf_counter()
        # One generation snapshot per batch: every response in this
        # batch is scored by the same immutable object, even if the
        # watcher swaps mid-batch.
        generation = self.registry.active()
        if generation is None:
            self.counters.increment("serving/degraded", len(batch))
            for pending in batch:
                self._resolve(
                    pending,
                    posterior=self._abstain_prior,
                    generation=None,
                    degraded=True,
                    fired=0,
                )
        else:
            examples = [pending.example for pending in batch]
            votes = label_example_block(self.lfs, examples, self._fused_cols)
            posteriors = self._score_votes(generation, votes)
            fired = np.abs(votes).sum(axis=1)
            for pending, posterior, n_fired in zip(batch, posteriors, fired):
                self._resolve(
                    pending,
                    posterior=float(posterior),
                    generation=generation.generation,
                    degraded=False,
                    fired=int(n_fired),
                )
        self.counters.increment("serving/batches")
        if self.telemetry is not None:
            self.telemetry.record("serving/batch_size", len(batch))
        if self.tracer is not None:
            # repro: allow[determinism] trace payload only; emitted solely when tracing is on
            flush_us = int((time.perf_counter() - flush_start) * 1e6)
            self.tracer.emit(
                "serving.flush",
                flush_us,
                requests=len(batch),
                degraded=generation is None,
            )

    @staticmethod
    def _score_votes(
        generation: ServingGeneration, votes: np.ndarray
    ) -> np.ndarray:
        """Posterior block, padded for bitwise batch-size independence."""
        n = votes.shape[0]
        pad = (-n) % _SCORE_PAD_ROWS
        if pad:
            votes = np.vstack(
                [votes, np.zeros((pad, votes.shape[1]), dtype=votes.dtype)]
            )
        return generation.label_model.predict_proba(votes)[:n]

    def _resolve(
        self,
        pending: _Pending,
        posterior: float,
        generation: int | None,
        degraded: bool,
        fired: int,
    ) -> None:
        """Publish one result, wake its waiter, release its residency."""
        # repro: allow[determinism] latency_ms is observability metadata on the response envelope
        latency_ms = 1e3 * (time.perf_counter() - pending.enqueued)
        pending.result = ServeResult(
            example_id=pending.example.example_id,
            posterior=posterior,
            generation=generation,
            degraded=degraded,
            fired=fired,
            latency_ms=latency_ms,
        )
        if self.telemetry is not None:
            self.telemetry.record("serving/latency_us", latency_ms * 1e3)
        pending.event.set()
        self.resident.subtract(1)
        self._permits.release()

    # ------------------------------------------------------------------
    # watcher thread
    # ------------------------------------------------------------------
    def _watch(self) -> None:
        """Poll the durable root for new manifests until stopped."""
        interval = self.config.poll_ms / 1000.0
        while not self._stop.wait(interval):
            try:
                self.registry.refresh()
            except (ValueError, RecordCorruption):
                # An unreadable newest manifest (foreign schema, torn
                # external copy) must not kill serving: keep the active
                # generation and surface the problem as a counter.
                self.counters.increment("serving/refresh_errors")

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Snapshot the serving tier's operational state.

        Returns:
            Counters (``serving/*``), the admission gauge's current and
            peak residency, the configured bound, the active generation
            number, and — when a telemetry registry is attached — its
            deterministic snapshot (request-latency and batch-size
            histograms included).
        """
        return {
            "counters": self.counters.as_dict(),
            "pending": self.resident.current,
            "peak_pending": self.resident.peak,
            "max_pending": self.config.max_pending,
            "active_generation": self.registry.generation,
            "telemetry": (
                None if self.telemetry is None else self.telemetry.snapshot()
            ),
        }
