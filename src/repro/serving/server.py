"""The production model server.

Section 7: "products are composed of many services that are connected via
latency agreements. When engineers have to ensure that classifiers make
predictions within allotted times, they have to be very selective about
what features to use."

:class:`ProductionServer` is where that constraint is enforced in the
reproduction:

* it only loads *blessed* model versions from the registry,
* it refuses featurizers that read the non-servable view — the whole
  point of the cross-feature transfer is that non-servable resources
  never appear here,
* every request's virtual feature+inference latency is accounted against
  an SLA budget, and violations are reported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.features.spec import NonServableAccessError
from repro.serving.model_registry import ModelRegistry, ModelVersion
from repro.types import Example

__all__ = ["ServingStats", "ProductionServer"]


@dataclass
class ServingStats:
    """Request accounting for one served model."""

    requests: int = 0
    total_latency_ms: float = 0.0
    sla_violations: int = 0

    @property
    def mean_latency_ms(self) -> float:
        """Mean virtual per-request latency; 0 before any request."""
        if self.requests == 0:
            return 0.0
        return self.total_latency_ms / self.requests


#: Virtual per-request model inference cost (ms) by model kind.
_INFERENCE_MS = {
    "NoiseAwareLogisticRegression": 0.05,
    "NoiseAwareMLP": 0.3,
}


class ProductionServer:
    """Serves the latest blessed version of one model."""

    def __init__(
        self,
        registry: ModelRegistry,
        model_name: str,
        sla_ms: float = 10.0,
    ) -> None:
        """Bind a server to one model name in a blessing registry.

        Args:
            registry: The versioned registry to deploy from.
            model_name: Which model's blessed versions to serve.
            sla_ms: Virtual per-request latency budget; requests whose
                accounted feature + inference cost exceeds it count as
                SLA violations.
        """
        self.registry = registry
        self.model_name = model_name
        self.sla_ms = sla_ms
        self.stats = ServingStats()
        self._loaded: ModelVersion | None = None

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    def refresh(self) -> ModelVersion:
        """Load the newest blessed version (called on deploy/update).

        Returns:
            The loaded :class:`ModelVersion`.

        Raises:
            LookupError: If no blessed version exists.
            NonServableAccessError: If the blessed version's featurizer
                reads the non-servable view.
        """
        version = self.registry.latest_blessed(self.model_name)
        if version is None:
            raise LookupError(
                f"no blessed version of {self.model_name!r} to serve"
            )
        if not version.featurizer.spec.servable:
            raise NonServableAccessError(
                f"model {self.model_name!r} v{version.version} uses "
                f"non-servable featurizer {version.featurizer.spec.name!r}; "
                f"refusing to serve"
            )
        self._loaded = version
        return version

    @property
    def loaded_version(self) -> int | None:
        """Version number currently loaded, or ``None`` pre-refresh."""
        return self._loaded.version if self._loaded else None

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def predict(self, example: Example) -> float:
        """Score one request; returns ``P(y = +1)``."""
        if self._loaded is None:
            self.refresh()
        assert self._loaded is not None
        featurizer = self._loaded.featurizer
        model = self._loaded.model

        features = featurizer.transform([example])
        if sparse.issparse(features):
            score = float(model.predict_proba(features)[0])
        else:
            score = float(model.predict_proba(np.asarray(features))[0])

        latency = featurizer.spec.latency_ms_per_example + _INFERENCE_MS.get(
            type(model).__name__, 0.1
        )
        self.stats.requests += 1
        self.stats.total_latency_ms += latency
        if latency > self.sla_ms:
            self.stats.sla_violations += 1
        return score

    def predict_batch(self, examples: list[Example]) -> np.ndarray:
        """Score a batch (offline backfill path)."""
        if self._loaded is None:
            self.refresh()
        assert self._loaded is not None
        features = self._loaded.featurizer.transform(examples)
        if sparse.issparse(features):
            scores = self._loaded.model.predict_proba(features)
        else:
            scores = self._loaded.model.predict_proba(np.asarray(features))
        per_request = (
            self._loaded.featurizer.spec.latency_ms_per_example
            + _INFERENCE_MS.get(type(self._loaded.model).__name__, 0.1)
        )
        self.stats.requests += len(examples)
        self.stats.total_latency_ms += per_request * len(examples)
        return np.asarray(scores)
