"""Production serving substrate (the TFX substitute, Section 5.3).

"The probabilistic training labels estimated by Snorkel DryBell are
passed to TFX, where users can configure a model to train with a
noise-aware loss function. Once trained, we use TFX to automatically
stage it for serving."

The reproduction provides that lifecycle twice over, matching the two
ways models reach production:

* **batch deployment** — a declarative :class:`TFXPipeline` (ExampleGen
  -> Transform -> Trainer -> Evaluator -> Pusher), a versioned
  :class:`ModelRegistry` with evaluation-gated "blessing", and a
  :class:`ProductionServer` that loads the latest blessed model,
  enforces the servable-feature boundary, and accounts per-request
  latency against an SLA budget (Section 7: "products are composed of
  many services that are connected via latency agreements");
* **continuous deployment** — the low-latency label tier
  (:mod:`repro.serving.registry` + :mod:`repro.serving.service`):
  :class:`CheckpointModelRegistry` consumes the streaming tier's
  bit-exact checkpoint manifests as deployable artifacts and hot-swaps
  immutable :class:`ServingGeneration` snapshots without dropping
  in-flight requests, while :class:`LabelServer` micro-batches
  concurrent single-example requests through the vectorized labeling
  kernels, degrades gracefully (class-prior abstains) while no
  generation is deployed, and bounds request latency with counted
  timeouts. See ``docs/SERVING.md`` for the runbook.
"""

from repro.serving.model_registry import ModelRegistry, ModelVersion
from repro.serving.registry import CheckpointModelRegistry, ServingGeneration
from repro.serving.server import ProductionServer, ServingStats
from repro.serving.service import (
    SERVING_CONDITIONAL_COUNTER_KEYS,
    SERVING_COUNTER_CONTRACT,
    LabelServer,
    ServeConfig,
    ServeResult,
    ServeTimeout,
)
from repro.serving.tfx import PipelineRun, TFXPipeline, TrainerSpec

__all__ = [
    "ModelRegistry",
    "ModelVersion",
    "TFXPipeline",
    "PipelineRun",
    "TrainerSpec",
    "ProductionServer",
    "ServingStats",
    "CheckpointModelRegistry",
    "ServingGeneration",
    "LabelServer",
    "ServeConfig",
    "ServeResult",
    "ServeTimeout",
    "SERVING_COUNTER_CONTRACT",
    "SERVING_CONDITIONAL_COUNTER_KEYS",
]
