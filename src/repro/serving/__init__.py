"""Production serving substrate (the TFX substitute, Section 5.3).

"The probabilistic training labels estimated by Snorkel DryBell are
passed to TFX, where users can configure a model to train with a
noise-aware loss function. Once trained, we use TFX to automatically
stage it for serving."

The reproduction provides the same lifecycle: a declarative
:class:`TFXPipeline` (ExampleGen -> Transform -> Trainer -> Evaluator ->
Pusher), a versioned :class:`ModelRegistry` with evaluation-gated
"blessing", and a :class:`ProductionServer` that loads the latest blessed
model, enforces the servable-feature boundary, and accounts per-request
latency against an SLA budget (Section 7: "products are composed of many
services that are connected via latency agreements").
"""

from repro.serving.model_registry import ModelRegistry, ModelVersion
from repro.serving.tfx import TFXPipeline, PipelineRun, TrainerSpec
from repro.serving.server import ProductionServer, ServingStats

__all__ = [
    "ModelRegistry",
    "ModelVersion",
    "TFXPipeline",
    "PipelineRun",
    "TrainerSpec",
    "ProductionServer",
    "ServingStats",
]
