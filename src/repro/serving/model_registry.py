"""Versioned model registry with evaluation-gated blessing.

TFX's Evaluator/Pusher components only promote ("bless") a model when it
clears its evaluation bar; the serving layer then picks up the newest
blessed version. This registry reproduces that contract in-process so the
pipeline, the server, and the tests share one source of truth about what
is deployed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ModelVersion", "ModelRegistry"]


@dataclass
class ModelVersion:
    """One staged model with its evaluation record."""

    name: str
    version: int
    model: Any
    featurizer: Any
    metrics: dict[str, float] = field(default_factory=dict)
    blessed: bool = False
    notes: str = ""


class ModelRegistry:
    """Thread-safe in-process model store."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._versions: dict[str, list[ModelVersion]] = {}

    def stage(
        self,
        name: str,
        model: Any,
        featurizer: Any,
        metrics: dict[str, float] | None = None,
        blessed: bool = False,
        notes: str = "",
    ) -> ModelVersion:
        """Register a new version; returns it with its assigned number.

        Args:
            name: Model name (the registry namespaces versions by it).
            model: The trained model object to stage.
            featurizer: The featurizer the model was trained with.
            metrics: Evaluation metrics recorded with the version.
            blessed: Whether the version is immediately deployable.
            notes: Free-form provenance notes.

        Returns:
            The staged :class:`ModelVersion` with its version number.
        """
        with self._lock:
            history = self._versions.setdefault(name, [])
            version = ModelVersion(
                name=name,
                version=len(history) + 1,
                model=model,
                featurizer=featurizer,
                metrics=dict(metrics or {}),
                blessed=blessed,
                notes=notes,
            )
            history.append(version)
            return version

    def bless(self, name: str, version: int) -> None:
        """Mark a staged version as deployable.

        Args:
            name: Model name.
            version: Version number returned by :meth:`stage`.

        Raises:
            KeyError: If no such version was staged.
        """
        entry = self._find(name, version)
        entry.blessed = True

    def latest_blessed(self, name: str) -> ModelVersion | None:
        """Newest blessed version of a model, or ``None``."""
        with self._lock:
            history = self._versions.get(name, [])
            for entry in reversed(history):
                if entry.blessed:
                    return entry
        return None

    def latest(self, name: str) -> ModelVersion | None:
        """Newest staged version regardless of blessing, or ``None``.

        Args:
            name: Model name.

        Returns:
            The most recently staged :class:`ModelVersion`, or ``None``
            when nothing has been staged under ``name``.
        """
        with self._lock:
            history = self._versions.get(name, [])
            return history[-1] if history else None

    def versions(self, name: str) -> list[ModelVersion]:
        """All staged versions of a model, oldest first.

        Args:
            name: Model name.

        Returns:
            A copy of the version history (possibly empty).
        """
        with self._lock:
            return list(self._versions.get(name, []))

    def model_names(self) -> list[str]:
        """Sorted names of every model with at least one staged version."""
        with self._lock:
            return sorted(self._versions)

    def _find(self, name: str, version: int) -> ModelVersion:
        with self._lock:
            for entry in self._versions.get(name, []):
                if entry.version == version:
                    return entry
        raise KeyError(f"no version {version} of model {name!r}")
