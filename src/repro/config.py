"""Global configuration for reproduction runs.

The paper evaluates at Google scale (684K and 6.5M unlabeled examples;
Table 1). Laptop-scale runs default to a proportionally reduced regime so
the full benchmark harness completes in minutes. Setting the environment
variable ``REPRO_SCALE=full`` (or constructing :class:`ScaleConfig`
explicitly) restores paper-scale sizes.

Every experiment is deterministic given ``(seed, scale)``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ScaleConfig", "get_scale", "DEFAULT_SEED"]

#: Seed used by all benchmarks unless overridden.
DEFAULT_SEED = 20190630  # SIGMOD'19 started June 30.


@dataclass(frozen=True)
class ScaleConfig:
    """Sizes for the three applications at a given scale.

    Attributes mirror Table 1 of the paper. ``fraction`` scales the
    unlabeled pools; dev/test splits shrink more gently (they must stay
    large enough for stable F1 at ~1% positive rates).
    """

    name: str
    topic_unlabeled: int
    topic_dev: int
    topic_test: int
    product_unlabeled: int
    product_dev: int
    product_test: int
    events_unlabeled: int
    events_test: int

    @property
    def is_full(self) -> bool:
        return self.name == "full"


#: Paper-scale sizes straight from Table 1 (events sizes are not disclosed
#: in the paper; we use a pool comparable to the content applications).
FULL_SCALE = ScaleConfig(
    name="full",
    topic_unlabeled=684_000,
    topic_dev=11_000,
    topic_test=11_000,
    product_unlabeled=6_500_000,
    product_dev=14_000,
    product_test=13_000,
    events_unlabeled=1_000_000,
    events_test=50_000,
)

#: Laptop-scale defaults: ~30x smaller unlabeled pools, dev/test kept large
#: enough that F1 at ~1% positives has low variance.
SMALL_SCALE = ScaleConfig(
    name="small",
    topic_unlabeled=24_000,
    topic_dev=1_800,
    topic_test=4_000,
    product_unlabeled=40_000,
    product_dev=2_000,
    product_test=5_000,
    events_unlabeled=12_000,
    events_test=4_000,
)

#: Tiny scale for unit/integration tests.
TINY_SCALE = ScaleConfig(
    name="tiny",
    topic_unlabeled=1_500,
    topic_dev=600,
    topic_test=600,
    product_unlabeled=2_000,
    product_dev=700,
    product_test=700,
    events_unlabeled=1_200,
    events_test=600,
)

_SCALES = {cfg.name: cfg for cfg in (FULL_SCALE, SMALL_SCALE, TINY_SCALE)}


def get_scale(name: str | None = None) -> ScaleConfig:
    """Resolve a scale by name, falling back to ``$REPRO_SCALE`` or small.

    >>> get_scale("tiny").name
    'tiny'
    """
    if name is None:
        name = os.environ.get("REPRO_SCALE", "small")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; expected one of {sorted(_SCALES)}"
        ) from None
