"""Unified telemetry: histograms, a metrics registry, tracing, export.

``repro.obs`` is the observability layer the hot paths share:

* :class:`~repro.obs.histogram.Histogram` — thread-safe, picklable,
  mergeable log-bucketed latency/size distributions with p50/p90/p99;
* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges, and
  histograms under one namespace with a deterministic snapshot;
* :class:`~repro.obs.tracing.Tracer` / :class:`~repro.obs.tracing.Span`
  — deterministic span tracing emitted as durable DFS trace shards,
  gated by ``REPRO_TRACE`` / ``REPRO_TRACE_SAMPLE``;
* :class:`~repro.obs.exporter.TelemetryExporter` — periodic durable
  snapshot publication.

Everything here is opt-in and identity-preserving: a run with telemetry
attached produces byte-identical votes, sink shards, and posteriors to
a run without (gated by ``benchmarks/bench_telemetry.py``, along with a
>= 0.9x telemetry-on/off throughput floor).

:data:`HISTOGRAM_CONTRACT` pins the histogram keys the wired subsystems
emit, and :data:`TELEMETRY_COUNTER_CONTRACT` /
:data:`TELEMETRY_GAUGE_CONTRACT` pin the registry counter and gauge
keys that ride the same telemetry registry; ``docs/OPERATIONS.md``
documents them, ``tests/test_docs.py`` diffs the tables against the
tuples, and the ``contract-closure`` rule in :mod:`repro.analysis`
proves every emission site is covered.
"""

from repro.obs.exporter import TelemetryExporter
from repro.obs.histogram import (
    DEFAULT_GROWTH,
    Histogram,
    decode_histograms,
    encode_histograms,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import (
    TRACE_ENV,
    TRACE_SAMPLE_ENV,
    DfsTraceSink,
    JsonlTraceSink,
    ListTraceSink,
    Span,
    Tracer,
    trace_sample_rate,
    tracing_enabled,
)

__all__ = [
    "Histogram",
    "DEFAULT_GROWTH",
    "encode_histograms",
    "decode_histograms",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "ListTraceSink",
    "JsonlTraceSink",
    "DfsTraceSink",
    "tracing_enabled",
    "trace_sample_rate",
    "TRACE_ENV",
    "TRACE_SAMPLE_ENV",
    "TelemetryExporter",
    "HISTOGRAM_CONTRACT",
    "TELEMETRY_COUNTER_CONTRACT",
    "TELEMETRY_GAUGE_CONTRACT",
]

#: Histogram keys the wired subsystems emit, by layer. Pinned here so
#: the telemetry table in docs/OPERATIONS.md cannot silently rot
#: (tests/test_docs.py diffs the documented keys against this tuple).
HISTOGRAM_CONTRACT = (
    # streaming pipeline stages (per micro-batch)
    "stream/decode_us",
    "stream/label_us",
    "stream/queue_wait_us",
    "stream/sink_us",
    "stream/batch_latency_us",
    "stream/checkpoint_us",
    "stream/drift_score",
    # parallel executor (worker-side, merged over bytes-only IPC)
    "worker/decode_us",
    "worker/label_us",
    # offline batched applier (per block)
    "offline/label_block_us",
    # label server (per request / per flush)
    "serving/latency_us",
    "serving/batch_size",
)

#: Counter keys emitted through the shared telemetry registry (as
#: opposed to the streaming/serving ``CounterSet`` contracts, which
#: live next to their pipelines). Same docs/tests/analysis coverage as
#: :data:`HISTOGRAM_CONTRACT`.
TELEMETRY_COUNTER_CONTRACT = (
    # offline batched applier (per block)
    "offline/blocks",
    "offline/examples",
    # parallel executor driver side
    "parallel/blocks",
    "parallel/retries",
    "parallel/pool_restarts",
)

#: Gauge keys emitted through the shared telemetry registry.
TELEMETRY_GAUGE_CONTRACT = (
    # streaming pipeline bounded-queue residency (backpressure signal)
    "stream/resident_records",
)
