"""One namespace for counters, gauges, and histograms.

The repo grew three observability primitives in three places:
:class:`~repro.mapreduce.counters.CounterSet` (monotonic sums),
:class:`~repro.mapreduce.counters.Gauge` (levels with high-water marks),
and :class:`~repro.obs.histogram.Histogram` (distributions).
:class:`MetricsRegistry` holds all three under one namespace with a
single deterministic :meth:`~MetricsRegistry.snapshot` — the dict the
:class:`~repro.obs.exporter.TelemetryExporter` publishes, the streaming
report embeds, and ``scripts/metrics_dump.py`` pretty-prints.

Registries merge like their parts: counters add, gauge peaks take the
max, histograms fold bucket-wise — so per-worker or per-subsystem
registries aggregate into a fleet view in any order with an identical
result.
"""

from __future__ import annotations

import threading
from typing import Mapping

from repro.mapreduce.counters import CounterSet, Gauge
from repro.obs.histogram import DEFAULT_GROWTH, Histogram

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Counters + gauges + histograms under one namespace.

    Thread contract: every method may be called from any thread; the
    registry locks only its name→instrument maps, and each instrument
    carries its own lock — so hot-path ``record`` calls on different
    histograms never contend.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self.counters = CounterSet()
        self._lock = threading.Lock()
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # instruments (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str, amount: int = 1) -> None:
        """Increment the named counter (non-negative amounts only)."""
        self.counters.increment(name, amount)

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            return gauge

    def histogram(
        self, name: str, growth: float = DEFAULT_GROWTH
    ) -> Histogram:
        """The named histogram, created on first use.

        Raises:
            ValueError: When the histogram exists with a different
                ``growth`` — its buckets would not merge.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(growth)
            elif hist.growth != growth:
                raise ValueError(
                    f"histogram {name!r} exists with growth {hist.growth}, "
                    f"requested {growth}"
                )
            return hist

    def record(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        self.histogram(name).record(value)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one."""
        self.counters.merge(other.counters)
        with other._lock:
            gauges = dict(other._gauges)
            histograms = dict(other._histograms)
        for name, gauge in gauges.items():
            self.gauge(name).merge(gauge)
        for name, hist in histograms.items():
            self.histogram(name, growth=hist.growth).merge(hist)

    def merge_histograms(self, mapping: Mapping[str, Mapping]) -> None:
        """Fold decoded worker histograms (``name -> as_dict()``) in.

        This is the parent side of the executor's bytes-only IPC: the
        worker returns :func:`repro.obs.histogram.encode_histograms`
        output, the parent decodes to plain dicts and merges here.
        """
        for name, data in mapping.items():
            self.histogram(name, growth=float(data["growth"])).merge(
                Histogram.from_dict(data)
            )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def histogram_names(self) -> list[str]:
        """Sorted names of every histogram created so far."""
        with self._lock:
            return sorted(self._histograms)

    def snapshot(self, include_buckets: bool = False) -> dict:
        """Deterministic dict of everything the registry holds.

        Keys are sorted at every level, so two registries that saw the
        same events — in any thread interleaving or merge order —
        produce byte-identical JSON. ``include_buckets`` additionally
        embeds each histogram's raw bucket map (the lossless form).
        """
        with self._lock:
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        hist_view = {}
        for name in sorted(histograms):
            digest = histograms[name].summary()
            if include_buckets:
                digest["buckets"] = histograms[name].as_dict()["buckets"]
            hist_view[name] = digest
        return {
            "namespace": self.namespace,
            "counters": dict(sorted(self.counters.as_dict().items())),
            "gauges": {
                name: {
                    "current": gauges[name].current,
                    "peak": gauges[name].peak,
                }
                for name in sorted(gauges)
            },
            "histograms": hist_view,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry({self.namespace!r}, "
            f"counters={len(self.counters.as_dict())}, "
            f"histograms={len(self.histogram_names())})"
        )
