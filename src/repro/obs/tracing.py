"""Lightweight span tracing with durable DFS trace shards.

Counters and histograms say *how much* and *how slow*; traces say
*where the time went* for one specific batch or request.
:class:`Tracer` hands out :class:`Span` context managers with
deterministic ids, parent links (per-thread stacks — a span started on
the consumer thread nests under the consumer's open span, never a
producer's), and wall-clock durations. Finished spans are emitted as
append-only JSONL-shaped records through a pluggable sink:

* :class:`ListTraceSink` — in-memory, for tests and ad-hoc inspection;
* :class:`JsonlTraceSink` — one JSON line per span in a local file
  (the CI trace artifact);
* :class:`DfsTraceSink` — rolling trace shards written through the
  existing :class:`repro.dfs.records.RecordWriter` (length-prefixed,
  CRC-checked, finalize-on-close), so traces get the same durability
  story as votes and checkpoints.

Tracing is **off by default** and controlled by two environment knobs:
``REPRO_TRACE`` (truthy value enables) and ``REPRO_TRACE_SAMPLE``
(fraction of root spans kept, default 1.0). Sampling is a deterministic
counter-based accumulator, *not* an RNG draw — tracing must never
perturb seeded random state, or the byte-identity invariants would
quietly depend on whether telemetry was on.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.records import RecordWriter

__all__ = [
    "Span",
    "Tracer",
    "ListTraceSink",
    "JsonlTraceSink",
    "DfsTraceSink",
    "tracing_enabled",
    "trace_sample_rate",
    "TRACE_ENV",
    "TRACE_SAMPLE_ENV",
]

#: Environment knob: any of ``1/true/yes/on`` enables span tracing.
TRACE_ENV = "REPRO_TRACE"

#: Environment knob: fraction of root spans kept (0.0–1.0, default 1.0).
TRACE_SAMPLE_ENV = "REPRO_TRACE_SAMPLE"

_TRUTHY = {"1", "true", "yes", "on"}


def tracing_enabled() -> bool:
    """Whether ``REPRO_TRACE`` requests span tracing."""
    return os.environ.get(TRACE_ENV, "").strip().lower() in _TRUTHY


def trace_sample_rate() -> float:
    """The ``REPRO_TRACE_SAMPLE`` root-span keep fraction.

    Raises:
        ValueError: When the knob is set outside ``[0, 1]``.
    """
    raw = os.environ.get(TRACE_SAMPLE_ENV)
    if raw is None or not raw.strip():
        return 1.0
    rate = float(raw)
    if not 0.0 <= rate <= 1.0:
        raise ValueError(
            f"{TRACE_SAMPLE_ENV} must be in [0, 1], got {rate}"
        )
    return rate


@dataclass
class Span:
    """One timed operation inside a trace.

    ``duration_us`` is filled when the span's context exits; a span
    observed mid-flight reports ``None``.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start_unix: float
    duration_us: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> dict:
        """The JSON-safe trace-shard payload for this span."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": round(self.start_unix, 6),
            "duration_us": self.duration_us,
            "attrs": self.attrs,
        }


class ListTraceSink:
    """In-memory sink: finished span records in emission order."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        """Append one finished span record."""
        with self._lock:
            self.records.append(record)

    def close(self) -> None:
        """No-op; the records list stays readable."""


class JsonlTraceSink:
    """Local-file sink: one JSON line per finished span.

    This is the CI artifact format (``BENCH_trace.jsonl``): plain
    ``jq``-able lines, no framing, flushed per write so a crashed run
    still leaves every completed span on disk.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")
        self.records_written = 0

    def write(self, record: dict) -> None:
        """Append one span as a JSON line and flush."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            self.records_written += 1

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class DfsTraceSink:
    """Durable sink: rolling trace shards via the DFS record writer.

    Spans append to ``<root>/trace-NNNNN.records``; a shard finalizes
    (becomes reader-visible) every ``shard_records`` spans and on
    :meth:`close`. Finalized shards are append-only history — exactly
    the vote-shard durability contract, reused for telemetry.
    """

    def __init__(
        self,
        dfs: DistributedFileSystem,
        root: str,
        shard_records: int = 512,
    ) -> None:
        if shard_records < 1:
            raise ValueError(
                f"shard_records must be >= 1, got {shard_records}"
            )
        self._dfs = dfs
        self.root = root.rstrip("/")
        self.shard_records = shard_records
        self._lock = threading.Lock()
        self._writer: RecordWriter | None = None
        self._shard_index = 0
        self._finalized: list[str] = []
        self.records_written = 0

    def write(self, record: dict) -> None:
        """Append one span record, rolling the shard when full."""
        with self._lock:
            if self._writer is None:
                self._writer = RecordWriter(
                    self._dfs,
                    f"{self.root}/trace-{self._shard_index:05d}.records",
                )
                self._shard_index += 1
            self._writer.write(record)
            self.records_written += 1
            if self._writer.records_written >= self.shard_records:
                self._writer.close()
                self._finalized.append(self._writer.final_path)
                self._writer = None

    def close(self) -> None:
        """Finalize the open shard so every span becomes readable."""
        with self._lock:
            if self._writer is not None:
                if self._writer.records_written:
                    self._writer.close()
                    self._finalized.append(self._writer.final_path)
                else:
                    self._writer.abandon()
                self._writer = None

    def paths(self) -> list[str]:
        """Finalized shard paths, in write order."""
        with self._lock:
            return list(self._finalized)


class Tracer:
    """Deterministic span factory with per-thread parent linking.

    Ids are monotonic counters (``t000001`` / ``s000001``), never
    random — two identically driven runs emit identical traces, and a
    tracer can run alongside seeded experiments without touching any
    RNG. Sampling keeps every ``1/sample``-th *root* span via an
    accumulator; child spans inherit their root's decision, so traces
    are always complete or absent, never torn.
    """

    def __init__(
        self,
        sink: ListTraceSink | JsonlTraceSink | DfsTraceSink | None = None,
        enabled: bool | None = None,
        sample: float | None = None,
    ) -> None:
        """Configure the tracer.

        Args:
            sink: Where finished spans go; ``None`` keeps them in an
                internal :class:`ListTraceSink`.
            enabled: ``None`` reads ``REPRO_TRACE``.
            sample: Root-span keep fraction; ``None`` reads
                ``REPRO_TRACE_SAMPLE``.

        Raises:
            ValueError: On a sample outside ``[0, 1]``.
        """
        self.enabled = tracing_enabled() if enabled is None else enabled
        self.sample = trace_sample_rate() if sample is None else float(sample)
        if not 0.0 <= self.sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {self.sample}")
        self.sink = sink if sink is not None else ListTraceSink()
        self._lock = threading.Lock()
        self._next_trace = 0
        self._next_span = 0
        self._accum = 0.0
        self._local = threading.local()
        self.spans_started = 0
        self.spans_written = 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _stack(self) -> list[tuple[Span, bool]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, name: str, attrs: dict) -> tuple[Span, bool]:
        """Allocate a span under the current thread's stack top."""
        stack = self._stack()
        with self._lock:
            self._next_span += 1
            span_id = f"s{self._next_span:06d}"
            if stack:
                parent, sampled = stack[-1]
                trace_id = parent.trace_id
                parent_id = parent.span_id
            else:
                self._next_trace += 1
                trace_id = f"t{self._next_trace:06d}"
                parent_id = None
                # Deterministic sampling: keep whenever the accumulated
                # fraction crosses 1 — every 1/sample-th root, no RNG.
                self._accum += self.sample
                sampled = self._accum >= 1.0
                if sampled:
                    self._accum -= 1.0
            self.spans_started += 1
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            start_unix=time.time(),
            attrs=attrs,
        )
        return span, sampled

    def _emit(self, span: Span, sampled: bool) -> None:
        if sampled:
            self.sink.write(span.to_record())
            with self._lock:
                self.spans_written += 1

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span | None]:
        """Time a block as one span; yields it (``None`` when disabled).

        Nesting is per-thread: a span opened while another is active on
        the same thread records it as its parent and shares its trace
        id (and its sampling decision).
        """
        if not self.enabled:
            yield None
            return
        span, sampled = self._open(name, attrs)
        stack = self._stack()
        stack.append((span, sampled))
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.duration_us = int((time.perf_counter() - started) * 1e6)
            stack.pop()
            self._emit(span, sampled)

    def emit(self, name: str, duration_us: int, **attrs: Any) -> None:
        """Record an already-measured operation as a completed span.

        The hot loops time work themselves (the measurement must not
        include tracer bookkeeping); this folds such a measurement into
        the trace stream, parented to the calling thread's open span
        like a ``with``-block span would be.
        """
        if not self.enabled:
            return
        span, sampled = self._open(name, attrs)
        span.duration_us = int(duration_us)
        self._emit(span, sampled)

    def close(self) -> None:
        """Flush and close the sink."""
        self.sink.close()
