"""Mergeable log-bucketed latency histograms.

The repo's counters (:class:`repro.mapreduce.counters.CounterSet`) sum
durations — great for totals, useless for tails. :class:`Histogram`
closes that gap with the HdrHistogram idea scaled down to this
codebase: values land in exponentially sized buckets (``growth`` per
step, default ~1.1 → ≤ 5% relative quantile error), so the whole
distribution of millions of samples is a small dict of bucket counts.

Three properties make it the telemetry primitive:

* **thread-safe** — ``record`` and ``merge`` take an internal lock, so
  producer/consumer/batcher threads share one histogram;
* **picklable** — the lock is dropped and rebuilt across pickling, so
  a histogram crosses process boundaries like a plain dict;
* **mergeable** — bucket counts add commutatively, so per-worker
  histograms fold into a global one in any order with an identical
  result (exactly the ``CounterSet.merge`` contract, asserted by the
  determinism tests).

Serialization (:meth:`Histogram.to_bytes` / :func:`encode_histograms`)
is canonical JSON, which rides the parallel executor's existing
bytes-only IPC without touching the vote payload format.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Iterable, Mapping

__all__ = [
    "Histogram",
    "DEFAULT_GROWTH",
    "encode_histograms",
    "decode_histograms",
]

#: Default bucket growth factor. Bucket ``i`` covers
#: ``[growth**i, growth**(i+1))``; reporting the geometric midpoint
#: bounds the relative quantile error at ``sqrt(growth) - 1`` (~4.9%).
DEFAULT_GROWTH = 1.1


class Histogram:
    """A thread-safe, picklable, mergeable log-bucketed histogram.

    Values must be finite and non-negative (they are durations or
    sizes); zero gets its own exact bucket. Memory is bounded by the
    number of *distinct magnitudes* observed, never the sample count —
    recording a billion latencies costs the same few hundred buckets as
    recording a thousand.
    """

    __slots__ = (
        "growth",
        "_inv_log_growth",
        "_lock",
        "_buckets",
        "_zero",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(self, growth: float = DEFAULT_GROWTH) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.growth = float(growth)
        self._inv_log_growth = 1.0 / math.log(self.growth)
        self._lock = threading.Lock()
        self._buckets: dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _bucket_index(self, value: float) -> int:
        return math.floor(math.log(value) * self._inv_log_growth)

    def record(self, value: float) -> None:
        """Record one observation.

        Raises:
            ValueError: On a negative or non-finite value — histograms
                hold durations and sizes, and a silent clamp would skew
                every quantile downstream.
        """
        value = float(value)
        if not math.isfinite(value) or value < 0:
            raise ValueError(
                f"histogram values must be finite and >= 0, got {value}"
            )
        with self._lock:
            if value == 0.0:
                self._zero += 1
            else:
                index = self._bucket_index(value)
                self._buckets[index] = self._buckets.get(index, 0) + 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total observations recorded (including merged-in ones)."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    @property
    def min(self) -> float | None:
        """Smallest observed value; ``None`` when empty."""
        with self._lock:
            return self._min

    @property
    def max(self) -> float | None:
        """Largest observed value; ``None`` when empty."""
        with self._lock:
            return self._max

    @property
    def mean(self) -> float:
        """Arithmetic mean; 0.0 when empty."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (0 <= q <= 1).

        Walks the buckets in value order and returns the geometric
        midpoint of the bucket holding the target rank, clamped to the
        exact observed ``[min, max]`` — so single-sample histograms
        answer exactly, and the relative error is bounded by
        ``sqrt(growth) - 1`` everywhere else.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._count:
                return 0.0
            rank = max(1, math.ceil(q * self._count))
            seen = self._zero
            if seen >= rank:
                return 0.0
            value = self._max
            for index in sorted(self._buckets):
                seen += self._buckets[index]
                if seen >= rank:
                    value = self.growth ** (index + 0.5)
                    break
            assert self._min is not None and self._max is not None
            return min(self._max, max(self._min, value))

    def summary(self) -> dict:
        """Deterministic scalar digest: count, sum, mean, min/max, tails."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    # ------------------------------------------------------------------
    # merge + serialization
    # ------------------------------------------------------------------
    def _state(self) -> dict:
        """Lock-consistent snapshot of the mutable fields."""
        with self._lock:
            return {
                "growth": self.growth,
                "buckets": dict(self._buckets),
                "zero": self._zero,
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's buckets into this one.

        Merging is commutative and associative — any merge order over
        any partition of the samples yields identical buckets (and
        therefore identical quantiles), which is what lets per-worker
        histograms travel the bytes-only IPC and land in one registry.

        Raises:
            ValueError: When the growth factors differ (the bucket
                boundaries would not line up).
        """
        if other.growth != self.growth:
            raise ValueError(
                f"cannot merge histograms with growth {other.growth} "
                f"into growth {self.growth}"
            )
        snapshot = other._state()
        with self._lock:
            for index, n in snapshot["buckets"].items():
                self._buckets[index] = self._buckets.get(index, 0) + n
            self._zero += snapshot["zero"]
            self._count += snapshot["count"]
            self._sum += snapshot["sum"]
            for bound, pick in (("min", min), ("max", max)):
                theirs = snapshot[bound]
                if theirs is None:
                    continue
                ours = getattr(self, f"_{bound}")
                setattr(
                    self,
                    f"_{bound}",
                    theirs if ours is None else pick(ours, theirs),
                )

    @classmethod
    def merged(cls, parts: Iterable["Histogram"]) -> "Histogram":
        """One histogram holding every part's samples."""
        parts = list(parts)
        total = cls(parts[0].growth if parts else DEFAULT_GROWTH)
        for part in parts:
            total.merge(part)
        return total

    def as_dict(self) -> dict:
        """JSON-safe state (bucket keys become strings)."""
        state = self._state()
        state["buckets"] = {
            str(index): n for index, n in sorted(state["buckets"].items())
        }
        return state

    @classmethod
    def from_dict(cls, data: Mapping) -> "Histogram":
        """Inverse of :meth:`as_dict`."""
        hist = cls(data["growth"])
        hist._buckets = {int(k): int(v) for k, v in data["buckets"].items()}
        hist._zero = int(data["zero"])
        hist._count = int(data["count"])
        hist._sum = float(data["sum"])
        hist._min = None if data["min"] is None else float(data["min"])
        hist._max = None if data["max"] is None else float(data["max"])
        return hist

    def to_bytes(self) -> bytes:
        """Canonical JSON encoding for cross-process transport."""
        return json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Histogram":
        """Inverse of :meth:`to_bytes`."""
        return cls.from_dict(json.loads(blob.decode("utf-8")))

    # ------------------------------------------------------------------
    # pickling (drop the lock, rebuild on restore)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Picklable state: everything but the lock."""
        return self._state()

    def __setstate__(self, state: dict) -> None:
        """Rebuild the lock alongside the restored buckets."""
        self.growth = state["growth"]
        self._inv_log_growth = 1.0 / math.log(self.growth)
        self._lock = threading.Lock()
        self._buckets = dict(state["buckets"])
        self._zero = state["zero"]
        self._count = state["count"]
        self._sum = state["sum"]
        self._min = state["min"]
        self._max = state["max"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(count={self.count}, mean={self.mean:.1f}, "
            f"p99={self.quantile(0.99):.1f})"
        )


def encode_histograms(histograms: Mapping[str, Histogram]) -> bytes:
    """Encode a named histogram family as one bytes payload.

    This is the worker side of the executor's bytes-only IPC: the
    parent decodes with :func:`decode_histograms` and merges into its
    registry.
    """
    return json.dumps(
        {name: hist.as_dict() for name, hist in sorted(histograms.items())},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")


def decode_histograms(blob: bytes) -> dict[str, Histogram]:
    """Inverse of :func:`encode_histograms`."""
    return {
        name: Histogram.from_dict(data)
        for name, data in json.loads(blob.decode("utf-8")).items()
    }
