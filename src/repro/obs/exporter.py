"""Periodic durable export of metrics-registry snapshots.

A registry is process-local state; an operator watching a weeks-long
stream needs it *published*. :class:`TelemetryExporter` runs a daemon
thread that snapshots a :class:`~repro.obs.registry.MetricsRegistry`
every ``interval_s`` and writes each snapshot:

* as one finalized DFS record file per snapshot
  (``<root>/metrics-NNNNN.records``) — write-once publish, so a reader
  never observes a torn snapshot; and/or
* as one JSON line appended to a local file — the ``jq``-able form CI
  uploads.

``stop()`` always takes one final snapshot, so the last export reflects
the completed run — that final dict is what the serving and telemetry
evals fold into their benchmark rows.
"""

from __future__ import annotations

import json
import threading
import time

from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.records import write_records
from repro.obs.registry import MetricsRegistry

__all__ = ["TelemetryExporter"]

#: Bound on the shutdown join; the export loop wakes at least every
#: ``interval_s``, so a thread alive past this is wedged.
_JOIN_TIMEOUT_S = 5.0


class TelemetryExporter:
    """Background thread publishing registry snapshots durably."""

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = 5.0,
        dfs: DistributedFileSystem | None = None,
        root: str | None = None,
        path: str | None = None,
        include_buckets: bool = False,
    ) -> None:
        """Configure the exporter.

        Args:
            registry: The registry to snapshot.
            interval_s: Seconds between periodic exports.
            dfs: Filesystem for durable record-file snapshots.
            root: DFS directory for ``metrics-NNNNN.records`` files
                (required iff ``dfs`` is given).
            path: Local file to append JSONL snapshot lines to.
            include_buckets: Embed raw histogram buckets (lossless but
                larger) in every snapshot.

        Raises:
            ValueError: On a non-positive interval or a ``dfs``/``root``
                mismatch.
        """
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if (dfs is None) != (root is None):
            raise ValueError("dfs and root must be supplied together")
        self.registry = registry
        self.interval_s = interval_s
        self._dfs = dfs
        self.root = root.rstrip("/") if root else None
        self.path = path
        self.include_buckets = include_buckets
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._seq = 0
        self.last_snapshot: dict | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TelemetryExporter":
        """Spawn the periodic export thread.

        Raises:
            RuntimeError: If the exporter is already running.
        """
        if self._thread is not None:
            raise RuntimeError("TelemetryExporter is already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="telemetry-exporter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> dict:
        """Stop the thread and publish one final snapshot.

        Idempotent; returns the final snapshot either way (taking one
        now if the exporter was never started).
        """
        if self._thread is not None:
            self._stop.set()
            # Bounded join: the export loop re-checks the stop event at
            # least every interval_s, so exceeding the bound means the
            # thread is wedged (e.g. inside a stuck DFS write) and the
            # caller must hear about it rather than hang.
            self._thread.join(timeout=_JOIN_TIMEOUT_S)
            if self._thread.is_alive():
                raise RuntimeError(
                    "telemetry-exporter thread failed to stop within "
                    f"{_JOIN_TIMEOUT_S:.0f}s"
                )
            self._thread = None
        return self.export_now()

    def __enter__(self) -> "TelemetryExporter":
        """Start exporting on context entry."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop (with a final export) on context exit."""
        self.stop()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    @property
    def snapshots_written(self) -> int:
        """How many snapshots have been published so far."""
        with self._lock:
            return self._seq

    def export_now(self) -> dict:
        """Take and publish one snapshot immediately; returns it."""
        snapshot = self.registry.snapshot(self.include_buckets)
        with self._lock:
            seq = self._seq
            self._seq += 1
            entry = {
                "seq": seq,
                "unix": round(time.time(), 3),
                **snapshot,
            }
            if self._dfs is not None:
                # repro: allow[blocking-under-lock] the lock deliberately serializes the seq-ordered publish (records file per seq, JSONL appends in seq order); contenders are only the exporter thread and stop(), and the in-memory DFS write cannot block on I/O
                write_records(
                    self._dfs, f"{self.root}/metrics-{seq:05d}.records", [entry]
                )
            if self.path is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(
                        json.dumps(entry, sort_keys=True) + "\n"
                    )
            self.last_snapshot = entry
        return entry

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.export_now()
