"""Simulated MapReduce substrate.

Deploying Snorkel at Google "required decoupling and redesigning the
labeling function execution and generative modeling components of the
pipeline around a template library and distributed compute environment"
(Section 5). The LF templates each *define a MapReduce pipeline*, and the
NLP pipeline "uses Google's MapReduce framework to launch a model server
on each compute node" (Section 5.1).

This package reproduces the slice of MapReduce those templates need:

* shard-parallel map over DFS record files,
* deterministic hash shuffle and sorted reduce,
* per-node lifecycle hooks (where model servers start/stop),
* counters, retry-on-worker-failure, and thread-pool parallelism.
"""

from repro.mapreduce.counters import CounterSet
from repro.mapreduce.runner import (
    MapReduceJob,
    MapReduceResult,
    MapReduceSpec,
    WorkerFailure,
)
from repro.mapreduce.service import NodeService, NodeServicePool

__all__ = [
    "CounterSet",
    "MapReduceJob",
    "MapReduceResult",
    "MapReduceSpec",
    "WorkerFailure",
    "NodeService",
    "NodeServicePool",
]
