"""MapReduce counters.

Google MapReduce exposes named counters aggregated across workers; the LF
templates use them to report votes emitted, abstains, and model-server
calls. Counters are the primary observability channel for labeling-function
runs in this reproduction (surfaced by ``repro.lf.applier``) and for the
micro-batch streaming pipeline (``repro.streaming``), which additionally
tracks level quantities — queue depth, resident records — through
:class:`Gauge`.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Iterable, Mapping

__all__ = ["CounterSet", "Gauge"]


class CounterSet:
    """A thread-safe bag of named integer counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Counter[str] = Counter()

    def increment(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counter increments must be non-negative")
        with self._lock:
            self._counts[name] += amount

    def value(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def merge(self, other: "CounterSet") -> None:
        """Fold another worker's counters into this set."""
        with other._lock:
            snapshot = dict(other._counts)
        with self._lock:
            self._counts.update(snapshot)

    def merge_mapping(self, mapping: Mapping[str, int]) -> None:
        """Fold a plain ``name -> amount`` mapping into this set.

        Amounts obey the same invariant as :meth:`increment`: counters
        only go up, so negative values are rejected *before* anything
        is applied — a mapping with one bad entry changes nothing.
        """
        negatives = {k: v for k, v in mapping.items() if v < 0}
        if negatives:
            raise ValueError(
                "counter merge amounts must be non-negative, got "
                f"{dict(sorted(negatives.items()))}"
            )
        with self._lock:
            self._counts.update(mapping)

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterSet({self.as_dict()!r})"

    @classmethod
    def merged(cls, parts: Iterable["CounterSet"]) -> "CounterSet":
        total = cls()
        for part in parts:
            total.merge(part)
        return total


class Gauge:
    """A thread-safe level meter that remembers its high-water mark.

    Counters only go up; a gauge tracks a *current* level (records
    resident in a pipeline, batches queued) that rises and falls, plus
    the peak it ever reached. The streaming benchmarks assert their
    bounded-memory claim against :attr:`peak`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._current = 0
        self._peak = 0

    def add(self, amount: int) -> int:
        """Raise the level; returns the new value."""
        if amount < 0:
            raise ValueError("use subtract() to lower a gauge")
        with self._lock:
            self._current += amount
            if self._current > self._peak:
                self._peak = self._current
            return self._current

    def subtract(self, amount: int) -> int:
        """Lower the level; returns the new value."""
        if amount < 0:
            raise ValueError("gauge decrements must be non-negative")
        with self._lock:
            if amount > self._current:
                raise ValueError(
                    f"gauge cannot go negative ({self._current} - {amount})"
                )
            self._current -= amount
            return self._current

    @property
    def current(self) -> int:
        with self._lock:
            return self._current

    @property
    def peak(self) -> int:
        with self._lock:
            return self._peak

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge's level in: currents add, peaks take max.

        The aggregation a fleet view wants — total resident load is the
        sum of per-node levels, while the merged peak is the highest
        any contributor ever reached (an upper bound on each node,
        not a statement about simultaneity).
        """
        with other._lock:
            current, peak = other._current, other._peak
        with self._lock:
            self._current += current
            self._peak = max(self._peak, peak)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge(current={self.current}, peak={self.peak})"
