"""The MapReduce engine.

A :class:`MapReduceSpec` describes a job the way the paper's C++ templates
do: input record files on the distributed filesystem, a mapper, an optional
reducer, per-node setup/teardown hooks (this is where
``NLPLabelingFunction`` starts its model server), and an output path.

Execution model
---------------
* Each *input shard* (one DFS record file) is a map task.
* Map tasks are grouped onto simulated *compute nodes*; every node runs
  the ``node_setup`` hook once before its first task (model servers are
  per-node in the paper, not per-task) and ``node_teardown`` at the end.
* Mappers ``emit(key, value)``; emitted pairs are hash-partitioned into
  ``num_reducers`` buckets, sorted by key, and reduced.
* Jobs may provide a ``batch_mapper`` instead of (or in addition to) a
  per-record ``mapper``: map tasks then consume *blocks* of up to
  ``map_block_size`` records, letting vectorized user code amortize
  per-record dispatch. Blocks preserve record order within a shard, so a
  batched job's output is byte-identical to the per-record path.
* Map-only jobs (``reducer=None``) write each map task's emissions to its
  own output shard — exactly how LF binaries produce vote files.
* Worker failures: a map task that raises is retried up to
  ``max_retries`` times on a fresh worker; exhausted retries abort the
  job with :class:`WorkerFailure`. Output is staged per-attempt and only
  finalized for the winning attempt, so retries never duplicate records
  (the DFS write-once semantics give us this for free).

Determinism: given the same inputs and spec, output shard contents are
byte-identical regardless of ``parallelism`` — the shuffle sorts by
``(key, sequence)`` and map outputs are kept in task order. The test suite
asserts parallel ≡ sequential equivalence.
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.dfs.filesystem import DistributedFileSystem, shard_name
from repro.dfs.records import DEFAULT_BLOCK_SIZE, RecordReader, RecordWriter
from repro.mapreduce.counters import CounterSet
from repro.mapreduce.service import NodeService, NodeServicePool

__all__ = [
    "MapContext",
    "ReduceContext",
    "MapReduceSpec",
    "MapReduceResult",
    "MapReduceJob",
    "WorkerFailure",
]

Mapper = Callable[["MapContext", dict[str, Any]], None]
BatchMapper = Callable[["MapContext", list[dict[str, Any]]], None]
Reducer = Callable[["ReduceContext", str, list[Any]], None]


class WorkerFailure(Exception):
    """A map task failed more times than the retry budget allows."""


class MapContext:
    """Handle given to mappers: emit pairs, bump counters, call services."""

    def __init__(self, counters: CounterSet, service: NodeService | None) -> None:
        self._pairs: list[tuple[str, Any]] = []
        self.counters = counters
        self._service = service

    def emit(self, key: str, value: Any) -> None:
        self._pairs.append((str(key), value))

    @property
    def service(self) -> NodeService:
        """The node-local service (e.g. NLP model server), if configured."""
        if self._service is None:
            raise RuntimeError("this job was not configured with a node service")
        return self._service

    @property
    def has_service(self) -> bool:
        return self._service is not None


class ReduceContext:
    """Handle given to reducers."""

    def __init__(self, counters: CounterSet) -> None:
        self._pairs: list[tuple[str, Any]] = []
        self.counters = counters

    def emit(self, key: str, value: Any) -> None:
        self._pairs.append((str(key), value))


@dataclass
class MapReduceSpec:
    """Declarative description of one MapReduce job."""

    name: str
    input_paths: Sequence[str]
    output_base: str
    mapper: Mapper | None
    reducer: Reducer | None = None
    num_reducers: int = 4
    parallelism: int = 1
    max_retries: int = 2
    node_setup: Callable[[], NodeService] | None = None
    tasks_per_node: int = 4
    fail_injector: Callable[[int, int], None] | None = None
    """Test hook: called as ``fail_injector(task_index, attempt)`` before a
    map task runs; raising simulates a worker crash."""
    batch_mapper: BatchMapper | None = None
    """Block-at-a-time mapper; preferred over ``mapper`` when both are set."""
    map_block_size: int = DEFAULT_BLOCK_SIZE
    """Records per block handed to ``batch_mapper``."""

    def __post_init__(self) -> None:
        if self.mapper is None and self.batch_mapper is None:
            raise ValueError(
                f"job {self.name!r} needs a mapper or a batch_mapper"
            )
        if self.map_block_size < 1:
            raise ValueError(
                f"map_block_size must be >= 1, got {self.map_block_size}"
            )


@dataclass
class MapReduceResult:
    """What a finished job reports back."""

    output_paths: list[str]
    counters: CounterSet
    map_tasks: int
    reduce_tasks: int
    wall_seconds: float
    records_in: int
    records_out: int
    retries: int = 0
    node_count: int = 1


def _partition(key: str, buckets: int) -> int:
    """Stable hash partition (must not depend on PYTHONHASHSEED)."""
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % buckets


class MapReduceJob:
    """Executes a :class:`MapReduceSpec` against a DFS."""

    def __init__(self, dfs: DistributedFileSystem, spec: MapReduceSpec) -> None:
        self._dfs = dfs
        self._spec = spec
        self._retries = 0
        self._retry_lock = threading.Lock()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self) -> MapReduceResult:
        spec = self._spec
        start = time.perf_counter()
        counters = CounterSet()

        pool = NodeServicePool(spec.node_setup, spec.tasks_per_node)
        try:
            map_outputs, records_in = self._run_map_phase(counters, pool)
        finally:
            pool.shutdown()

        if spec.reducer is None:
            paths, records_out = self._write_map_only(map_outputs)
            reduce_tasks = 0
        else:
            paths, records_out, reduce_tasks = self._run_reduce_phase(
                map_outputs, counters
            )

        wall = time.perf_counter() - start
        return MapReduceResult(
            output_paths=paths,
            counters=counters,
            map_tasks=len(spec.input_paths),
            reduce_tasks=reduce_tasks,
            wall_seconds=wall,
            records_in=records_in,
            records_out=records_out,
            retries=self._retries,
            node_count=pool.nodes_started or 1,
        )

    # ------------------------------------------------------------------
    # map phase
    # ------------------------------------------------------------------
    def _run_map_phase(
        self, counters: CounterSet, pool: NodeServicePool
    ) -> tuple[list[list[tuple[str, Any]]], int]:
        spec = self._spec
        outputs: list[list[tuple[str, Any]] | None] = [None] * len(spec.input_paths)
        records_in = [0] * len(spec.input_paths)

        def run_task(index: int) -> None:
            path = spec.input_paths[index]
            last_error: BaseException | None = None
            for attempt in range(spec.max_retries + 1):
                service = pool.acquire()
                try:
                    if spec.fail_injector is not None:
                        spec.fail_injector(index, attempt)
                    ctx = MapContext(counters, service)
                    count = 0
                    reader = RecordReader(self._dfs, path)
                    if spec.batch_mapper is not None:
                        for block in reader.iter_blocks(spec.map_block_size):
                            spec.batch_mapper(ctx, block)
                            count += len(block)
                    else:
                        for record in reader:
                            spec.mapper(ctx, record)
                            count += 1
                    outputs[index] = ctx._pairs
                    records_in[index] = count
                    return
                except Exception as error:  # worker crash -> retry
                    last_error = error
                    with self._retry_lock:
                        self._retries += 1
                finally:
                    pool.release(service)
            raise WorkerFailure(
                f"map task {index} ({path}) failed after "
                f"{spec.max_retries + 1} attempts"
            ) from last_error

        if spec.parallelism <= 1:
            for i in range(len(spec.input_paths)):
                run_task(i)
        else:
            with ThreadPoolExecutor(max_workers=spec.parallelism) as executor:
                futures = [
                    executor.submit(run_task, i)
                    for i in range(len(spec.input_paths))
                ]
                for future in futures:
                    future.result()

        # Over-counted retries are attempts that eventually failed for good
        # reasons; the final retries value counts crashed attempts only.
        finished: list[list[tuple[str, Any]]] = [
            pairs if pairs is not None else [] for pairs in outputs
        ]
        return finished, sum(records_in)

    # ------------------------------------------------------------------
    # map-only output
    # ------------------------------------------------------------------
    def _write_map_only(
        self, map_outputs: list[list[tuple[str, Any]]]
    ) -> tuple[list[str], int]:
        spec = self._spec
        count = len(map_outputs)
        paths = []
        records_out = 0
        for index, pairs in enumerate(map_outputs):
            path = shard_name(spec.output_base, index, count)
            with RecordWriter(self._dfs, path) as writer:
                for key, value in pairs:
                    writer.write({"key": key, "value": value})
                    records_out += 1
            paths.append(path)
        return paths, records_out

    # ------------------------------------------------------------------
    # shuffle + reduce
    # ------------------------------------------------------------------
    def _run_reduce_phase(
        self,
        map_outputs: list[list[tuple[str, Any]]],
        counters: CounterSet,
    ) -> tuple[list[str], int, int]:
        spec = self._spec
        buckets: list[dict[str, list[Any]]] = [
            {} for _ in range(spec.num_reducers)
        ]
        # Shuffle in task order for determinism.
        for pairs in map_outputs:
            for key, value in pairs:
                bucket = buckets[_partition(key, spec.num_reducers)]
                bucket.setdefault(key, []).append(value)

        paths = []
        records_out = 0
        for index, bucket in enumerate(buckets):
            path = shard_name(spec.output_base, index, spec.num_reducers)
            ctx = ReduceContext(counters)
            for key in sorted(bucket):
                spec.reducer(ctx, key, bucket[key])  # type: ignore[misc]
            with RecordWriter(self._dfs, path) as writer:
                for key, value in ctx._pairs:
                    writer.write({"key": key, "value": value})
                    records_out += 1
            paths.append(path)
        return paths, records_out, spec.num_reducers


def run_map_reduce(
    dfs: DistributedFileSystem,
    spec: MapReduceSpec,
) -> MapReduceResult:
    """Convenience wrapper: build and run a job."""
    return MapReduceJob(dfs, spec).run()
