"""Per-node service lifecycle management.

Section 5.1: Google's NLP models "are too computationally expensive to run
for all content submitted to Google. Snorkel DryBell therefore needs to
enable labeling-function writers to execute additional models in a manner
that scales ... Snorkel DryBell uses Google's MapReduce framework to
launch a model server on each compute node."

:class:`NodeServicePool` simulates that placement policy: map tasks are
packed onto nodes (``tasks_per_node`` at a time); the first task to land
on a node pays the service start-up cost; later tasks reuse the running
server. ``nodes_started`` lets benchmarks report how many servers a job
needed.
"""

from __future__ import annotations

import threading
from typing import Callable, Protocol

__all__ = ["NodeService", "NodeServicePool"]


class NodeService(Protocol):
    """Minimal protocol a per-node service must implement.

    Concrete services (e.g. :class:`repro.services.nlp_server.NLPServer`)
    may expose any richer API; the pool only needs start/stop.
    """

    def start(self) -> None: ...

    def stop(self) -> None: ...


class _NullService:
    """Placeholder used when a job declares no node service."""

    def start(self) -> None:  # pragma: no cover - trivial
        pass

    def stop(self) -> None:  # pragma: no cover - trivial
        pass


class NodeServicePool:
    """Hands out node-local service instances to map tasks.

    The pool creates a new "node" (and starts its service) whenever all
    existing nodes are running ``tasks_per_node`` concurrent tasks. The
    simulation is faithful to the paper's resource model: model servers
    are a per-node cost amortized across the tasks scheduled there.
    """

    def __init__(
        self,
        factory: Callable[[], NodeService] | None,
        tasks_per_node: int = 4,
    ) -> None:
        if tasks_per_node < 1:
            raise ValueError("tasks_per_node must be >= 1")
        self._factory = factory
        self._tasks_per_node = tasks_per_node
        self._lock = threading.Lock()
        self._services: list[NodeService] = []
        self._active: list[int] = []
        self.nodes_started = 0

    def acquire(self) -> NodeService | None:
        """Assign the calling map task to a node; returns its service.

        Returns ``None`` when the job has no node service configured, so
        :class:`repro.mapreduce.runner.MapContext` can report the absence
        explicitly instead of handing mappers a dummy object.
        """
        if self._factory is None:
            return None
        with self._lock:
            for i, active in enumerate(self._active):
                if active < self._tasks_per_node:
                    self._active[i] += 1
                    return self._services[i]
            service = self._factory()
            service.start()
            self._services.append(service)
            self._active.append(1)
            self.nodes_started += 1
            return service

    def release(self, service: NodeService | None) -> None:
        """A map task finished; free its slot on the node."""
        if service is None:
            return
        with self._lock:
            for i, existing in enumerate(self._services):
                if existing is service:
                    self._active[i] = max(0, self._active[i] - 1)
                    return

    def shutdown(self) -> None:
        """Stop every service the pool started."""
        with self._lock:
            services, self._services = self._services, []
            self._active = []
        for service in services:
            service.stop()
